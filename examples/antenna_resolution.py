#!/usr/bin/env python3
"""Antenna-count resolution study: the Figure 7 experiment as a script.

Processes the same packets from the pillar-blocked client 12 with 2, 4, 6 and
8 antennas of the linear arrangement and shows how the pseudospectrum sharpens
and the bearing error shrinks as antennas are added, plus the signature
stability over time of Figure 6.

Run with:  python examples/antenna_resolution.py
"""

from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7


def main() -> None:
    print("Figure 7: same packet, growing subarrays (client 12, blocked by the pillar)\n")
    result = run_figure7(rng=42)
    print(result.as_table())
    print(f"\ntrue bearing: {result.expected_bearing_deg:.1f} deg")
    for row in result.rows:
        db = row.spectrum.to_db(floor_db=-12.0)
        angles = row.spectrum.angles_deg
        bars = []
        for start in range(-90, 90, 15):
            mask = (angles >= start) & (angles < start + 15)
            level = float(db[mask].max())
            bars.append("#" * max(int((level + 12.0)), 0))
        print(f"\n  {row.num_antennas} antennas "
              f"(bearing {row.bearing_deg:.0f} deg, {row.num_peaks} peak(s)):")
        for start, bar in zip(range(-90, 90, 15), bars):
            print(f"    {start:+3d}..{start + 15:+3d} deg | {bar}")

    print("\n\nFigure 6: signature stability over time (linear array, clients 2, 5, 10)\n")
    stability = run_figure6(rng=42)
    print(stability.as_table())


if __name__ == "__main__":
    main()
