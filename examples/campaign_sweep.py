#!/usr/bin/env python3
"""Campaign sweep: a sharded multi-process Monte-Carlo run in a few lines.

The campaign engine turns an experiment's parameter grid into independent
shards, executes them on a process pool (each worker compiles its own
deployment and rides the batched engine), and merges the records back into
the experiment's result dataclass:

1. ``snr_sweep_campaign`` declares the grid — one shard per transmit power,
2. ``run_campaign(..., workers=2)`` fans the shards out; per-shard seeds were
   fixed at compile time in canonical order, so the merged result is
   bit-identical to ``run_snr_sweep`` no matter the worker count,
3. attaching a ``ResultStore`` makes the run resumable from disk (one atomic
   JSON record per shard; completed shards are never recomputed).

The same sweep runs from the shell:

    python -m repro campaign snr_sweep --workers 2 --out sweep-results

Run with:  python examples/campaign_sweep.py
"""

import tempfile

from repro.campaign import ResultStore, run_campaign
from repro.experiments.ablations import run_snr_sweep, snr_sweep_campaign

TX_POWERS_DBM = (-60.0, -25.0, 15.0)


def main() -> None:
    spec = snr_sweep_campaign(tx_powers_dbm=TX_POWERS_DBM,
                              client_ids=(1, 5), packets_per_point=2)
    print(f"campaign {spec.name!r}: {spec.num_shards} shard(s), "
          f"axes {list(spec.axes)}; spec JSON is {len(spec.to_json())} bytes\n")

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        run = run_campaign(spec, workers=2, store=store)
        print(f"executed {run.executed} shard(s) on 2 workers")
        print(run.result.as_table())

        # Resuming a finished (or killed) campaign recomputes nothing.
        resumed = run_campaign(spec, workers=2, store=store)
        print(f"\nresume executed {resumed.executed} shard(s) "
              f"(records came from {store.root})")

    serial = run_snr_sweep(tx_powers_dbm=TX_POWERS_DBM,
                           client_ids=(1, 5), packets_per_point=2)
    identical = run.result.to_json() == serial.to_json()
    print(f"\nbit-identical to the serial runner: {identical}")
    if not identical:
        raise SystemExit("campaign/serial mismatch")


if __name__ == "__main__":
    main()
