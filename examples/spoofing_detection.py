#!/usr/bin/env python3
"""Address-spoofing detection demo (Section 2.3.2).

A legitimate client trains its AoA signature with the access point; an
attacker elsewhere in the building then injects frames spoofing the client's
MAC address.  The access point checks every packet's signature against the
certified one and drops the attacker's frames while continuing to accept (and
track) the legitimate client's.

Run with:  python examples/spoofing_detection.py
"""

from repro.api import AccessPointSpec, ArraySpec, AttackerSpec, Deployment, ScenarioSpec
from repro.mac.address import MacAddress


def main() -> None:
    # One AP plus an indoor attacker at client 9's position, as one spec; the
    # traffic itself streams through Deployment.run, one event per packet.
    spec = ScenarioSpec(
        name="spoofing-demo",
        seed=11,
        access_points=(AccessPointSpec(name="office-ap",
                                       array=ArraySpec("octagon")),),
        attackers=(AttackerSpec(type="omnidirectional", at_client=9,
                                name="attacker-at-client-9"),),
    )
    deployment = Deployment(spec)
    ap = deployment.ap()
    victim_address = MacAddress("02:00:00:00:00:05")

    # --- training: ten uplink packets from the legitimate client (client 5) ---
    signature = deployment.train(victim_address, client_id=5)
    print(f"trained signature for {victim_address}: "
          f"direct path at {signature.direct_path_bearing_deg:.1f} deg, "
          f"{len(signature.multipath_bearings_deg)} reflection peaks")

    # --- the legitimate client keeps sending under its trained address ---
    print("\nlegitimate client traffic:")
    legitimate = deployment.client_packets(5, num_packets=5,
                                           inter_packet_gap_s=10.0,
                                           start_s=60.0, source=victim_address)
    for event in deployment.run(legitimate):
        print(f"  packet {event.index}: verdict={event.verdict:<6} "
              f"similarity={event.decision.similarity:.2f} "
              f"bearing={event.decision.bearing_deg:.1f} deg")

    # --- the attacker injects frames with the victim's address ---
    attacker = deployment.attackers["attacker-at-client-9"]
    print(f"\nattacker at {attacker.position.as_tuple()} spoofing {victim_address}:")
    spoofed = deployment.attacker_packets("attacker-at-client-9", victim_address,
                                          num_packets=5, inter_packet_gap_s=10.0,
                                          start_s=200.0)
    for event in deployment.run(spoofed):
        print(f"  spoofed packet {event.index}: verdict={event.verdict:<6} "
              f"similarity={event.decision.similarity:.2f} "
              f"bearing={event.decision.bearing_deg:.1f} deg")
        for reason in event.decision.reasons:
            print(f"      reason: {reason}")

    record = ap.database.require(victim_address)
    print(f"\nanomalies flagged against {victim_address}: {record.anomalies_flagged}")


if __name__ == "__main__":
    main()
