#!/usr/bin/env python3
"""Address-spoofing detection demo (Section 2.3.2).

A legitimate client trains its AoA signature with the access point; an
attacker elsewhere in the building then injects frames spoofing the client's
MAC address.  The access point checks every packet's signature against the
certified one and drops the attacker's frames while continuing to accept (and
track) the legitimate client's.

Run with:  python examples/spoofing_detection.py
"""

from repro.arrays import OctagonalArray
from repro.attacks.attacker import OmnidirectionalAttacker
from repro.attacks.spoofing_attack import SpoofingAttack
from repro.core.access_point import SecureAngleAP
from repro.mac.address import MacAddress
from repro.mac.frames import Dot11Frame
from repro.testbed import TestbedSimulator, figure4_environment


def main() -> None:
    environment = figure4_environment()
    array = OctagonalArray()
    simulator = TestbedSimulator(environment, array, rng=11)

    ap_address = MacAddress("02:aa:00:00:00:01")
    victim_address = MacAddress("02:00:00:00:00:05")
    ap = SecureAngleAP(name="office-ap", position=environment.ap_position, array=array)
    ap.set_calibration(simulator.calibration_table())

    # --- training: ten uplink packets from the legitimate client (client 5) ---
    training = [simulator.capture_from_client(5, elapsed_s=i * 0.5, timestamp_s=i * 0.5)
                for i in range(10)]
    signature = ap.train_client(victim_address, training)
    print(f"trained signature for {victim_address}: "
          f"direct path at {signature.direct_path_bearing_deg:.1f} deg, "
          f"{len(signature.multipath_bearings_deg)} reflection peaks")

    # --- the legitimate client keeps sending ---
    print("\nlegitimate client traffic:")
    for index in range(5):
        elapsed = 60.0 + 10.0 * index
        frame = Dot11Frame(source=victim_address, destination=ap_address,
                           sequence_number=index)
        capture = simulator.capture_from_client(5, elapsed_s=elapsed, timestamp_s=elapsed)
        decision = ap.process_packet(frame, capture)
        print(f"  packet {index}: verdict={decision.verdict.value:<6} "
              f"similarity={decision.similarity:.2f} bearing={decision.bearing_deg:.1f} deg")

    # --- the attacker injects frames with the victim's address ---
    attacker = OmnidirectionalAttacker(
        position=environment.client_position(9),
        address=MacAddress.random(rng=3),
        name="attacker-at-client-9")
    attack = SpoofingAttack(attacker=attacker, victim_address=victim_address,
                            ap_address=ap_address, num_frames=5)
    print(f"\nattacker at {attacker.position.as_tuple()} spoofing {victim_address}:")
    for index, frame in enumerate(attack.iter_frames()):
        elapsed = 200.0 + 10.0 * index
        capture = simulator.capture_from_position(
            attacker.position, elapsed_s=elapsed, timestamp_s=elapsed, attacker=attacker)
        decision = ap.process_packet(frame, capture)
        print(f"  spoofed packet {index}: verdict={decision.verdict.value:<6} "
              f"similarity={decision.similarity:.2f} bearing={decision.bearing_deg:.1f} deg")
        for reason in decision.reasons:
            print(f"      reason: {reason}")

    record = ap.database.require(victim_address)
    print(f"\nanomalies flagged against {victim_address}: {record.anomalies_flagged}")


if __name__ == "__main__":
    main()
