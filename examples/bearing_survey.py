#!/usr/bin/env python3
"""Bearing survey: the Figure 5 experiment as a script.

Measures every testbed client's bearing from ten packets with the circular
antenna arrangement, prints the per-client mean estimate, 99 % confidence
interval, and error against ground truth, and summarises the headline
accuracy statistics of Section 2.3.1.

Run with:  python examples/bearing_survey.py
"""

from repro.experiments.accuracy import evaluate_accuracy_claim
from repro.experiments.figure5 import run_figure5


def main() -> None:
    print("running the Figure 5 bearing survey (20 clients x 10 packets)...\n")
    result = run_figure5(num_packets=10, rng=42)
    print(result.as_table())
    print(f"\nmean 99% confidence-interval half-width: "
          f"{result.mean_confidence_halfwidth_deg:.2f} deg (paper: about 7 deg)")
    print(f"clients within 2.5 deg (mean of 10 packets): {result.fraction_within(2.5):.0%}")
    print(f"clients within 14 deg  (mean of 10 packets): {result.fraction_within(14.0):.0%}")

    print("\nsingle-packet accuracy claim (Section 2.3.1):")
    claim = evaluate_accuracy_claim(num_packets=10, rng=42)
    print(f"  within 2.5 deg at 95% confidence: {claim.fraction_within_2_5_deg:.0%} "
          f"(paper: about three quarters)")
    print(f"  within 14 deg at 95% confidence:  {claim.fraction_within_14_deg:.0%} "
          f"(paper: all clients)")
    print(f"  worst client: {claim.worst_client_error_deg:.1f} deg")


if __name__ == "__main__":
    main()
