#!/usr/bin/env python3
"""Virtual-fence demo (Section 2.3.1).

Three SecureAngle access points triangulate every transmitter from their
direct-path bearings and the controller drops frames from anyone localised
outside the building — legitimate indoor clients sail through, a laptop in
the street does not, and neither does a directional-antenna attacker aiming
straight at an access point.

Run with:  python examples/virtual_fence.py
"""

from repro.api import (
    AccessPointSpec,
    ArraySpec,
    AttackerSpec,
    Deployment,
    FenceSpec,
    ScenarioSpec,
)
from repro.geometry.point import Point


def main() -> None:
    # Three APs ("more than two access points", Section 2.3.1): the main one
    # from Figure 4 plus two more spread across the office so the bearing
    # lines intersect at a healthy angle for transmitters on every side.
    # The whole deployment — APs, fence, attacker — is one declarative spec.
    spec = ScenarioSpec(
        name="virtual-fence-demo",
        access_points=(
            AccessPointSpec(name="ap-main", array=ArraySpec("octagon"), seed=20),
            AccessPointSpec(name="ap-east", position=(20.0, 11.0),
                            array=ArraySpec("octagon"), seed=21),
            AccessPointSpec(name="ap-south", position=(15.0, 2.5),
                            array=ArraySpec("octagon"), seed=22),
        ),
        fence=FenceSpec(margin_m=1.0),
        attackers=(AttackerSpec(type="directional", outdoor="street-east",
                                aim_ap="ap-main"),),
        seed=5,
    )
    deployment = Deployment(spec)
    environment = deployment.environment
    simulators = deployment.simulators
    controller = deployment.controller
    fence = deployment.fence

    def check(label: str, position: Point, attacker=None) -> None:
        captures = {name: sim.capture_from_position(position, attacker=attacker)
                    for name, sim in simulators.items()}
        result = controller.fence_check(captures)
        location = result.location
        located = (f"localised at ({location.position.x:.1f}, {location.position.y:.1f}), "
                   f"residual {location.residual_m:.2f} m"
                   if location is not None else "could not localise")
        admitted = "ADMIT" if fence.admits(result) else "DROP"
        print(f"  {label:<28} -> {result.decision.value:<13} [{admitted}]  ({located})")

    print("indoor clients (should be admitted):")
    for client_id in (1, 4, 7, 10, 16):
        check(f"client {client_id}", environment.client_position(client_id))

    print("\noutdoor transmitters (should be dropped):")
    for label, position in environment.outdoor_positions.items():
        check(label, position)

    print("\ndirectional-antenna attacker outside, aiming at ap-main (should be dropped):")
    attacker = deployment.attackers["directional-attacker"]
    check("directional attacker", attacker.position, attacker=attacker)


if __name__ == "__main__":
    main()
