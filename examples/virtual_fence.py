#!/usr/bin/env python3
"""Virtual-fence demo (Section 2.3.1).

Three SecureAngle access points triangulate every transmitter from their
direct-path bearings and the controller drops frames from anyone localised
outside the building — legitimate indoor clients sail through, a laptop in
the street does not, and neither does a directional-antenna attacker aiming
straight at an access point.

Run with:  python examples/virtual_fence.py
"""

from repro.arrays import OctagonalArray
from repro.attacks.attacker import DirectionalAntennaAttacker
from repro.core.access_point import SecureAngleAP
from repro.core.controller import SecureAngleController
from repro.core.fence import VirtualFence
from repro.geometry.point import Point
from repro.mac.address import MacAddress
from repro.testbed import TestbedSimulator, figure4_environment


def main() -> None:
    environment = figure4_environment()

    # Three APs ("more than two access points", Section 2.3.1): the main one
    # from Figure 4 plus two more spread across the office so the bearing
    # lines intersect at a healthy angle for transmitters on every side.
    ap_specs = [
        ("ap-main", environment.ap_position),
        ("ap-east", Point(20.0, 11.0)),
        ("ap-south", Point(15.0, 2.5)),
    ]
    simulators = {}
    aps = []
    for index, (name, position) in enumerate(ap_specs):
        array = OctagonalArray()
        simulator = TestbedSimulator(environment, array, ap_position=position, rng=20 + index)
        ap = SecureAngleAP(name=name, position=position, array=array)
        ap.set_calibration(simulator.calibration_table())
        simulators[name] = simulator
        aps.append(ap)

    fence = VirtualFence(environment.building_boundary, margin_m=1.0)
    controller = SecureAngleController(aps, fence=fence)

    def check(label: str, position: Point, attacker=None) -> None:
        captures = {name: sim.capture_from_position(position, attacker=attacker)
                    for name, sim in simulators.items()}
        result = controller.fence_check(captures)
        location = result.location
        located = (f"localised at ({location.position.x:.1f}, {location.position.y:.1f}), "
                   f"residual {location.residual_m:.2f} m"
                   if location is not None else "could not localise")
        admitted = "ADMIT" if fence.admits(result) else "DROP"
        print(f"  {label:<28} -> {result.decision.value:<13} [{admitted}]  ({located})")

    print("indoor clients (should be admitted):")
    for client_id in (1, 4, 7, 10, 16):
        check(f"client {client_id}", environment.client_position(client_id))

    print("\noutdoor transmitters (should be dropped):")
    for label, position in environment.outdoor_positions.items():
        check(label, position)

    print("\ndirectional-antenna attacker outside, aiming at ap-main (should be dropped):")
    attacker = DirectionalAntennaAttacker(
        position=environment.outdoor_positions["street-east"],
        address=MacAddress.random(rng=5),
        aim_point=environment.ap_position)
    check("directional attacker", attacker.position, attacker=attacker)


if __name__ == "__main__":
    main()
