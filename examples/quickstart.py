#!/usr/bin/env python3
"""Quickstart: the unified scenario & deployment API in fifteen lines.

A SecureAngle deployment is described declaratively by a ``ScenarioSpec``
(fully serialisable to JSON), compiled by ``Deployment``, and driven by
streaming packets through ``Deployment.run``:

1. the default spec wires the Figure 4 office with one 8-antenna circular AP,
2. compilation builds the simulator, calibrates the receiver (Section 2.2),
   and stands up the estimator + policy pipeline,
3. a client trains its certified AoA signature, keeps transmitting, and every
   packet comes back as a structured event (decision, bearing, latency).

Run with:  python examples/quickstart.py
"""

from repro.api import Deployment, ScenarioSpec


def main() -> None:
    # The 15-line spec -> run() flow. Every knob below is optional; the spec
    # also round-trips through JSON (ScenarioSpec.from_json(spec.to_json())).
    spec = ScenarioSpec(name="quickstart", environment="figure4", seed=42)
    deployment = Deployment(spec)
    print(f"deployment: {deployment}")
    print(f"spec JSON is {len(spec.to_json())} bytes\n")

    client_id = 7
    address = deployment.clients[client_id].address
    signature = deployment.train(address, client_id)
    print(f"trained {address}: direct path at "
          f"{signature.direct_path_bearing_deg:.1f} deg, "
          f"{len(signature.multipath_bearings_deg)} reflection peak(s)")

    truth = deployment.expected_bearing(client_id)
    print(f"ground-truth bearing: {truth:.1f} deg\n")
    for event in deployment.run(
            deployment.client_packets(client_id, num_packets=5, start_s=60.0)):
        bearing = event.bearings_deg[deployment.primary_ap_name]
        print(f"  packet {event.index}: verdict={event.verdict:<7}"
              f" bearing={bearing:6.1f} deg"
              f" similarity={event.decision.similarity:.2f}"
              f" latency={event.decision_latency_s * 1e3:5.1f} ms")

    # The pseudospectrum of one more packet, as a coarse ASCII rendering so
    # the peak structure is visible without matplotlib.
    estimate = deployment.ap().analyze(
        deployment.simulator().capture_from_client(client_id))
    spectrum = estimate.pseudospectrum
    db = spectrum.to_db(floor_db=-20.0)
    print("\npseudospectrum (each row = 10 degrees, bar length = relative power):")
    for start in range(0, 360, 10):
        mask = (spectrum.angles_deg >= start) & (spectrum.angles_deg < start + 10)
        level = float(db[mask].max())
        bar = "#" * int((level + 20.0) * 2)
        print(f"  {start:3d}-{start + 10:3d} deg | {bar}")


if __name__ == "__main__":
    main()
