#!/usr/bin/env python3
"""Quickstart: estimate a client's bearing from one packet.

This walks the SecureAngle pipeline end to end on the simulated testbed:

1. build the Figure 4 office environment and an 8-antenna circular AP,
2. calibrate the receiver's per-chain phase offsets (Section 2.2),
3. simulate one uplink packet from a client,
4. run MUSIC to get the pseudospectrum, and
5. print the estimated bearing next to the ground truth.

Run with:  python examples/quickstart.py
"""

from repro.aoa import AoAEstimator, EstimatorConfig
from repro.arrays import OctagonalArray
from repro.testbed import TestbedSimulator, figure4_environment
from repro.utils.angles import angular_difference


def main() -> None:
    environment = figure4_environment()
    array = OctagonalArray()
    simulator = TestbedSimulator(environment, array, rng=42)

    # Section 2.2: measure the per-chain phase offsets over the cabled
    # calibration source before any over-the-air processing.
    calibration = simulator.calibration_table()
    estimator = AoAEstimator(array, EstimatorConfig())

    client_id = 7
    capture = simulator.capture_from_client(client_id)
    estimate = estimator.process(capture, calibration=calibration)

    truth = environment.ground_truth_bearing(client_id)
    error = float(angular_difference(estimate.bearing_deg, truth))

    print(f"client {client_id}")
    print(f"  ground-truth bearing : {truth:7.1f} deg")
    print(f"  estimated bearing    : {estimate.bearing_deg:7.1f} deg")
    print(f"  error                : {error:7.1f} deg")
    print(f"  sources assumed      : {estimate.num_sources}")
    print(f"  pseudospectrum peaks : "
          + ", ".join(f"{p:.1f} deg" for p in estimate.peak_bearings_deg))

    # The pseudospectrum itself is the SecureAngle signature; print a coarse
    # ASCII rendering so the peak structure is visible without matplotlib.
    spectrum = estimate.pseudospectrum
    db = spectrum.to_db(floor_db=-20.0)
    print("\n  pseudospectrum (each row = 10 degrees, bar length = relative power):")
    for start in range(0, 360, 10):
        mask = (spectrum.angles_deg >= start) & (spectrum.angles_deg < start + 10)
        level = float(db[mask].max())
        bar = "#" * int((level + 20.0) * 2)
        print(f"  {start:3d}-{start + 10:3d} deg | {bar}")


if __name__ == "__main__":
    main()
