#!/usr/bin/env python3
"""Indoor localisation demo: AoA triangulation vs the RADAR RSS baseline.

Three SecureAngle APs triangulate each client from direct-path bearings
(Section 2.3.1: "the intersection point of the direct path AoA is identified
as the location of client"); for comparison, a RADAR-style RSS fingerprint
localiser is trained on a grid of the same floor plan.  The AoA approach needs
no radio map and is typically an order of magnitude more precise.

Run with:  python examples/localization_demo.py
"""

import numpy as np

from repro.api import AccessPointSpec, ArraySpec, Deployment, ScenarioSpec
from repro.baselines.radar_localization import RadarLocalizer, RssFingerprint
from repro.geometry.point import Point


def main() -> None:
    spec = ScenarioSpec(
        name="localization-demo",
        access_points=(
            AccessPointSpec(name="ap-main", array=ArraySpec("octagon"), seed=30),
            AccessPointSpec(name="ap-east", position=(20.0, 11.0),
                            array=ArraySpec("octagon"), seed=31),
            AccessPointSpec(name="ap-south", position=(15.0, 2.5),
                            array=ArraySpec("octagon"), seed=32),
        ),
    )
    deployment = Deployment(spec)
    environment = deployment.environment
    simulators = deployment.simulators
    controller = deployment.controller
    ap_specs = [(name, ap.position) for name, ap in deployment.aps.items()]

    # Train the RSS baseline on a grid of fingerprints over the floor plan.
    print("training the RADAR RSS baseline on a 2 m grid...")
    fingerprints = []
    ap_positions = [position for _, position in ap_specs]
    for x in np.arange(1.0, 24.0, 2.0):
        for y in np.arange(1.0, 14.0, 2.0):
            position = Point(float(x), float(y))
            # Skip survey points on top of an AP: zero-distance paths are not
            # physical (and the ray tracer rejects them).
            if any(position.distance_to(ap) < 0.5 for ap in ap_positions):
                continue
            rss = [simulators[name].capture_from_position(position).power_dbm()
                   for name, _ in ap_specs]
            fingerprints.append(RssFingerprint(position, np.array(rss)))
    radar = RadarLocalizer(k=3)
    radar.train(fingerprints)

    print(f"radio map: {radar.num_fingerprints} fingerprints\n")
    print(f"{'client':>7}  {'AoA error (m)':>14}  {'RADAR error (m)':>16}")
    aoa_errors, rss_errors = [], []
    for client_id in environment.client_ids:
        position = environment.client_position(client_id)
        captures = {name: sim.capture_from_position(position)
                    for name, sim in simulators.items()}
        estimate = controller.localize(captures)
        aoa_error = estimate.position.distance_to(position)
        rss = [captures[name].power_dbm() for name, _ in ap_specs]
        rss_error = radar.localization_error_m(rss, position)
        aoa_errors.append(aoa_error)
        rss_errors.append(rss_error)
        print(f"{client_id:>7}  {aoa_error:>14.2f}  {rss_error:>16.2f}")

    print(f"\nmedian AoA triangulation error : {np.median(aoa_errors):.2f} m")
    print(f"median RADAR (RSS k-NN) error  : {np.median(rss_errors):.2f} m")


if __name__ == "__main__":
    main()
