"""Random-number-generator management.

Every stochastic component in the reproduction accepts either a seed or a
``numpy.random.Generator``; these helpers normalise the two forms so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a freshly seeded generator, an ``int`` seeds a new
    generator deterministically, and an existing generator is returned as-is.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected None, int, or numpy Generator, got {type(rng).__name__}")


def spawn_rng(rng: RngLike, stream: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when one experiment needs several independent random streams (for
    example per-client channels) that must not interact, while remaining
    reproducible from a single seed.
    """
    parent = ensure_rng(rng)
    if stream is None:
        seed = int(parent.integers(0, 2**63 - 1))
    else:
        seed = int(parent.integers(0, 2**31 - 1)) ^ (int(stream) * 0x9E3779B1 & 0x7FFFFFFF)
    return np.random.default_rng(seed)
