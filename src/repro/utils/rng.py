"""Random-number-generator management.

Every stochastic component in the reproduction accepts either a seed or a
``numpy.random.Generator``; these helpers normalise the two forms so
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` produces a freshly seeded generator, an ``int`` seeds a new
    generator deterministically, and an existing generator is returned as-is.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected None, int, or numpy Generator, got {type(rng).__name__}")


def spawn_rng(rng: RngLike, stream: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when one experiment needs several independent random streams (for
    example per-client channels) that must not interact, while remaining
    reproducible from a single seed.
    """
    parent = ensure_rng(rng)
    if stream is None:
        seed = int(parent.integers(0, 2**63 - 1))
    else:
        seed = int(parent.integers(0, 2**31 - 1)) ^ (int(stream) * 0x9E3779B1 & 0x7FFFFFFF)
    return np.random.default_rng(seed)


def skip_spawns(rng: RngLike, count: int, stream: bool = True) -> np.random.Generator:
    """Advance ``rng`` past ``count`` :func:`spawn_rng` calls without spawning.

    A numbered spawn consumes exactly one ``integers(0, 2**31 - 1)`` draw from
    the parent (an unnumbered one draws from ``[0, 2**63 - 1)``), so replaying
    the draws fast-forwards the parent's state bit-exactly.  Campaign shards
    use this to jump the master generator to their slice of a serial
    experiment's capture sequence without synthesizing the skipped packets.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    bound = 2**31 - 1 if stream else 2**63 - 1
    for _ in range(int(count)):
        parent.integers(0, bound)
    return parent


def derive_seed(rng: RngLike) -> int:
    """Draw one child seed from ``rng`` (the unnumbered-spawn derivation).

    Campaigns derive per-replicate seeds this way, in canonical replicate
    order at compile time, so the seed assigned to each shard is a pure
    function of the campaign spec — independent of worker count or
    scheduling.
    """
    return int(ensure_rng(rng).integers(0, 2**63 - 1))
