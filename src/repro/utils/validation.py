"""Argument-validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def require_positive(value: Number, name: str) -> float:
    """Return ``value`` as a float after checking that it is > 0."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` as an int after checking that it is a positive integer."""
    if isinstance(value, bool) or int(value) != value:
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_finite(value: Number, name: str) -> float:
    """Return ``value`` as a float after checking that it is finite."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def require_in_range(value: Number, name: str, low: Number, high: Number,
                     inclusive: bool = True) -> float:
    """Return ``value`` after checking ``low <= value <= high`` (or strict)."""
    value = float(value)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value
