"""Decibel and power-unit conversion helpers."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: Floor used when converting zero power to dB so plots stay finite.
_EPSILON = 1e-300


def power_ratio_to_db(ratio: ArrayLike) -> np.ndarray:
    """Convert a power ratio to decibels: ``10 log10(ratio)``."""
    ratio = np.asarray(ratio, dtype=float)
    if np.any(ratio < 0):
        raise ValueError("power ratios must be non-negative")
    return 10.0 * np.log10(np.maximum(ratio, _EPSILON))


def db_to_power_ratio(db: ArrayLike) -> np.ndarray:
    """Convert decibels to a power ratio: ``10 ** (db / 10)``."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def amplitude_ratio_to_db(ratio: ArrayLike) -> np.ndarray:
    """Convert an amplitude (voltage) ratio to decibels: ``20 log10(ratio)``."""
    ratio = np.asarray(ratio, dtype=float)
    if np.any(ratio < 0):
        raise ValueError("amplitude ratios must be non-negative")
    return 20.0 * np.log10(np.maximum(ratio, _EPSILON))


def db_to_amplitude_ratio(db: ArrayLike) -> np.ndarray:
    """Convert decibels to an amplitude (voltage) ratio: ``10 ** (db / 20)``."""
    return np.power(10.0, np.asarray(db, dtype=float) / 20.0)


def dbm_to_watts(dbm: ArrayLike) -> np.ndarray:
    """Convert a power in dBm to watts."""
    return np.power(10.0, (np.asarray(dbm, dtype=float) - 30.0) / 10.0)


def watts_to_dbm(watts: ArrayLike) -> np.ndarray:
    """Convert a power in watts to dBm."""
    watts = np.asarray(watts, dtype=float)
    if np.any(watts < 0):
        raise ValueError("power in watts must be non-negative")
    return 10.0 * np.log10(np.maximum(watts, _EPSILON)) + 30.0
