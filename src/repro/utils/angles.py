"""Angle arithmetic helpers.

Bearings in this project are expressed in degrees.  Linear arrays report
angles in [-90, 90] (broadside convention), circular arrays in [0, 360).
These helpers centralise wrapping, differencing, and circular statistics so
that the rest of the code never has to worry about the 0/360 seam.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


def degrees_to_radians(angle_deg: ArrayLike) -> np.ndarray:
    """Convert degrees to radians (vectorised)."""
    return np.deg2rad(angle_deg)


def radians_to_degrees(angle_rad: ArrayLike) -> np.ndarray:
    """Convert radians to degrees (vectorised)."""
    return np.rad2deg(angle_rad)


def wrap_to_pi(angle_rad: ArrayLike) -> np.ndarray:
    """Wrap an angle in radians to the interval (-pi, pi]."""
    wrapped = np.mod(np.asarray(angle_rad, dtype=float) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps -pi to -pi; fold it to +pi so the interval is half-open.
    return np.where(np.isclose(wrapped, -np.pi), np.pi, wrapped)


def normalize_angle_deg(angle_deg: ArrayLike) -> np.ndarray:
    """Wrap an angle in degrees to [0, 360)."""
    wrapped = np.mod(np.asarray(angle_deg, dtype=float), 360.0)
    # np.mod of a tiny negative number rounds to exactly 360.0; keep the
    # interval half-open.
    return np.where(wrapped >= 360.0, 0.0, wrapped)


def normalize_angle_rad(angle_rad: ArrayLike) -> np.ndarray:
    """Wrap an angle in radians to [0, 2*pi)."""
    return np.mod(np.asarray(angle_rad, dtype=float), 2.0 * np.pi)


def angular_difference(angle_a_deg: ArrayLike, angle_b_deg: ArrayLike) -> np.ndarray:
    """Smallest absolute difference between two bearings, in degrees.

    The result is always in [0, 180], regardless of how the inputs are
    wrapped.  This is the error metric used throughout the evaluation: the
    bearing error between a pseudospectrum peak and ground truth.
    """
    diff = np.abs(normalize_angle_deg(angle_a_deg) - normalize_angle_deg(angle_b_deg))
    return np.minimum(diff, 360.0 - diff)


def signed_angular_difference(angle_a_deg: ArrayLike, angle_b_deg: ArrayLike) -> np.ndarray:
    """Signed smallest difference ``a - b`` between two bearings, in (-180, 180]."""
    diff = np.asarray(angle_a_deg, dtype=float) - np.asarray(angle_b_deg, dtype=float)
    wrapped = np.mod(diff + 180.0, 360.0) - 180.0
    return np.where(np.isclose(wrapped, -180.0), 180.0, wrapped)


def circular_mean(angles_deg: Iterable[float]) -> float:
    """Circular mean of a collection of bearings, in [0, 360).

    Raises
    ------
    ValueError
        If the collection is empty or the angles are perfectly balanced so
        that no mean direction exists.
    """
    angles = np.asarray(list(angles_deg), dtype=float)
    if angles.size == 0:
        raise ValueError("cannot compute the circular mean of an empty collection")
    radians = np.deg2rad(angles)
    sin_sum = float(np.sum(np.sin(radians)))
    cos_sum = float(np.sum(np.cos(radians)))
    if math.isclose(sin_sum, 0.0, abs_tol=1e-12) and math.isclose(cos_sum, 0.0, abs_tol=1e-12):
        raise ValueError("circular mean is undefined for perfectly balanced angles")
    return float(normalize_angle_deg(math.degrees(math.atan2(sin_sum, cos_sum))))


def circular_std(angles_deg: Iterable[float]) -> float:
    """Circular standard deviation (degrees) of a collection of bearings."""
    angles = np.asarray(list(angles_deg), dtype=float)
    if angles.size == 0:
        raise ValueError("cannot compute the circular std of an empty collection")
    radians = np.deg2rad(angles)
    resultant = abs(np.mean(np.exp(1j * radians)))
    resultant = min(max(resultant, 1e-15), 1.0)
    return float(math.degrees(math.sqrt(-2.0 * math.log(resultant))))


def confidence_interval_halfwidth(angles_deg: Sequence[float],
                                  confidence: float = 0.99) -> float:
    """Half-width (degrees) of a normal-approximation confidence interval.

    Used by the Figure 5 reproduction: the paper plots the mean bearing of ten
    per-packet estimates with a 99 % confidence interval.  The estimates are
    tightly clustered so a normal approximation on the signed differences from
    the circular mean is appropriate.
    """
    from scipy import stats

    angles = np.asarray(list(angles_deg), dtype=float)
    if angles.size < 2:
        return 0.0
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    mean = circular_mean(angles)
    deviations = signed_angular_difference(angles, mean)
    std_err = float(np.std(deviations, ddof=1)) / math.sqrt(angles.size)
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=angles.size - 1))
    return t_value * std_err


def linear_to_circular_bearing(angle_deg: ArrayLike) -> np.ndarray:
    """Map a linear-array bearing in [-90, 90] onto the [0, 360) convention."""
    return normalize_angle_deg(angle_deg)


def circular_to_linear_bearing(angle_deg: ArrayLike) -> np.ndarray:
    """Map a [0, 360) bearing onto the linear-array convention (-180, 180]."""
    wrapped = np.mod(np.asarray(angle_deg, dtype=float) + 180.0, 360.0) - 180.0
    return np.where(np.isclose(wrapped, -180.0), 180.0, wrapped)


def bearing_between(origin_xy: Tuple[float, float], target_xy: Tuple[float, float]) -> float:
    """Bearing in degrees, [0, 360), from ``origin_xy`` towards ``target_xy``.

    Angles follow the mathematical convention: 0 degrees along +x, increasing
    counter-clockwise, which matches the testbed floor plan of Figure 4.
    """
    dx = target_xy[0] - origin_xy[0]
    dy = target_xy[1] - origin_xy[1]
    if math.isclose(dx, 0.0, abs_tol=1e-15) and math.isclose(dy, 0.0, abs_tol=1e-15):
        raise ValueError("bearing is undefined for coincident points")
    return float(normalize_angle_deg(math.degrees(math.atan2(dy, dx))))
