"""Generic dataclass (de)serialisation.

The scenario specs of :mod:`repro.api` and the experiment result dataclasses
both need to round-trip through plain dictionaries and JSON so that sweeps can
be persisted, diffed, and re-loaded.  Rather than hand-writing a ``to_dict``
per class, this module walks dataclasses generically:

* ``to_jsonable`` lowers a value to JSON-compatible primitives (dataclasses
  become dicts, numpy arrays become lists, enums become their values);
* ``from_jsonable`` rebuilds a value from primitives, driven entirely by the
  target dataclass's type hints — nested dataclasses, ``Optional``, tuples,
  numpy arrays, enums, and integer/float dictionary keys (which JSON forces
  into strings) are all reconstructed.

``JsonSerializable`` packages the two directions as a mixin so any dataclass
gains ``to_dict``/``from_dict``/``to_json``/``from_json``/``save_json``.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing
from pathlib import Path
from typing import Any, Dict, Type, TypeVar, Union

import numpy as np

T = TypeVar("T")


def to_jsonable(value: Any) -> Any:
    """Lower ``value`` to JSON-compatible primitives (recursively)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.init
        }
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    # Last resort: classes with a canonical string form (e.g. MacAddress).
    return str(value)


def _coerce_key(hint: Any, key: Any) -> Any:
    """JSON turns all mapping keys into strings; undo that using the hint."""
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    if hint is bool and isinstance(key, str):
        return key == "true"
    return key


def from_jsonable(hint: Any, data: Any) -> Any:
    """Rebuild a value of declared type ``hint`` from JSON primitives."""
    if hint is Any or hint is object or hint is None or hint is type(None):
        # ``object`` is the "anything JSON-shaped" hint (free-form metadata
        # mappings); like ``Any`` it passes primitives through untouched.
        return data
    origin = typing.get_origin(hint)
    if origin is Union:
        branches = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if data is None:
            return None
        if len(branches) == 1:
            return from_jsonable(branches[0], data)
        for branch in branches:
            try:
                return from_jsonable(branch, data)
            except (TypeError, ValueError, KeyError):
                continue
        raise ValueError(f"cannot decode {data!r} as any of {branches}")
    if data is None:
        return None
    if origin in (list, typing.Sequence) or (origin is not None and origin.__name__ == "Sequence"):
        args = typing.get_args(hint)
        item_hint = args[0] if args else Any
        return [from_jsonable(item_hint, item) for item in data]
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(from_jsonable(args[0], item) for item in data)
        if args:
            return tuple(from_jsonable(arg, item) for arg, item in zip(args, data))
        return tuple(data)
    if origin is dict or (origin is not None and origin.__name__ == "Mapping"):
        args = typing.get_args(hint)
        key_hint, value_hint = args if args else (Any, Any)
        return {
            _coerce_key(key_hint, key): from_jsonable(value_hint, item)
            for key, item in data.items()
        }
    if isinstance(hint, type):
        if issubclass(hint, enum.Enum):
            return hint(data)
        if hint is np.ndarray:
            return np.asarray(data)
        if dataclasses.is_dataclass(hint):
            field_names = {field.name for field in dataclasses.fields(hint)
                           if field.init}
            unknown = sorted(set(data) - field_names)
            if unknown:
                # A misspelled key silently falling back to the default would
                # run the wrong scenario; fail with the same did-you-mean
                # treatment the registries give unknown component names.
                import difflib

                hints_text = []
                for key in unknown:
                    close = difflib.get_close_matches(key, sorted(field_names),
                                                      n=1, cutoff=0.6)
                    hints_text.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)"
                                                    if close else ""))
                raise ValueError(
                    f"unknown field(s) for {hint.__name__}: " + ", ".join(hints_text))
            hints = typing.get_type_hints(hint)
            kwargs = {
                field.name: from_jsonable(hints[field.name], data[field.name])
                for field in dataclasses.fields(hint)
                if field.init and field.name in data
            }
            return hint(**kwargs)
        if hint is bool:
            return bool(data)
        if hint in (int, float, str):
            return hint(data)
        # Classes constructible from their canonical string form.
        return hint(data)
    return data


class JsonSerializable:
    """Mixin adding dict/JSON round-trip helpers to a dataclass."""

    def to_dict(self) -> Dict[str, Any]:
        """The dataclass as a plain (JSON-compatible) dictionary."""
        return to_jsonable(self)

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
        """Rebuild an instance from :meth:`to_dict` output."""
        return from_jsonable(cls, data)

    def to_json(self, indent: int = 2) -> str:
        """The dataclass as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls: Type[T], text: str) -> T:
        """Rebuild an instance from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the JSON form to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load_json(cls: Type[T], path: Union[str, Path]) -> T:
        """Load an instance previously written by :meth:`save_json`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
