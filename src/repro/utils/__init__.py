"""Utility helpers: angle arithmetic, decibel conversions, RNG management."""

from repro.utils.angles import (
    angular_difference,
    circular_mean,
    circular_std,
    degrees_to_radians,
    normalize_angle_deg,
    normalize_angle_rad,
    radians_to_degrees,
    wrap_to_pi,
)
from repro.utils.decibels import (
    amplitude_ratio_to_db,
    db_to_amplitude_ratio,
    db_to_power_ratio,
    dbm_to_watts,
    power_ratio_to_db,
    watts_to_dbm,
)
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    require_finite,
    require_in_range,
    require_positive,
    require_positive_int,
)

__all__ = [
    "angular_difference",
    "circular_mean",
    "circular_std",
    "degrees_to_radians",
    "normalize_angle_deg",
    "normalize_angle_rad",
    "radians_to_degrees",
    "wrap_to_pi",
    "amplitude_ratio_to_db",
    "db_to_amplitude_ratio",
    "db_to_power_ratio",
    "dbm_to_watts",
    "power_ratio_to_db",
    "watts_to_dbm",
    "ensure_rng",
    "spawn_rng",
    "require_finite",
    "require_in_range",
    "require_positive",
    "require_positive_int",
]
