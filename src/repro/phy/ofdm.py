"""OFDM modulation for 802.11a/g-style 20 MHz channels.

The prototype's clients send ordinary 802.11 OFDM packets; the access point
only needs the raw samples, but generating realistic waveforms matters for two
reasons: the Schmidl–Cox detector relies on the periodic structure of the
short training field, and the correlation-matrix averaging of Section 3 is
performed over a whole packet of wideband samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import OFDM_CYCLIC_PREFIX, OFDM_FFT_SIZE
from repro.kernels.backend import get_backend
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class OfdmConfig:
    """OFDM numerology for a 20 MHz 802.11a/g channel."""

    fft_size: int = OFDM_FFT_SIZE
    cyclic_prefix: int = OFDM_CYCLIC_PREFIX
    #: Indices (FFT bin numbers, negative allowed) of occupied subcarriers.
    #: 802.11a/g uses -26..-1 and 1..26 (52 subcarriers, DC unused).
    occupied_subcarriers: Sequence[int] = tuple(
        list(range(-26, 0)) + list(range(1, 27))
    )

    def __post_init__(self) -> None:
        require_positive_int(self.fft_size, "fft_size")
        if self.cyclic_prefix < 0:
            raise ValueError("cyclic_prefix must be non-negative")
        if self.cyclic_prefix >= self.fft_size:
            raise ValueError("cyclic_prefix must be shorter than the FFT size")
        occupied = list(self.occupied_subcarriers)
        if not occupied:
            raise ValueError("at least one occupied subcarrier is required")
        half = self.fft_size // 2
        for subcarrier in occupied:
            if not -half <= subcarrier < half:
                raise ValueError(
                    f"subcarrier {subcarrier} out of range for FFT size {self.fft_size}")
        if len(set(occupied)) != len(occupied):
            raise ValueError("occupied subcarriers must be unique")

    @property
    def symbol_length(self) -> int:
        """OFDM symbol length in samples, including the cyclic prefix."""
        return self.fft_size + self.cyclic_prefix

    @property
    def num_occupied(self) -> int:
        """Number of occupied subcarriers."""
        return len(tuple(self.occupied_subcarriers))


class OfdmModulator:
    """Modulate frequency-domain subcarrier values into time-domain symbols.

    ``backend`` selects the compute backend for the stacked payload IFFT
    (see :func:`repro.kernels.get_backend`); the default numpy backend is
    bit-identical to calling ``np.fft.ifft`` directly.
    """

    def __init__(self, config: OfdmConfig = OfdmConfig(), backend=None):
        self.config = config
        self._backend = get_backend(backend)

    def modulate_symbol(self, subcarrier_values: np.ndarray,
                        include_cyclic_prefix: bool = True) -> np.ndarray:
        """Return the time-domain samples of one OFDM symbol.

        ``subcarrier_values`` maps one complex value to each occupied
        subcarrier (in the order of ``config.occupied_subcarriers``).
        """
        values = np.asarray(subcarrier_values, dtype=complex)
        occupied = tuple(self.config.occupied_subcarriers)
        if values.shape != (len(occupied),):
            raise ValueError(
                f"expected {len(occupied)} subcarrier values, got shape {values.shape}")
        spectrum = np.zeros(self.config.fft_size, dtype=complex)
        for value, subcarrier in zip(values, occupied):
            spectrum[subcarrier % self.config.fft_size] = value
        # The IFFT normalisation keeps the average sample power roughly equal
        # to the average subcarrier power.
        # Scalar reference path pinned by the stacked-IFFT equivalence test:
        # modulate_payload_batch routes through backend.ifft; this single-
        # symbol helper is the bit-exact numpy reference it must match.
        symbol = np.fft.ifft(spectrum) * np.sqrt(  # repro-lint: disable=seam-bypass
            self.config.fft_size / max(len(occupied), 1))
        if include_cyclic_prefix and self.config.cyclic_prefix > 0:
            symbol = np.concatenate([symbol[-self.config.cyclic_prefix:], symbol])
        return symbol

    def modulate_payload(self, bits: np.ndarray) -> np.ndarray:
        """QPSK-modulate ``bits`` onto as many OFDM symbols as needed.

        Bits are padded with zeros to fill the final symbol.  Returns the
        concatenated time-domain samples.  All symbols are synthesised in one
        stacked IFFT (bit-identical to modulating them one at a time, since
        the FFT processes rows independently).
        """
        return self.modulate_payload_batch([bits])[0]

    def modulate_payload_batch(self, bits_batch: Sequence[np.ndarray]
                               ) -> List[np.ndarray]:
        """Modulate many payloads with one stacked IFFT over all symbols.

        Each entry is processed exactly like :meth:`modulate_payload`
        (bit-identical — the IFFT treats rows independently), but the OFDM
        symbols of the whole batch share a single FFT call, which is what
        makes burst synthesis fast.
        """
        bits_per_symbol = 2 * self.config.num_occupied
        prepared: List[np.ndarray] = []
        symbol_counts: List[int] = []
        for bits in bits_batch:
            bits = np.asarray(bits).astype(int).ravel()
            if bits.size == 0:
                raise ValueError("payload must contain at least one bit")
            if np.any((bits != 0) & (bits != 1)):
                raise ValueError("bits must be 0 or 1")
            remainder = bits.size % bits_per_symbol
            if remainder:
                bits = np.concatenate(
                    [bits, np.zeros(bits_per_symbol - remainder, dtype=int)])
            prepared.append(bits)
            symbol_counts.append(bits.size // bits_per_symbol)
        if not prepared:
            return []
        total_symbols = sum(symbol_counts)
        qpsk = _qpsk_map(np.concatenate(prepared)).reshape(
            total_symbols, self.config.num_occupied)
        occupied = tuple(self.config.occupied_subcarriers)
        bins = np.array([subcarrier % self.config.fft_size for subcarrier in occupied])
        spectra = np.zeros((total_symbols, self.config.fft_size), dtype=complex)
        spectra[:, bins] = qpsk
        scale = np.sqrt(self.config.fft_size / max(len(occupied), 1))
        symbols = self._backend.ifft(spectra) * scale
        if self.config.cyclic_prefix > 0:
            symbols = np.concatenate(
                [symbols[:, -self.config.cyclic_prefix:], symbols], axis=1)
        payloads: List[np.ndarray] = []
        start = 0
        for count in symbol_counts:
            payloads.append(symbols[start:start + count].ravel())
            start += count
        return payloads

    def random_payload(self, num_symbols: int, rng: RngLike = None) -> np.ndarray:
        """Generate ``num_symbols`` OFDM symbols of random QPSK data."""
        num_symbols = require_positive_int(num_symbols, "num_symbols")
        generator = ensure_rng(rng)
        bits = generator.integers(0, 2, size=num_symbols * 2 * self.config.num_occupied)
        return self.modulate_payload(bits)


def _qpsk_map(bits: np.ndarray) -> np.ndarray:
    """Map pairs of bits onto Gray-coded QPSK constellation points."""
    if bits.size % 2 != 0:
        raise ValueError("QPSK requires an even number of bits")
    pairs = bits.reshape(-1, 2)
    in_phase = 1.0 - 2.0 * pairs[:, 0]
    quadrature = 1.0 - 2.0 * pairs[:, 1]
    return (in_phase + 1j * quadrature) / np.sqrt(2.0)
