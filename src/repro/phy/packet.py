"""PHY packets: preamble plus OFDM payload, with MAC-layer annotations.

The access point's AoA pipeline works on whole packets (Section 3 of the
paper: "we detect individual packets in the incoming stream of samples, and
compute the correlation matrix ... with each entire packet"), so the packet is
the natural unit linking the MAC frame (whose source address the signature is
bound to) and the raw samples the estimator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mac.frames import Dot11Frame
from repro.phy.ofdm import OfdmConfig, OfdmModulator
from repro.phy.preamble import legacy_preamble
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class PhyPacket:
    """A transmit-side PHY packet: waveform samples plus the MAC frame they carry."""

    waveform: np.ndarray
    frame: Optional[Dot11Frame] = None
    config: OfdmConfig = field(default_factory=OfdmConfig)

    def __post_init__(self) -> None:
        waveform = np.asarray(self.waveform, dtype=complex)
        if waveform.ndim != 1 or waveform.size == 0:
            raise ValueError("waveform must be a non-empty 1-D complex array")
        object.__setattr__(self, "waveform", waveform)

    @property
    def num_samples(self) -> int:
        """Number of baseband samples in the packet."""
        return int(self.waveform.size)

    def duration_s(self, sample_rate_hz: float) -> float:
        """Packet air time in seconds at ``sample_rate_hz``."""
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        return self.num_samples / sample_rate_hz

    def normalized(self) -> "PhyPacket":
        """Return a copy whose waveform has unit average power."""
        power = float(np.mean(np.abs(self.waveform) ** 2))
        if power <= 0:
            raise ValueError("cannot normalise a zero-power waveform")
        return PhyPacket(self.waveform / np.sqrt(power), self.frame, self.config)


def make_packet_waveform(frame: Optional[Dot11Frame] = None,
                         num_payload_symbols: int = 20,
                         config: OfdmConfig = OfdmConfig(),
                         rng: RngLike = None) -> PhyPacket:
    """Build a normalised PHY packet: legacy preamble plus an OFDM payload.

    When a MAC ``frame`` is supplied, its serialised bits form the start of the
    payload (padded with random bits up to ``num_payload_symbols`` symbols);
    otherwise the payload is random data.  The waveform is normalised to unit
    average power so transmit power is applied consistently by the channel.
    """
    num_payload_symbols = require_positive_int(num_payload_symbols, "num_payload_symbols")
    generator = ensure_rng(rng)
    modulator = OfdmModulator(config)
    bits_per_symbol = 2 * config.num_occupied
    total_bits = num_payload_symbols * bits_per_symbol
    if frame is not None:
        frame_bits = frame.to_bits()
        if frame_bits.size > total_bits:
            # Keep the packet length fixed; long frames simply use more symbols.
            total_bits = int(np.ceil(frame_bits.size / bits_per_symbol)) * bits_per_symbol
        padding = generator.integers(0, 2, size=total_bits - frame_bits.size)
        bits = np.concatenate([frame_bits, padding])
    else:
        bits = generator.integers(0, 2, size=total_bits)
    payload = modulator.modulate_payload(bits)
    waveform = np.concatenate([legacy_preamble(config), payload])
    return PhyPacket(waveform, frame, config).normalized()
