"""PHY packets: preamble plus OFDM payload, with MAC-layer annotations.

The access point's AoA pipeline works on whole packets (Section 3 of the
paper: "we detect individual packets in the incoming stream of samples, and
compute the correlation matrix ... with each entire packet"), so the packet is
the natural unit linking the MAC frame (whose source address the signature is
bound to) and the raw samples the estimator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.mac.frames import Dot11Frame
from repro.phy.ofdm import OfdmConfig, OfdmModulator
from repro.phy.preamble import _legacy_preamble_cached
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class PhyPacket:
    """A transmit-side PHY packet: waveform samples plus the MAC frame they carry."""

    waveform: np.ndarray
    frame: Optional[Dot11Frame] = None
    config: OfdmConfig = field(default_factory=OfdmConfig)

    def __post_init__(self) -> None:
        waveform = np.asarray(self.waveform, dtype=complex)
        if waveform.ndim != 1 or waveform.size == 0:
            raise ValueError("waveform must be a non-empty 1-D complex array")
        object.__setattr__(self, "waveform", waveform)

    @property
    def num_samples(self) -> int:
        """Number of baseband samples in the packet."""
        return int(self.waveform.size)

    def duration_s(self, sample_rate_hz: float) -> float:
        """Packet air time in seconds at ``sample_rate_hz``."""
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        return self.num_samples / sample_rate_hz

    def normalized(self) -> "PhyPacket":
        """Return a copy whose waveform has unit average power."""
        power = float(np.mean(np.abs(self.waveform) ** 2))
        if power <= 0:
            raise ValueError("cannot normalise a zero-power waveform")
        return PhyPacket(self.waveform / np.sqrt(power), self.frame, self.config)


def make_packet_waveform(frame: Optional[Dot11Frame] = None,
                         num_payload_symbols: int = 20,
                         config: OfdmConfig = OfdmConfig(),
                         rng: RngLike = None,
                         backend=None) -> PhyPacket:
    """Build a normalised PHY packet: legacy preamble plus an OFDM payload.

    When a MAC ``frame`` is supplied, its serialised bits form the start of the
    payload (padded with random bits up to ``num_payload_symbols`` symbols);
    otherwise the payload is random data.  The waveform is normalised to unit
    average power so transmit power is applied consistently by the channel.
    """
    num_payload_symbols = require_positive_int(num_payload_symbols, "num_payload_symbols")
    generator = ensure_rng(rng)
    modulator = OfdmModulator(config, backend=backend)
    bits = _packet_bits(frame, num_payload_symbols, config, generator)
    payload = modulator.modulate_payload(bits)
    # The cached preamble is read-only and shared; np.concatenate copies it
    # into the fresh packet buffer, so no caller can corrupt the cache.
    waveform = np.concatenate([_legacy_preamble_cached(config.fft_size), payload])
    return PhyPacket(waveform, frame, config).normalized()


def make_packet_waveforms(frames: Sequence[Optional[Dot11Frame]],
                          num_payload_symbols: int = 20,
                          config: OfdmConfig = OfdmConfig(),
                          rngs: Optional[Sequence[RngLike]] = None,
                          backend=None) -> List[PhyPacket]:
    """Build a whole burst of PHY packets with one stacked payload IFFT.

    Bit-identical to calling :func:`make_packet_waveform` once per frame with
    the matching generator (payload/padding bits are drawn frame by frame in
    the same order; the stacked OFDM modulation treats symbols row-wise), but
    the modulation cost is amortised across the burst.
    """
    num_payload_symbols = require_positive_int(num_payload_symbols, "num_payload_symbols")
    frames = list(frames)
    if rngs is None:
        generators = [ensure_rng(None) for _ in frames]
    else:
        generators = [ensure_rng(rng) for rng in rngs]
        if len(generators) != len(frames):
            raise ValueError(
                f"expected {len(frames)} rng substreams, got {len(generators)}")
    modulator = OfdmModulator(config, backend=backend)
    bits_batch = [
        _packet_bits(frame, num_payload_symbols, config, generator)
        for frame, generator in zip(frames, generators)
    ]
    payloads = modulator.modulate_payload_batch(bits_batch)
    preamble = _legacy_preamble_cached(config.fft_size)
    if len({payload.size for payload in payloads}) > 1:
        # Oversized frames grow their packets; assemble those one by one.
        return [
            PhyPacket(np.concatenate([preamble, payload]), frame, config).normalized()
            for frame, payload in zip(frames, payloads)
        ]
    # Uniform burst: assemble and normalise every packet in one matrix.  Each
    # row sees the same elementwise operations as the scalar path (row-wise
    # mean, correctly-rounded sqrt and division), so packets stay
    # bit-identical to make_packet_waveform.
    matrix = np.empty((len(frames), preamble.size + payloads[0].size),
                      dtype=complex)
    matrix[:, :preamble.size] = preamble
    matrix[:, preamble.size:] = payloads
    powers = np.mean(np.abs(matrix) ** 2, axis=1)
    if np.any(powers <= 0):
        raise ValueError("cannot normalise a zero-power waveform")
    scales = np.sqrt(powers)
    matrix /= scales[:, None]
    return [
        PhyPacket(matrix[index], frame, config)
        for index, frame in enumerate(frames)
    ]


def _packet_bits(frame: Optional[Dot11Frame], num_payload_symbols: int,
                 config: OfdmConfig, generator: np.random.Generator) -> np.ndarray:
    """The payload bits of one packet: frame bits plus random padding."""
    bits_per_symbol = 2 * config.num_occupied
    total_bits = num_payload_symbols * bits_per_symbol
    if frame is not None:
        frame_bits = frame.to_bits()
        if frame_bits.size > total_bits:
            # Keep the packet length fixed; long frames simply use more symbols.
            total_bits = int(np.ceil(frame_bits.size / bits_per_symbol)) * bits_per_symbol
        padding = generator.integers(0, 2, size=total_bits - frame_bits.size)
        return np.concatenate([frame_bits, padding])
    return generator.integers(0, 2, size=total_bits)
