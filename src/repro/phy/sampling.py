"""Capture-buffer assembly.

The WARP prototype samples 20 MHz of bandwidth for 0.4 ms at a time and ships
each buffer to the host.  ``SampleBuffer`` builds such buffers: it places one
or more packets' worth of per-antenna samples at chosen offsets inside a
buffer of idle (noise-only) samples, which is what the Schmidl–Cox detector
then has to find.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_CAPTURE_DURATION_S, DEFAULT_SAMPLE_RATE_HZ
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive


class SampleBuffer:
    """Assemble fixed-length multi-antenna capture buffers.

    Parameters
    ----------
    num_antennas:
        Number of antenna rows.
    duration_s / sample_rate_hz:
        Buffer length; defaults to the prototype's 0.4 ms at 20 MHz
        (8000 samples).
    noise_floor_power:
        Power of the idle-air noise filling the buffer outside packets
        (watts).  Zero gives a silent buffer.
    """

    def __init__(self, num_antennas: int,
                 duration_s: float = DEFAULT_CAPTURE_DURATION_S,
                 sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
                 noise_floor_power: float = 0.0,
                 rng: RngLike = None):
        if num_antennas < 1:
            raise ValueError("num_antennas must be at least 1")
        require_positive(duration_s, "duration_s")
        require_positive(sample_rate_hz, "sample_rate_hz")
        if noise_floor_power < 0:
            raise ValueError("noise_floor_power must be non-negative")
        self.num_antennas = int(num_antennas)
        self.sample_rate_hz = float(sample_rate_hz)
        self.num_samples = int(round(duration_s * sample_rate_hz))
        if self.num_samples < 1:
            raise ValueError("buffer duration too short for the sample rate")
        self.noise_floor_power = float(noise_floor_power)
        self._rng = ensure_rng(rng)
        self._placements: List[Tuple[int, np.ndarray]] = []

    def place(self, antenna_samples: np.ndarray, offset: Optional[int] = None) -> int:
        """Place a packet's (num_antennas, T) samples at ``offset`` in the buffer.

        A ``None`` offset picks a random position that fits.  Returns the
        offset used.  Overlapping placements simply add (co-channel
        interference), which is physically what would happen on air.
        """
        antenna_samples = np.asarray(antenna_samples, dtype=complex)
        if antenna_samples.ndim != 2 or antenna_samples.shape[0] != self.num_antennas:
            raise ValueError(
                f"expected ({self.num_antennas}, T) samples, got {antenna_samples.shape}")
        length = antenna_samples.shape[1]
        if length > self.num_samples:
            raise ValueError(
                f"packet of {length} samples does not fit in a buffer of {self.num_samples}")
        if offset is None:
            offset = int(self._rng.integers(0, self.num_samples - length + 1))
        if not 0 <= offset <= self.num_samples - length:
            raise ValueError(f"offset {offset} leaves no room for {length} samples")
        self._placements.append((offset, antenna_samples))
        return offset

    def assemble(self) -> np.ndarray:
        """Return the (num_antennas, num_samples) buffer with all placements summed."""
        if self.noise_floor_power > 0:
            sigma = np.sqrt(self.noise_floor_power / 2.0)
            buffer = (self._rng.normal(0.0, sigma, (self.num_antennas, self.num_samples))
                      + 1j * self._rng.normal(0.0, sigma, (self.num_antennas, self.num_samples)))
        else:
            buffer = np.zeros((self.num_antennas, self.num_samples), dtype=complex)
        for offset, samples in self._placements:
            buffer[:, offset:offset + samples.shape[1]] += samples
        return buffer

    def clear(self) -> None:
        """Remove all placements (the noise floor is regenerated on assemble)."""
        self._placements.clear()

    @property
    def placements(self) -> List[Tuple[int, int]]:
        """List of (offset, length) pairs for the packets placed so far."""
        return [(offset, samples.shape[1]) for offset, samples in self._placements]
