"""802.11a/g legacy preamble: short and long training fields.

The short training field (STF) consists of ten repetitions of a 16-sample
pattern and is what the Schmidl–Cox detector keys on; the long training field
(LTF) carries two full-length known symbols used for channel estimation and
fine timing.  The subcarrier sequences below are the standard 802.11a values.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.phy.ofdm import OfdmConfig

#: 802.11a short-training-field frequency-domain sequence on subcarriers
#: -26..26 (53 entries including DC).  Non-zero every fourth subcarrier.
_STF_SEQUENCE = np.sqrt(13.0 / 6.0) * np.array([
    0, 0, 1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0,
    1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0, -1 - 1j, 0,
    0, 0, 1 + 1j, 0, 0, 0, 0, 0, 0, 0,
    -1 - 1j, 0, 0, 0, -1 - 1j, 0, 0, 0, 1 + 1j, 0,
    0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0, 0,
    1 + 1j, 0, 0,
], dtype=complex)

#: 802.11a long-training-field frequency-domain sequence on subcarriers
#: -26..26 (53 entries including DC).
_LTF_SEQUENCE = np.array([
    1, 1, -1, -1, 1, 1, -1, 1, -1, 1,
    1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
    1, -1, 1, 1, 1, 1, 0, 1, -1, -1,
    1, 1, -1, 1, -1, 1, -1, -1, -1, -1,
    -1, 1, 1, -1, -1, 1, -1, 1, -1, 1,
    1, 1, 1,
], dtype=complex)


def _sequence_to_spectrum(sequence: np.ndarray, fft_size: int) -> np.ndarray:
    """Place a -26..26 subcarrier sequence into an ``fft_size`` FFT input."""
    if sequence.size != 53:
        raise ValueError(f"expected a 53-entry subcarrier sequence, got {sequence.size}")
    spectrum = np.zeros(fft_size, dtype=complex)
    for offset, value in zip(range(-26, 27), sequence):
        spectrum[offset % fft_size] = value
    return spectrum


@lru_cache(maxsize=8)
def _short_training_field_cached(fft_size: int) -> np.ndarray:
    spectrum = _sequence_to_spectrum(_STF_SEQUENCE, fft_size)
    # One lru_cached IFFT per FFT size over the process lifetime — a pure
    # constant-table build, not a hot path the accelerator seam could help.
    base = np.fft.ifft(spectrum) * np.sqrt(fft_size / 12.0)  # repro-lint: disable=seam-bypass
    # The STF is periodic with period fft_size/4 = 16 samples; two and a half
    # base symbols give the standard 160-sample field.
    repeated = np.tile(base, 3)[: fft_size * 2 + fft_size // 2].copy()
    repeated.flags.writeable = False
    return repeated


@lru_cache(maxsize=8)
def _long_training_field_cached(fft_size: int) -> np.ndarray:
    spectrum = _sequence_to_spectrum(_LTF_SEQUENCE, fft_size)
    # Same as the STF: cached constant-table build, one IFFT per FFT size.
    symbol = np.fft.ifft(spectrum) * np.sqrt(fft_size / 52.0)  # repro-lint: disable=seam-bypass
    cyclic_prefix = symbol[-fft_size // 2:]
    field = np.concatenate([cyclic_prefix, symbol, symbol])
    field.flags.writeable = False
    return field


@lru_cache(maxsize=8)
def _legacy_preamble_cached(fft_size: int) -> np.ndarray:
    """Read-only cached preamble — the hot path for packet synthesis.

    The training fields are pure functions of the FFT size, so packet
    generation never needs to re-run their IFFTs.  Callers must not mutate
    the returned array; the public wrappers below hand out fresh copies.
    """
    preamble = np.concatenate([_short_training_field_cached(fft_size),
                               _long_training_field_cached(fft_size)])
    preamble.flags.writeable = False
    return preamble


def short_training_field(config: OfdmConfig = OfdmConfig()) -> np.ndarray:
    """Time-domain short training field: 160 samples (10 x 16) at 20 MHz."""
    return _short_training_field_cached(config.fft_size).copy()


def long_training_field(config: OfdmConfig = OfdmConfig()) -> np.ndarray:
    """Time-domain long training field: 160 samples (32-sample CP + 2 symbols)."""
    return _long_training_field_cached(config.fft_size).copy()


def legacy_preamble(config: OfdmConfig = OfdmConfig()) -> np.ndarray:
    """Full 802.11a/g legacy preamble: STF followed by LTF (320 samples)."""
    return _legacy_preamble_cached(config.fft_size).copy()


def stf_period(config: OfdmConfig = OfdmConfig()) -> int:
    """Period (samples) of the STF's repeating pattern — 16 at 20 MHz."""
    return config.fft_size // 4
