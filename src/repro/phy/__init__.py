"""802.11-style physical layer: OFDM preambles, packets, packet detection."""

from repro.phy.ofdm import OfdmConfig, OfdmModulator
from repro.phy.preamble import long_training_field, short_training_field, legacy_preamble
from repro.phy.packet import PhyPacket, make_packet_waveform
from repro.phy.schmidl_cox import SchmidlCoxDetector, DetectionResult
from repro.phy.sampling import SampleBuffer

__all__ = [
    "OfdmConfig",
    "OfdmModulator",
    "short_training_field",
    "long_training_field",
    "legacy_preamble",
    "PhyPacket",
    "make_packet_waveform",
    "SchmidlCoxDetector",
    "DetectionResult",
    "SampleBuffer",
]
