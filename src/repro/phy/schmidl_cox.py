"""Schmidl–Cox OFDM packet detection.

The prototype locates packets inside each 0.4 ms capture buffer with the
Schmidl–Cox algorithm [Schmidl & Cox 1997], which exploits the periodic
structure of the OFDM short training field: a sliding window correlates the
signal with itself delayed by one STF period; the normalised metric plateaus
near 1 while the STF is in the window and is low elsewhere.  The detector also
estimates the coarse carrier-frequency offset from the phase of the
correlation, which downstream processing can use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.phy.ofdm import OfdmConfig
from repro.phy.preamble import legacy_preamble, stf_period
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class DetectionResult:
    """One detected packet within a sample stream."""

    #: Index of the first sample of the detected preamble.
    start_index: int
    #: Peak value of the normalised timing metric (0..1).
    metric: float
    #: Estimated carrier-frequency offset in Hz (from the correlation phase).
    cfo_hz: float

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ValueError("start_index must be non-negative")
        if not 0.0 <= self.metric <= 1.0 + 1e-9:
            raise ValueError(f"metric must be in [0, 1], got {self.metric!r}")


class SchmidlCoxDetector:
    """Detect OFDM packets in a single-antenna complex sample stream."""

    def __init__(self, config: OfdmConfig = OfdmConfig(),
                 sample_rate_hz: float = 20e6,
                 threshold: float = 0.75,
                 min_energy: float = 1e-15,
                 min_plateau: int = 32):
        require_positive(sample_rate_hz, "sample_rate_hz")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold!r}")
        if min_energy <= 0:
            raise ValueError("min_energy must be positive")
        if min_plateau < 1:
            raise ValueError("min_plateau must be at least 1")
        self.config = config
        self.sample_rate_hz = float(sample_rate_hz)
        self.threshold = float(threshold)
        self.min_energy = float(min_energy)
        #: Minimum number of consecutive above-threshold samples for a
        #: detection.  A genuine STF keeps the metric high for well over 100
        #: samples; brief spikes at packet edges or over structured payload
        #: symbols are rejected by this width check.
        self.min_plateau = int(min_plateau)
        self._period = stf_period(config)
        self._preamble_length = legacy_preamble(config).size

    # ------------------------------------------------------------------ metric
    def timing_metric(self, samples: np.ndarray) -> np.ndarray:
        """Normalised Schmidl–Cox timing metric for every window start index."""
        samples = np.asarray(samples, dtype=complex).ravel()
        period = self._period
        window = 2 * period
        if samples.size < window + 1:
            return np.zeros(0)
        # P(d) = sum_{m} conj(r[d+m]) r[d+m+L];  R(d) = sum_{m} |r[d+m+L]|^2
        products = np.conj(samples[:-period]) * samples[period:]
        energies = np.abs(samples[period:]) ** 2
        kernel = np.ones(period)
        p = np.convolve(products, kernel, mode="valid")
        r = np.convolve(energies, kernel, mode="valid")
        metric = np.abs(p) ** 2 / np.maximum(r**2, self.min_energy)
        return np.clip(metric, 0.0, 1.0)

    # --------------------------------------------------------------- detection
    def detect(self, samples: np.ndarray, max_packets: Optional[int] = None
               ) -> List[DetectionResult]:
        """Detect packets; returns one result per detected preamble, in order."""
        samples = np.asarray(samples, dtype=complex).ravel()
        metric = self.timing_metric(samples)
        if metric.size == 0:
            return []
        results: List[DetectionResult] = []
        index = 0
        while index < metric.size:
            if metric[index] < self.threshold:
                index += 1
                continue
            # Found the start of a plateau; find its extent and take the first
            # index of the plateau as the packet start (the metric plateaus
            # over the cyclic-prefix-like ambiguity region).
            end = index
            while end < metric.size and metric[end] >= self.threshold:
                end += 1
            if end - index < self.min_plateau:
                index = end
                continue
            plateau = metric[index:end]
            peak_offset = int(np.argmax(plateau))
            start = index
            peak_metric = float(plateau[peak_offset])
            cfo = self._estimate_cfo(samples, index + peak_offset)
            results.append(DetectionResult(start_index=start, metric=peak_metric, cfo_hz=cfo))
            if max_packets is not None and len(results) >= max_packets:
                break
            # Skip past the rest of this packet's preamble before looking again.
            index = max(end, index + self._preamble_length)
        return results

    def detect_first(self, samples: np.ndarray) -> Optional[DetectionResult]:
        """Convenience wrapper returning only the first detection (or ``None``)."""
        results = self.detect(samples, max_packets=1)
        return results[0] if results else None

    # ---------------------------------------------------------------- internals
    def _estimate_cfo(self, samples: np.ndarray, index: int) -> float:
        """Coarse CFO estimate from the phase of the STF auto-correlation."""
        period = self._period
        if index + 2 * period > samples.size:
            return 0.0
        first = samples[index:index + period]
        second = samples[index + period:index + 2 * period]
        correlation = np.sum(np.conj(first) * second)
        if np.abs(correlation) < self.min_energy:
            return 0.0
        phase = float(np.angle(correlation))
        return phase * self.sample_rate_hz / (2.0 * np.pi * period)
