"""Sample captures.

A :class:`Capture` is the unit of data flowing through the SecureAngle
pipeline: a buffer of complex baseband samples, one row per antenna, plus the
metadata needed to interpret it (sampling rate, carrier frequency, whether the
per-chain phase offsets have been calibrated out, and arbitrary annotations
such as the transmitting client's MAC address or ground-truth position).

The prototype buffers 0.4 ms of 20 MHz samples per capture and ships them to
Matlab over Ethernet; our Capture is that buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

import numpy as np

from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ, DEFAULT_SAMPLE_RATE_HZ


@dataclass(frozen=True)
class Capture:
    """A buffered multi-antenna sample capture.

    Parameters
    ----------
    samples:
        Complex array of shape (num_antennas, num_samples).
    sample_rate_hz:
        Sampling rate of the capture.
    carrier_frequency_hz:
        RF carrier the capture was downconverted from.
    timestamp_s:
        Capture time on the access point's clock (seconds).
    calibrated:
        True once per-chain phase offsets have been removed.
    metadata:
        Free-form annotations (source MAC, ground-truth bearing, etc.).
    """

    samples: np.ndarray
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    timestamp_s: float = 0.0
    calibrated: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # complex64 captures (the reduced-precision synthesis mode) keep
        # their dtype; everything else is promoted to complex128 as before.
        samples = np.asarray(self.samples)
        if samples.dtype != np.complex64:
            samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 2:
            raise ValueError(
                f"samples must be (num_antennas, num_samples), got shape {samples.shape}")
        if samples.shape[0] < 1 or samples.shape[1] < 1:
            raise ValueError("capture must contain at least one antenna and one sample")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        if self.carrier_frequency_hz <= 0:
            raise ValueError("carrier_frequency_hz must be positive")
        object.__setattr__(self, "samples", samples)

    @property
    def num_antennas(self) -> int:
        """Number of antenna rows in the capture."""
        return int(self.samples.shape[0])

    @property
    def num_samples(self) -> int:
        """Number of time samples per antenna."""
        return int(self.samples.shape[1])

    @property
    def duration_s(self) -> float:
        """Capture duration in seconds."""
        return self.num_samples / self.sample_rate_hz

    def power_dbm(self) -> float:
        """Mean per-antenna power of the capture, in dBm (samples are in volts

        across a 1-ohm reference, i.e. sample power is watts)."""
        mean_power_w = float(np.mean(np.abs(self.samples) ** 2))
        if mean_power_w <= 0:
            return float("-inf")
        return 10.0 * np.log10(mean_power_w * 1e3)

    def with_samples(self, samples: np.ndarray, calibrated: Optional[bool] = None) -> "Capture":
        """Return a copy of the capture with different samples."""
        samples = np.asarray(samples)
        if samples.dtype != np.complex64:
            samples = np.asarray(samples, dtype=complex)
        return replace(self, samples=samples,
                       calibrated=self.calibrated if calibrated is None else calibrated)

    def with_metadata(self, **entries: Any) -> "Capture":
        """Return a copy with extra metadata entries merged in."""
        merged = dict(self.metadata)
        merged.update(entries)
        return replace(self, metadata=merged)

    def slice_time(self, start: int, stop: int) -> "Capture":
        """Return a copy containing samples ``start:stop`` (all antennas)."""
        if not 0 <= start < stop <= self.num_samples:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for a capture of {self.num_samples} samples")
        return self.with_samples(self.samples[:, start:stop])

    def select_antennas(self, indices) -> "Capture":
        """Return a copy containing only the given antenna rows."""
        indices = list(indices)
        if len(indices) < 1:
            raise ValueError("at least one antenna index is required")
        for index in indices:
            if not 0 <= index < self.num_antennas:
                raise IndexError(f"antenna index {index} out of range")
        return self.with_samples(self.samples[indices])

    def __repr__(self) -> str:
        state = "calibrated" if self.calibrated else "raw"
        return (f"Capture({self.num_antennas} antennas x {self.num_samples} samples, "
                f"{state}, t={self.timestamp_s:.3f} s)")
