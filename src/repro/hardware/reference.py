"""The calibration reference source (the paper's USRP2).

For calibration the prototype feeds a continuous 2.4 GHz carrier from a USRP2
through a 36 dB attenuator and an 8-way splitter into every radio front end
over equal-length cables.  Because the path lengths are equal, any phase
difference measured between chains is due to the chains themselves — exactly
the quantity calibration must cancel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import CALIBRATION_ATTENUATION_DB
from repro.utils.validation import require_positive, require_positive_int


class CalibrationSource:
    """A continuous-wave source split equally to every radio chain.

    Parameters
    ----------
    output_power_dbm:
        Source output power before the attenuator.
    attenuation_db:
        In-line attenuation (the paper uses 36 dB so the cabled signal does
        not overload the front ends).
    num_outputs:
        Number of splitter outputs (one per radio chain).
    tone_offset_hz:
        Baseband frequency of the calibration tone after downconversion.  A
        small non-zero offset keeps the tone away from DC, where real
        receivers have artefacts; zero gives a pure DC tone.
    """

    def __init__(self, output_power_dbm: float = 10.0,
                 attenuation_db: float = CALIBRATION_ATTENUATION_DB,
                 num_outputs: int = 8,
                 tone_offset_hz: float = 0.0):
        self.output_power_dbm = float(output_power_dbm)
        if attenuation_db < 0:
            raise ValueError("attenuation_db must be non-negative")
        self.attenuation_db = float(attenuation_db)
        self.num_outputs = require_positive_int(num_outputs, "num_outputs")
        self.tone_offset_hz = float(tone_offset_hz)
        # An 8-way splitter divides power equally: 10*log10(8) ~ 9 dB plus a
        # small excess loss per port.
        self.splitter_loss_db = 10.0 * np.log10(self.num_outputs) + 0.5

    @property
    def delivered_power_dbm(self) -> float:
        """Power delivered to each radio chain input."""
        return self.output_power_dbm - self.attenuation_db - self.splitter_loss_db

    def generate(self, num_samples: int, sample_rate_hz: float) -> np.ndarray:
        """Return the (num_outputs, num_samples) calibration signal.

        Every output carries an identical copy of the tone (equal-length
        cables), so the rows are exactly equal — any inter-row phase
        difference seen after the radio chains is the chains' own offsets.
        """
        num_samples = require_positive_int(num_samples, "num_samples")
        require_positive(sample_rate_hz, "sample_rate_hz")
        amplitude = np.sqrt(10.0 ** ((self.delivered_power_dbm - 30.0) / 10.0))
        t = np.arange(num_samples) / sample_rate_hz
        tone = amplitude * np.exp(2j * np.pi * self.tone_offset_hz * t)
        return np.tile(tone, (self.num_outputs, 1))
