"""Local oscillators.

Section 2.2 of the paper explains the central hardware obstacle to AoA
estimation: each radio chain's downconverter introduces an unknown phase
offset, and even when the oscillators are phase-locked (running at exactly the
same frequency, as MIMO requires) the offsets remain unknown *and different
per chain*, which breaks the inter-antenna phase comparison that AoA relies
on.  ``LocalOscillator`` models exactly that: a phase-locked oscillator with
an unknown but constant phase offset drawn at construction time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive


class LocalOscillator:
    """A 2.4 GHz oscillator with an unknown, constant phase offset.

    Parameters
    ----------
    frequency_hz:
        Nominal oscillator frequency.
    phase_offset_rad:
        The unknown phase offset.  ``None`` draws it uniformly from [0, 2*pi),
        which is what an uncalibrated board looks like.
    frequency_offset_hz:
        Residual frequency error relative to the shared reference.  Zero for
        phase-locked chains (the prototype shares sampling clocks and locks
        oscillators); non-zero values model an unlocked chain and are used in
        tests to show why phase locking matters.
    """

    def __init__(self, frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 phase_offset_rad: Optional[float] = None,
                 frequency_offset_hz: float = 0.0,
                 rng: RngLike = None):
        self.frequency_hz = require_positive(frequency_hz, "frequency_hz")
        generator = ensure_rng(rng)
        if phase_offset_rad is None:
            phase_offset_rad = float(generator.uniform(0.0, 2.0 * np.pi))
        self.phase_offset_rad = float(phase_offset_rad) % (2.0 * np.pi)
        self.frequency_offset_hz = float(frequency_offset_hz)
        # One-slot cache for the downconversion factor: packets of a burst all
        # have the same length and sample rate, and the oscillator's phase is
        # constant, so the per-sample complex exponential can be reused across
        # every capture instead of being re-evaluated per packet.
        self._mixer_cache_key: Optional[tuple] = None
        self._mixer_cache: Optional[np.ndarray] = None

    def mixer_phase(self, num_samples: int, sample_rate_hz: float) -> np.ndarray:
        """Phase (radians) the downconverting mixer applies to each sample."""
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        require_positive(sample_rate_hz, "sample_rate_hz")
        t = np.arange(num_samples) / sample_rate_hz
        return self.phase_offset_rad + 2.0 * np.pi * self.frequency_offset_hz * t

    def mixer_conjugate(self, num_samples: int, sample_rate_hz: float) -> np.ndarray:
        """The (cached, read-only) downconversion factor ``exp(-1j * phase)``.

        Memoized per ``(num_samples, sample_rate_hz)`` with a one-slot cache:
        the oscillator's phase never changes after construction, so the value
        is a pure function of the request and identical across packets.
        """
        key = (int(num_samples), float(sample_rate_hz))
        if self._mixer_cache_key != key:
            phase = self.mixer_phase(num_samples, sample_rate_hz)
            mixer = np.exp(-1j * phase)
            mixer.flags.writeable = False
            self._mixer_cache_key = key
            self._mixer_cache = mixer
        return self._mixer_cache

    def downconvert(self, samples: np.ndarray, sample_rate_hz: float) -> np.ndarray:
        """Apply the oscillator's phase (and any frequency error) to ``samples``."""
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError("samples must be 1-D (a single chain's signal)")
        mixer = self.mixer_conjugate(samples.size, sample_rate_hz)
        return samples * mixer

    @property
    def is_phase_locked(self) -> bool:
        """True when the oscillator runs at exactly the reference frequency."""
        return self.frequency_offset_hz == 0.0

    def __repr__(self) -> str:
        locked = "locked" if self.is_phase_locked else f"offset {self.frequency_offset_hz:g} Hz"
        return (f"LocalOscillator({self.frequency_hz / 1e9:.3f} GHz, "
                f"phase {np.degrees(self.phase_offset_rad):.1f} deg, {locked})")


class OscillatorBank:
    """A set of phase-locked oscillators, one per radio chain.

    The dotted line between oscillators in Figure 2 of the paper: all run at
    the same frequency, but each has its own unknown phase offset.
    """

    def __init__(self, num_chains: int,
                 frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 phase_offsets_rad: Optional[Sequence[float]] = None,
                 rng: RngLike = None):
        if num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        generator = ensure_rng(rng)
        if phase_offsets_rad is None:
            offsets = [None] * num_chains
        else:
            offsets = list(phase_offsets_rad)
            if len(offsets) != num_chains:
                raise ValueError(
                    f"expected {num_chains} phase offsets, got {len(offsets)}")
        self.oscillators: List[LocalOscillator] = [
            LocalOscillator(frequency_hz, offset, rng=generator) for offset in offsets
        ]

    @property
    def num_chains(self) -> int:
        """Number of oscillators in the bank."""
        return len(self.oscillators)

    @property
    def phase_offsets_rad(self) -> np.ndarray:
        """Array of the per-chain phase offsets (unknown to the estimator)."""
        return np.array([osc.phase_offset_rad for osc in self.oscillators])

    def relative_phase_offsets_rad(self) -> np.ndarray:
        """Per-chain offsets relative to chain 0 — what calibration recovers."""
        offsets = self.phase_offsets_rad
        return np.mod(offsets - offsets[0], 2.0 * np.pi)

    def mixer_table(self, num_samples: int, sample_rate_hz: float) -> np.ndarray:
        """Stacked per-chain downconversion factors, shape (num_chains, S).

        Each row is the matching oscillator's (cached)
        :meth:`LocalOscillator.mixer_conjugate`, so a batched receiver can
        downconvert every chain of every packet in one broadcast multiply.
        """
        return np.stack([
            oscillator.mixer_conjugate(num_samples, sample_rate_hz)
            for oscillator in self.oscillators
        ])

    def __getitem__(self, index: int) -> LocalOscillator:
        return self.oscillators[index]

    def __len__(self) -> int:
        return len(self.oscillators)
