"""The multi-board array receiver.

The prototype (Figure 3 of the paper) is two WARP boards of four radio chains
each, modified to share sampling clocks so there is no inter-board frequency
offset, plus the RF switches and cabled calibration source of Figure 2.
``ArrayReceiver`` models the whole assembly: it takes the noiseless
per-antenna signals produced by :class:`repro.channel.channel.ArrayChannel`,
passes them through the eight radio chains (each with its own unknown phase
offset, gain mismatch, and thermal noise), and emits a :class:`Capture`.

It can also capture the calibration source (switches in the "lower" position),
which is what :mod:`repro.calibration` uses to recover the phase offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ, DEFAULT_SAMPLE_RATE_HZ
from repro.hardware.capture import Capture
from repro.hardware.oscillator import OscillatorBank
from repro.hardware.radiochain import RadioChain, RadioChainConfig
from repro.hardware.reference import CalibrationSource
from repro.hardware.switch import RFSwitch, SwitchPosition
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class ReceiverConfig:
    """Static parameters of the array receiver."""

    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    chain_config: RadioChainConfig = field(default_factory=RadioChainConfig)
    #: Whether thermal noise is added (disabled by some unit tests that check
    #: phase relationships exactly).
    add_noise: bool = True

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")


class ArrayReceiver:
    """An N-chain phase-locked receiver attached to an antenna array."""

    def __init__(self, array: AntennaArray,
                 config: Optional[ReceiverConfig] = None,
                 phase_offsets_rad: Optional[Sequence[float]] = None,
                 rng: RngLike = None):
        self.array = array
        self.config = config = config if config is not None else ReceiverConfig()
        self._rng = ensure_rng(rng)
        num_chains = array.num_elements
        self.oscillators = OscillatorBank(
            num_chains,
            frequency_hz=config.carrier_frequency_hz,
            phase_offsets_rad=phase_offsets_rad,
            rng=spawn_rng(self._rng, stream=1),
        )
        chain_rng = spawn_rng(self._rng, stream=2)
        self.chains: List[RadioChain] = [
            RadioChain(self.oscillators[i], config.chain_config, rng=spawn_rng(chain_rng, stream=i))
            for i in range(num_chains)
        ]
        self.switch = RFSwitch(num_chains)

    @property
    def num_chains(self) -> int:
        """Number of radio chains (equals the number of antennas)."""
        return len(self.chains)

    @property
    def true_phase_offsets_rad(self) -> np.ndarray:
        """Ground-truth per-chain phase offsets (used only by tests/ablations)."""
        return self.oscillators.phase_offsets_rad

    # ------------------------------------------------------------------ capture
    def capture(self, antenna_signals: np.ndarray, timestamp_s: float = 0.0,
                metadata: Optional[dict] = None, add_noise: Optional[bool] = None,
                rng: RngLike = None) -> Capture:
        """Receive over-the-air signals (switches in the antenna position).

        ``antenna_signals`` is the (num_antennas, num_samples) noiseless array
        output of the channel model.
        """
        antenna_signals = np.asarray(antenna_signals, dtype=complex)
        if antenna_signals.ndim != 2 or antenna_signals.shape[0] != self.num_chains:
            raise ValueError(
                f"expected ({self.num_chains}, T) antenna signals, got {antenna_signals.shape}")
        self.switch.set_all(SwitchPosition.ANTENNA)
        return self._receive(antenna_signals, timestamp_s, metadata, add_noise, rng,
                             calibrated=False)

    def capture_calibration(self, source: CalibrationSource,
                            num_samples: int = 1024,
                            timestamp_s: float = 0.0,
                            add_noise: Optional[bool] = None,
                            rng: RngLike = None) -> Capture:
        """Capture the cabled calibration tone (switches in the lower position)."""
        num_samples = require_positive_int(num_samples, "num_samples")
        if source.num_outputs != self.num_chains:
            raise ValueError(
                f"calibration source has {source.num_outputs} outputs "
                f"but the receiver has {self.num_chains} chains")
        self.switch.set_all(SwitchPosition.CALIBRATION)
        signals = source.generate(num_samples, self.config.sample_rate_hz)
        capture = self._receive(signals, timestamp_s, {"source": "calibration"},
                                add_noise, rng, calibrated=False)
        self.switch.set_all(SwitchPosition.ANTENNA)
        return capture

    # ---------------------------------------------------------------- internals
    def _receive(self, signals: np.ndarray, timestamp_s: float,
                 metadata: Optional[dict], add_noise: Optional[bool],
                 rng: RngLike, calibrated: bool) -> Capture:
        if add_noise is None:
            add_noise = self.config.add_noise
        generator = ensure_rng(rng) if rng is not None else self._rng
        received = np.empty_like(signals)
        for index, chain in enumerate(self.chains):
            received[index] = chain.receive(
                signals[index], self.config.sample_rate_hz,
                add_noise=add_noise, rng=spawn_rng(generator, stream=index))
        return Capture(
            samples=received,
            sample_rate_hz=self.config.sample_rate_hz,
            carrier_frequency_hz=self.config.carrier_frequency_hz,
            timestamp_s=float(timestamp_s),
            calibrated=calibrated,
            metadata=dict(metadata or {}),
        )

    def __repr__(self) -> str:
        return (f"ArrayReceiver({self.num_chains} chains, "
                f"{self.config.carrier_frequency_hz / 1e9:.3f} GHz, "
                f"array={self.array.name})")
