"""The multi-board array receiver.

The prototype (Figure 3 of the paper) is two WARP boards of four radio chains
each, modified to share sampling clocks so there is no inter-board frequency
offset, plus the RF switches and cabled calibration source of Figure 2.
``ArrayReceiver`` models the whole assembly: it takes the noiseless
per-antenna signals produced by :class:`repro.channel.channel.ArrayChannel`,
passes them through the eight radio chains (each with its own unknown phase
offset, gain mismatch, and thermal noise), and emits a :class:`Capture`.

It can also capture the calibration source (switches in the "lower" position),
which is what :mod:`repro.calibration` uses to recover the phase offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ, DEFAULT_SAMPLE_RATE_HZ
from repro.hardware.capture import Capture
from repro.hardware.oscillator import OscillatorBank
from repro.hardware.radiochain import RadioChain, RadioChainConfig
from repro.hardware.reference import CalibrationSource
from repro.hardware.switch import RFSwitch, SwitchPosition
from repro.kernels.backend import complex_dtype
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class ReceiverConfig:
    """Static parameters of the array receiver."""

    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    chain_config: RadioChainConfig = field(default_factory=RadioChainConfig)
    #: Whether thermal noise is added (disabled by some unit tests that check
    #: phase relationships exactly).
    add_noise: bool = True

    def __post_init__(self) -> None:
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")


class ArrayReceiver:
    """An N-chain phase-locked receiver attached to an antenna array.

    ``precision`` selects the capture sample dtype: ``"float64"`` (complex128,
    the bit-exact reference) or ``"float32"`` (complex64 captures with native
    float32 noise draws — faster, its own rng-draw layout).
    """

    def __init__(self, array: AntennaArray,
                 config: Optional[ReceiverConfig] = None,
                 phase_offsets_rad: Optional[Sequence[float]] = None,
                 rng: RngLike = None, precision: str = "float64"):
        self.array = array
        self.config = config = config if config is not None else ReceiverConfig()
        self._rng = ensure_rng(rng)
        self.precision = precision
        self._cdtype = complex_dtype(precision)
        num_chains = array.num_elements
        self.oscillators = OscillatorBank(
            num_chains,
            frequency_hz=config.carrier_frequency_hz,
            phase_offsets_rad=phase_offsets_rad,
            rng=spawn_rng(self._rng, stream=1),
        )
        chain_rng = spawn_rng(self._rng, stream=2)
        self.chains: List[RadioChain] = [
            RadioChain(self.oscillators[i], config.chain_config,
                       rng=spawn_rng(chain_rng, stream=i))
            for i in range(num_chains)
        ]
        self.switch = RFSwitch(num_chains)
        # One-slot cache for the fused per-chain gain * downconversion table,
        # keyed by packet length (the sample rate is fixed per receiver).
        self._frontend_cache_key: Optional[int] = None
        self._frontend_cache: Optional[np.ndarray] = None

    @property
    def num_chains(self) -> int:
        """Number of radio chains (equals the number of antennas)."""
        return len(self.chains)

    @property
    def true_phase_offsets_rad(self) -> np.ndarray:
        """Ground-truth per-chain phase offsets (used only by tests/ablations)."""
        return self.oscillators.phase_offsets_rad

    # ------------------------------------------------------------------ capture
    def capture(self, antenna_signals: np.ndarray, timestamp_s: float = 0.0,
                metadata: Optional[dict] = None, add_noise: Optional[bool] = None,
                rng: RngLike = None) -> Capture:
        """Receive over-the-air signals (switches in the antenna position).

        ``antenna_signals`` is the (num_antennas, num_samples) noiseless array
        output of the channel model.
        """
        antenna_signals = np.asarray(antenna_signals, dtype=self._cdtype)
        if antenna_signals.ndim != 2 or antenna_signals.shape[0] != self.num_chains:
            raise ValueError(
                f"expected ({self.num_chains}, T) antenna signals, got {antenna_signals.shape}")
        self.switch.set_all(SwitchPosition.ANTENNA)
        return self._receive(antenna_signals, timestamp_s, metadata, add_noise, rng,
                             calibrated=False)

    def capture_batch(self, antenna_signals: np.ndarray,
                      timestamps_s: Optional[Sequence[float]] = None,
                      metadata: Optional[Sequence[Optional[dict]]] = None,
                      add_noise: Optional[bool] = None,
                      rngs: Optional[Sequence[RngLike]] = None) -> List[Capture]:
        """Receive a whole batch of packets in one vectorized pass.

        ``antenna_signals`` is ``(B, num_antennas, num_samples)``: the stacked
        noiseless outputs of :meth:`ArrayChannel.propagate_batch`.  Gain and
        downconversion are applied as one broadcast multiply over the batch;
        thermal noise is drawn packet by packet from ``rngs`` (one pinned
        generator per packet) with the same per-chain substreams as
        :meth:`capture`, so each returned :class:`Capture` is bit-identical
        to the scalar path given the same generators.
        """
        signals = np.asarray(antenna_signals, dtype=self._cdtype)
        if signals.ndim != 3 or signals.shape[1] != self.num_chains:
            raise ValueError(
                f"expected (B, {self.num_chains}, T) antenna signals, "
                f"got {signals.shape}")
        batch_size, _, num_samples = signals.shape
        if batch_size == 0:
            raise ValueError("capture_batch needs at least one packet")
        if add_noise is None:
            add_noise = self.config.add_noise
        if timestamps_s is None:
            timestamps = [0.0] * batch_size
        else:
            timestamps = [float(t) for t in timestamps_s]
            if len(timestamps) != batch_size:
                raise ValueError(
                    f"expected {batch_size} timestamps, got {len(timestamps)}")
        if metadata is None:
            metadata_list: List[Optional[dict]] = [None] * batch_size
        else:
            metadata_list = list(metadata)
            if len(metadata_list) != batch_size:
                raise ValueError(
                    f"expected {batch_size} metadata entries, got {len(metadata_list)}")
        if rngs is None:
            generators = [self._rng] * batch_size
        else:
            generators = [ensure_rng(rng) for rng in rngs]
            if len(generators) != batch_size:
                raise ValueError(
                    f"expected {batch_size} rng substreams, got {len(generators)}")

        self.switch.set_all(SwitchPosition.ANTENNA)
        # One broadcast multiply applies every chain's gain and downconversion
        # to the whole batch; the scalar path uses the same fused table, so
        # both stay bit-identical.
        frontend = self._frontend_table(num_samples)
        received = signals * frontend[None, :, :]
        if add_noise:
            noise = np.empty_like(received)
            for index, generator in enumerate(generators):
                self._packet_noise(generator, num_samples, out=noise[index])
            # In-place add: elementwise addition is correctly rounded, so the
            # result is bit-identical to the scalar path's out-of-place sum.
            np.add(received, noise, out=received)
        # Capture samples are read-only views into one shared batch buffer:
        # skipping B copies keeps capture cheap, and freezing the buffer
        # guarantees no consumer can corrupt a sibling packet in place.
        received.flags.writeable = False
        return [
            Capture(
                samples=received[index],
                sample_rate_hz=self.config.sample_rate_hz,
                carrier_frequency_hz=self.config.carrier_frequency_hz,
                timestamp_s=timestamps[index],
                calibrated=False,
                metadata=dict(metadata_list[index] or {}),
            )
            for index in range(batch_size)
        ]

    def capture_calibration(self, source: CalibrationSource,
                            num_samples: int = 1024,
                            timestamp_s: float = 0.0,
                            add_noise: Optional[bool] = None,
                            rng: RngLike = None) -> Capture:
        """Capture the cabled calibration tone (switches in the lower position)."""
        num_samples = require_positive_int(num_samples, "num_samples")
        if source.num_outputs != self.num_chains:
            raise ValueError(
                f"calibration source has {source.num_outputs} outputs "
                f"but the receiver has {self.num_chains} chains")
        self.switch.set_all(SwitchPosition.CALIBRATION)
        signals = source.generate(num_samples, self.config.sample_rate_hz)
        capture = self._receive(signals, timestamp_s, {"source": "calibration"},
                                add_noise, rng, calibrated=False)
        self.switch.set_all(SwitchPosition.ANTENNA)
        return capture

    # ---------------------------------------------------------------- internals
    def _frontend_table(self, num_samples: int) -> np.ndarray:
        """Fused per-chain ``gain * mixer_conjugate`` factors, shape (N, S).

        The scalar and batched receive paths multiply signals by this same
        table, which keeps them bit-identical while applying both front-end
        effects in a single pass.
        """
        if self._frontend_cache_key != num_samples:
            mixers = self.oscillators.mixer_table(num_samples,
                                                  self.config.sample_rate_hz)
            gains = np.array([chain.gain_linear for chain in self.chains])
            frontend = gains[:, None] * mixers
            frontend = frontend.astype(self._cdtype, copy=False)
            frontend.flags.writeable = False
            self._frontend_cache_key = num_samples
            self._frontend_cache = frontend
        return self._frontend_cache

    def _packet_noise(self, generator: np.random.Generator, num_samples: int,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        """One packet's thermal noise for every chain, shape (N, S).

        Drawn as two block draws (all real parts, then all imaginary parts)
        from the packet's generator.  numpy fills row-major, so the same
        helper produces the same noise in the scalar and batched receive
        paths — which is what keeps them bit-identical.
        """
        sigmas = [chain.noise_sigma for chain in self.chains]
        noise = out if out is not None else np.empty(
            (self.num_chains, num_samples), dtype=self._cdtype)
        if noise.real.dtype == np.float32:
            # Reduced precision: native float32 variates are roughly twice as
            # fast to draw.  This intentionally uses a different rng stream
            # layout than the float64 reference — the float32 mode trades
            # bit-reproducibility for speed.
            shape = (self.num_chains, num_samples)
            if len(set(sigmas)) == 1:
                noise.real = generator.standard_normal(shape, dtype=np.float32) * sigmas[0]
                noise.imag = generator.standard_normal(shape, dtype=np.float32) * sigmas[0]
            else:
                for index, sigma in enumerate(sigmas):
                    noise.real[index] = generator.standard_normal(
                        num_samples, dtype=np.float32) * sigma
                for index, sigma in enumerate(sigmas):
                    noise.imag[index] = generator.standard_normal(
                        num_samples, dtype=np.float32) * sigma
            return noise
        if len(set(sigmas)) == 1:
            shape = (self.num_chains, num_samples)
            noise.real = generator.normal(0.0, sigmas[0], shape)
            noise.imag = generator.normal(0.0, sigmas[0], shape)
        else:
            # Heterogeneous chains: per-row draws in the same (all-real,
            # all-imaginary) order as the block draw above.
            for index, sigma in enumerate(sigmas):
                noise.real[index] = generator.normal(0.0, sigma, num_samples)
            for index, sigma in enumerate(sigmas):
                noise.imag[index] = generator.normal(0.0, sigma, num_samples)
        return noise

    def _receive(self, signals: np.ndarray, timestamp_s: float,
                 metadata: Optional[dict], add_noise: Optional[bool],
                 rng: RngLike, calibrated: bool) -> Capture:
        if add_noise is None:
            add_noise = self.config.add_noise
        generator = ensure_rng(rng) if rng is not None else self._rng
        signals = np.asarray(signals, dtype=self._cdtype)
        frontend = self._frontend_table(signals.shape[-1])
        received = signals * frontend
        if add_noise:
            noise = self._packet_noise(generator, signals.shape[-1])
            np.add(received, noise, out=received)
        return Capture(
            samples=received,
            sample_rate_hz=self.config.sample_rate_hz,
            carrier_frequency_hz=self.config.carrier_frequency_hz,
            timestamp_s=float(timestamp_s),
            calibrated=calibrated,
            metadata=dict(metadata or {}),
        )

    def __repr__(self) -> str:
        return (f"ArrayReceiver({self.num_chains} chains, "
                f"{self.config.carrier_frequency_hz / 1e9:.3f} GHz, "
                f"array={self.array.name})")
