"""Radio receive chains.

A radio chain is one antenna port of the WARP board: low-noise amplifier,
downconverting mixer driven by that chain's local oscillator, and ADC.  The
impairments that matter for SecureAngle are (a) the unknown per-chain phase
offset (see :mod:`repro.hardware.oscillator`), (b) small per-chain gain
mismatch, and (c) thermal noise set by the chain's noise figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import REFERENCE_TEMPERATURE_K, BOLTZMANN_CONSTANT
from repro.hardware.oscillator import LocalOscillator
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class RadioChainConfig:
    """Static parameters of a radio chain."""

    #: Receiver noise figure in dB (typical WARP front end: ~6 dB).
    noise_figure_db: float = 6.0
    #: Standard deviation of per-chain gain mismatch in dB.
    gain_mismatch_std_db: float = 0.5
    #: Receiver bandwidth (Hz) over which thermal noise is integrated.
    bandwidth_hz: float = 20e6

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0:
            raise ValueError("noise_figure_db must be non-negative")
        if self.gain_mismatch_std_db < 0:
            raise ValueError("gain_mismatch_std_db must be non-negative")
        require_positive(self.bandwidth_hz, "bandwidth_hz")

    @property
    def noise_power_watts(self) -> float:
        """Thermal noise power referred to the chain input, in watts."""
        noise_floor = BOLTZMANN_CONSTANT * REFERENCE_TEMPERATURE_K * self.bandwidth_hz
        return noise_floor * 10.0 ** (self.noise_figure_db / 10.0)


class RadioChain:
    """One antenna's receive chain: gain, downconversion, thermal noise."""

    def __init__(self, oscillator: LocalOscillator,
                 config: Optional[RadioChainConfig] = None,
                 gain_db: Optional[float] = None,
                 rng: RngLike = None):
        self.oscillator = oscillator
        self.config = config = config if config is not None else RadioChainConfig()
        generator = ensure_rng(rng)
        if gain_db is None:
            gain_db = float(generator.normal(0.0, config.gain_mismatch_std_db))
        self.gain_db = float(gain_db)
        self._rng = generator

    @property
    def gain_linear(self) -> float:
        """Voltage gain of the chain (relative to the nominal chain gain)."""
        return 10.0 ** (self.gain_db / 20.0)

    @property
    def noise_sigma(self) -> float:
        """Per-quadrature thermal-noise standard deviation at the chain input."""
        return float(np.sqrt(self.config.noise_power_watts / 2.0))

    def sample_noise(self, num_samples: int, rng: RngLike = None) -> np.ndarray:
        """Draw one packet's complex thermal-noise vector for this chain.

        Used by :meth:`receive` for standalone (single-chain) use.  Note that
        :class:`~repro.hardware.receiver.ArrayReceiver` draws its noise per
        *packet* (all chains in two block draws, see
        ``ArrayReceiver._packet_noise``), not per chain through this method,
        so the two layouts consume their generators differently.
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        sigma = self.noise_sigma
        # Filling real/imag parts directly is bit-identical to
        # ``normal(...) + 1j * normal(...)`` and skips two temporaries.
        noise = np.empty(num_samples, dtype=complex)
        noise.real = generator.normal(0.0, sigma, num_samples)
        noise.imag = generator.normal(0.0, sigma, num_samples)
        return noise

    def receive(self, samples: np.ndarray, sample_rate_hz: float,
                add_noise: bool = True, rng: RngLike = None) -> np.ndarray:
        """Pass ``samples`` (one antenna's noiseless signal) through the chain."""
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError("a radio chain processes a single antenna's 1-D signal")
        generator = ensure_rng(rng) if rng is not None else self._rng
        output = self.gain_linear * self.oscillator.downconvert(samples, sample_rate_hz)
        if add_noise:
            noise = self.sample_noise(samples.size, rng=generator)
            output = output + noise
        return output

    def __repr__(self) -> str:
        return (f"RadioChain(gain={self.gain_db:+.2f} dB, "
                f"NF={self.config.noise_figure_db:.1f} dB, {self.oscillator!r})")
