"""RF input switches.

Figure 2 of the paper shows a switch in front of each radio receiver that
selects between the antenna (normal operation, "upper" position) and the
calibration signal from the USRP2 via the attenuator and splitter ("lower"
position).  The switch model simply keeps track of the position per chain and
routes whichever input is selected.
"""

from __future__ import annotations

import enum
from typing import List

import numpy as np


class SwitchPosition(enum.Enum):
    """Which input each radio chain's switch feeds to the receiver."""

    ANTENNA = "antenna"
    CALIBRATION = "calibration"


class RFSwitch:
    """A bank of per-chain RF switches."""

    def __init__(self, num_chains: int, insertion_loss_db: float = 0.5):
        if num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        if insertion_loss_db < 0:
            raise ValueError("insertion_loss_db must be non-negative")
        self.num_chains = int(num_chains)
        self.insertion_loss_db = float(insertion_loss_db)
        self._positions: List[SwitchPosition] = [SwitchPosition.ANTENNA] * self.num_chains

    @property
    def positions(self) -> List[SwitchPosition]:
        """Current position of each switch."""
        return list(self._positions)

    def set_all(self, position: SwitchPosition) -> None:
        """Throw every switch to ``position``."""
        if not isinstance(position, SwitchPosition):
            raise TypeError("position must be a SwitchPosition")
        self._positions = [position] * self.num_chains

    def set_position(self, chain: int, position: SwitchPosition) -> None:
        """Throw a single chain's switch."""
        if not 0 <= chain < self.num_chains:
            raise IndexError(f"chain {chain} out of range")
        if not isinstance(position, SwitchPosition):
            raise TypeError("position must be a SwitchPosition")
        self._positions[chain] = position

    def route(self, antenna_inputs: np.ndarray, calibration_inputs: np.ndarray) -> np.ndarray:
        """Select, per chain, the antenna or calibration input.

        Both inputs are (num_chains, num_samples) arrays; the output applies
        the switch insertion loss to whichever input is selected.
        """
        antenna_inputs = np.asarray(antenna_inputs, dtype=complex)
        calibration_inputs = np.asarray(calibration_inputs, dtype=complex)
        if antenna_inputs.shape != calibration_inputs.shape:
            raise ValueError("antenna and calibration inputs must have the same shape")
        if antenna_inputs.shape[0] != self.num_chains:
            raise ValueError(
                f"expected {self.num_chains} chains, got {antenna_inputs.shape[0]}")
        loss = 10.0 ** (-self.insertion_loss_db / 20.0)
        output = np.empty_like(antenna_inputs)
        for chain, position in enumerate(self._positions):
            source = antenna_inputs if position is SwitchPosition.ANTENNA else calibration_inputs
            output[chain] = loss * source[chain]
        return output
