"""Radio hardware models: the WARP-like array receiver and its impairments."""

from repro.hardware.capture import Capture
from repro.hardware.oscillator import LocalOscillator, OscillatorBank
from repro.hardware.radiochain import RadioChain, RadioChainConfig
from repro.hardware.switch import RFSwitch, SwitchPosition
from repro.hardware.reference import CalibrationSource
from repro.hardware.receiver import ArrayReceiver, ReceiverConfig

__all__ = [
    "Capture",
    "LocalOscillator",
    "OscillatorBank",
    "RadioChain",
    "RadioChainConfig",
    "RFSwitch",
    "SwitchPosition",
    "CalibrationSource",
    "ArrayReceiver",
    "ReceiverConfig",
]
