"""RSS "signalprints" (Faria & Cheriton, ACM WiSe 2006).

The related-work section of the paper notes that "the most widely used
physical layer information is received signal strength (RSS) ... very coarse
compared to physical-layer [phase] information, so is prone to error if few
packets are available.  Furthermore, attackers with directional antennas can
subvert RSS-based systems."  To make that comparison concrete, this module
implements an RSS-based identity check in the style of signalprints: the
fingerprint of a client is the vector of received signal strengths observed
by a set of access points (or, at a single AP, its antennas); identity checks
threshold the per-entry differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.mac.address import MacAddress


@dataclass(frozen=True)
class RssSignalprint:
    """A vector of RSS values (dBm), one per observation point (AP or antenna)."""

    rss_dbm: np.ndarray

    def __post_init__(self) -> None:
        rss = np.asarray(self.rss_dbm, dtype=float).ravel()
        if rss.size < 1:
            raise ValueError("a signalprint needs at least one RSS value")
        if not np.all(np.isfinite(rss)):
            raise ValueError("RSS values must be finite")
        object.__setattr__(self, "rss_dbm", rss)

    @staticmethod
    def from_capture_power(per_antenna_power_dbm) -> "RssSignalprint":
        """Build a signalprint from per-antenna received powers."""
        return RssSignalprint(np.asarray(per_antenna_power_dbm, dtype=float))

    def max_difference_db(self, other: "RssSignalprint") -> float:
        """Largest absolute per-entry difference (dB) against another print."""
        if other.rss_dbm.size != self.rss_dbm.size:
            raise ValueError("signalprints cover a different number of observation points")
        return float(np.max(np.abs(self.rss_dbm - other.rss_dbm)))

    def mean_difference_db(self, other: "RssSignalprint") -> float:
        """Mean absolute per-entry difference (dB) against another print."""
        if other.rss_dbm.size != self.rss_dbm.size:
            raise ValueError("signalprints cover a different number of observation points")
        return float(np.mean(np.abs(self.rss_dbm - other.rss_dbm)))


class RssSpoofingDetector:
    """Identity checks based on signalprint differences.

    A packet matches the trained identity when the maximum per-entry RSS
    difference stays below ``match_threshold_db`` (Faria & Cheriton use
    5–10 dB).  This is the baseline the spoofing benchmark compares
    SecureAngle against.
    """

    def __init__(self, match_threshold_db: float = 6.0):
        if match_threshold_db <= 0:
            raise ValueError("match_threshold_db must be positive")
        self.match_threshold_db = float(match_threshold_db)
        self._prints: Dict[MacAddress, RssSignalprint] = {}

    def train(self, address: MacAddress, signalprint: RssSignalprint) -> None:
        """Store the certified signalprint for ``address``."""
        self._prints[address] = signalprint

    def lookup(self, address: MacAddress) -> Optional[RssSignalprint]:
        """Return the stored signalprint, or ``None``."""
        return self._prints.get(address)

    def matches(self, address: MacAddress, observation: RssSignalprint) -> bool:
        """True when ``observation`` is consistent with the stored identity."""
        trained = self._prints.get(address)
        if trained is None:
            return False
        return trained.max_difference_db(observation) <= self.match_threshold_db

    def difference_db(self, address: MacAddress, observation: RssSignalprint) -> float:
        """The decision statistic (max per-entry difference) for ROC sweeps."""
        trained = self._prints.get(address)
        if trained is None:
            return float("inf")
        return trained.max_difference_db(observation)

    def __len__(self) -> int:
        return len(self._prints)


def signalprint_from_captures(captures: Mapping[str, "object"]) -> RssSignalprint:
    """Build a multi-AP signalprint from a mapping of AP name to Capture.

    Uses each capture's mean power; ordering is the sorted AP names so prints
    built from the same APs are always comparable.
    """
    if not captures:
        raise ValueError("at least one capture is required")
    names = sorted(captures.keys())
    powers = [captures[name].power_dbm() for name in names]
    return RssSignalprint(np.asarray(powers, dtype=float))
