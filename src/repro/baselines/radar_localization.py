"""RADAR-style RSS fingerprint localisation (Bahl & Padmanabhan, Infocom 2000).

The paper cites RADAR as the canonical RSS-based location system.  It is
included as the localisation baseline for the virtual-fence evaluation: a
training phase records the RSS vector (one entry per AP) at known positions,
and localisation returns the position of the nearest fingerprint (or the
centroid of the k nearest) in signal space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geometry.point import Point


@dataclass(frozen=True)
class RssFingerprint:
    """One training sample: a known position and the RSS vector seen there."""

    position: Point
    rss_dbm: np.ndarray

    def __post_init__(self) -> None:
        rss = np.asarray(self.rss_dbm, dtype=float).ravel()
        if rss.size < 1:
            raise ValueError("a fingerprint needs at least one RSS value")
        if not np.all(np.isfinite(rss)):
            raise ValueError("RSS values must be finite")
        object.__setattr__(self, "rss_dbm", rss)


class RadarLocalizer:
    """k-nearest-neighbour localisation in RSS space."""

    def __init__(self, k: int = 3):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = int(k)
        self._fingerprints: List[RssFingerprint] = []

    def train(self, fingerprints: Sequence[RssFingerprint]) -> None:
        """Add training fingerprints to the radio map."""
        fingerprints = list(fingerprints)
        if not fingerprints:
            raise ValueError("at least one fingerprint is required")
        size = fingerprints[0].rss_dbm.size
        for fingerprint in fingerprints:
            if fingerprint.rss_dbm.size != size:
                raise ValueError("all fingerprints must cover the same set of APs")
        self._fingerprints.extend(fingerprints)

    @property
    def num_fingerprints(self) -> int:
        """Number of training samples in the radio map."""
        return len(self._fingerprints)

    def locate(self, rss_dbm: Sequence[float]) -> Point:
        """Estimate the position for an observed RSS vector.

        Returns the centroid of the k nearest fingerprints in Euclidean RSS
        distance.
        """
        if not self._fingerprints:
            raise ValueError("the localiser has not been trained")
        observation = np.asarray(rss_dbm, dtype=float).ravel()
        if observation.size != self._fingerprints[0].rss_dbm.size:
            raise ValueError("observation does not cover the same set of APs as the radio map")
        distances = np.array([
            float(np.linalg.norm(observation - fp.rss_dbm)) for fp in self._fingerprints
        ])
        nearest = np.argsort(distances)[: min(self.k, len(self._fingerprints))]
        xs = [self._fingerprints[i].position.x for i in nearest]
        ys = [self._fingerprints[i].position.y for i in nearest]
        return Point(float(np.mean(xs)), float(np.mean(ys)))

    def localization_error_m(self, rss_dbm: Sequence[float], true_position: Point) -> float:
        """Euclidean error (metres) of the estimate against ``true_position``."""
        estimate = self.locate(rss_dbm)
        return estimate.distance_to(true_position)
