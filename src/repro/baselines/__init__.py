"""Baseline physical-layer identification schemes the paper compares against."""

from repro.baselines.rss_signalprint import RssSignalprint, RssSpoofingDetector
from repro.baselines.radar_localization import RadarLocalizer, RssFingerprint

__all__ = [
    "RssSignalprint",
    "RssSpoofingDetector",
    "RssFingerprint",
    "RadarLocalizer",
]
