"""Virtual fences.

"We investigate restriction of use to the building or room containing the
access point ... With direct path AoA information obtained from multiple
SecureAngle APs, high-precision indoor location can be determined to enable
this service." (Sections 1 and 2.3.1.)

``VirtualFence`` combines the triangulated client location with a boundary
polygon (the building or office outline) and produces an accept/drop decision.
A configurable margin treats clients within a small band outside the boundary
as inside (bearing errors of a few degrees translate to position errors of a
metre or so at office scales); an inconsistent triangulation (large residual)
can be configured to fail open or closed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.localization import BearingObservation, LocationEstimate, triangulate_bearings
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class FenceDecision(enum.Enum):
    """Outcome of a virtual-fence check."""

    #: Client localised inside the boundary: frames are accepted.
    INSIDE = "inside"
    #: Client localised outside the boundary: frames are dropped.
    OUTSIDE = "outside"
    #: Bearings were inconsistent or insufficient to localise the client.
    INDETERMINATE = "indeterminate"


@dataclass(frozen=True)
class FenceCheck:
    """Detailed outcome of one fence evaluation."""

    decision: FenceDecision
    location: Optional[LocationEstimate] = None

    @property
    def accepted(self) -> bool:
        """True when the client's frames should be accepted."""
        return self.decision is FenceDecision.INSIDE


class VirtualFence:
    """Drop frames from clients localised outside a geographic boundary.

    Parameters
    ----------
    boundary:
        The building/office outline.
    margin_m:
        Extra slack: a client localised within ``margin_m`` outside the
        boundary still counts as inside (absorbs bearing-estimation error).
    max_residual_m:
        Triangulations with an RMS line-to-point residual above this are
        considered unreliable and yield ``INDETERMINATE``.
    fail_open:
        What to do with indeterminate localisations at the policy level:
        ``True`` treats them as inside (availability over security), ``False``
        as outside.  The decision itself is still reported as indeterminate.
    """

    def __init__(self, boundary: Polygon, margin_m: float = 1.0,
                 max_residual_m: float = 2.5, fail_open: bool = False):
        if margin_m < 0:
            raise ValueError("margin_m must be non-negative")
        if max_residual_m <= 0:
            raise ValueError("max_residual_m must be positive")
        self.boundary = boundary
        self.margin_m = float(margin_m)
        self.max_residual_m = float(max_residual_m)
        self.fail_open = bool(fail_open)
        self._expanded = boundary.expanded(margin_m) if margin_m > 0 else boundary

    # ------------------------------------------------------------------ checks
    def check_location(self, location: LocationEstimate) -> FenceCheck:
        """Evaluate a pre-computed location estimate against the boundary."""
        if location.residual_m > self.max_residual_m:
            return FenceCheck(FenceDecision.INDETERMINATE, location)
        inside = self._expanded.contains(location.position)
        return FenceCheck(FenceDecision.INSIDE if inside else FenceDecision.OUTSIDE, location)

    def check_bearings(self, observations: Sequence[BearingObservation]) -> FenceCheck:
        """Triangulate ``observations`` and evaluate the result."""
        try:
            location = triangulate_bearings(observations)
        except ValueError:
            return FenceCheck(FenceDecision.INDETERMINATE, None)
        return self.check_location(location)

    def check_point(self, point: Point) -> FenceCheck:
        """Evaluate a known position (useful for ground-truth comparisons)."""
        inside = self._expanded.contains(point)
        location = LocationEstimate(position=point, residual_m=0.0, num_bearings=0)
        return FenceCheck(FenceDecision.INSIDE if inside else FenceDecision.OUTSIDE, location)

    def admits(self, check: FenceCheck) -> bool:
        """Final accept/drop policy, applying the fail-open/closed rule."""
        if check.decision is FenceDecision.INSIDE:
            return True
        if check.decision is FenceDecision.OUTSIDE:
            return False
        return self.fail_open
