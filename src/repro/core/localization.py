"""Multi-AP localisation from direct-path bearings.

"In an environment where more than two access points are computing this
bearing information, the intersection point of the direct path AoA is
identified as the location of client" (Section 2.3.1).  With exactly two APs
the two bearing lines intersect at a point; with more, the bearing lines
generally do not meet exactly and the least-squares point closest to all of
them is used.  The residual of that fit doubles as a consistency check: false
direct-path peaks (strong reflections mistaken for the direct path) from
different APs "may not intersect with each other" (Section 3.1), showing up as
a large residual.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point


@dataclass(frozen=True)
class BearingObservation:
    """One access point's direct-path bearing towards a client."""

    ap_position: Point
    bearing_deg: float
    #: Optional 1-sigma bearing uncertainty (degrees) used to weight the fit.
    sigma_deg: float = 3.0

    def __post_init__(self) -> None:
        if self.sigma_deg <= 0:
            raise ValueError("sigma_deg must be positive")

    @property
    def direction(self) -> Tuple[float, float]:
        """Unit direction vector of the bearing line."""
        theta = math.radians(self.bearing_deg)
        return (math.cos(theta), math.sin(theta))


@dataclass(frozen=True)
class LocationEstimate:
    """The triangulated client position."""

    position: Point
    #: RMS perpendicular distance (metres) of the position from the bearing lines.
    residual_m: float
    #: Number of bearing observations used.
    num_bearings: int

    @property
    def consistent(self) -> bool:
        """True when the bearing lines (nearly) agree on a single point."""
        return self.residual_m < 1.5


def triangulate_bearings(observations: Sequence[BearingObservation]) -> LocationEstimate:
    """Least-squares intersection of two or more bearing lines.

    Each observation constrains the client to lie on a ray from the AP along
    the measured bearing.  Writing the perpendicular distance from a candidate
    point to each bearing line gives a linear least-squares problem; the
    weights are the inverse bearing variances.

    Raises
    ------
    ValueError
        If fewer than two observations are supplied or the bearing lines are
        (nearly) parallel so no unique intersection exists.
    """
    observations = list(observations)
    if len(observations) < 2:
        raise ValueError("triangulation requires at least two bearing observations")

    rows: List[List[float]] = []
    rhs: List[float] = []
    weights: List[float] = []
    for obs in observations:
        dx, dy = obs.direction
        # The normal to the bearing direction; the line is n . (p - ap) = 0.
        nx, ny = -dy, dx
        rows.append([nx, ny])
        rhs.append(nx * obs.ap_position.x + ny * obs.ap_position.y)
        weights.append(1.0 / obs.sigma_deg)

    a = np.asarray(rows, dtype=float)
    b = np.asarray(rhs, dtype=float)
    w = np.asarray(weights, dtype=float)
    aw = a * w[:, None]
    bw = b * w
    try:
        solution, residuals, rank, _ = np.linalg.lstsq(aw, bw, rcond=None)
    except np.linalg.LinAlgError as error:  # pragma: no cover - defensive
        raise ValueError(f"triangulation failed: {error}") from error
    if rank < 2:
        raise ValueError("bearing lines are parallel; cannot triangulate")
    position = Point(float(solution[0]), float(solution[1]))

    # Residual: RMS perpendicular distance from the solution to each line.
    distances = []
    for obs in observations:
        dx, dy = obs.direction
        nx, ny = -dy, dx
        distance = abs(nx * (position.x - obs.ap_position.x)
                       + ny * (position.y - obs.ap_position.y))
        distances.append(distance)
    residual = float(np.sqrt(np.mean(np.square(distances))))
    return LocationEstimate(position=position, residual_m=residual,
                            num_bearings=len(observations))


def bearing_lines_intersection(first: BearingObservation,
                               second: BearingObservation) -> Point:
    """Exact intersection of two bearing lines (convenience for two APs)."""
    return triangulate_bearings([first, second]).position
