"""Signature tracking.

"Since S_cl changes when the client or nearby obstacles move, the AP needs to
track and update S_cl.  We can accomplish this using uplink traffic that the
clients send to the AP." (Section 2.3.2.)

The tracker implements that update rule: every uplink packet whose signature
*matches* the stored one (i.e. is judged to come from the legitimate client)
is blended into the stored signature with an exponential-moving-average
weight, so the certified signature follows slow environmental change.
Packets that do *not* match are never blended in — otherwise an attacker could
walk the signature towards their own location — they are only counted as
anomalies by the detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.database import SignatureDatabase
from repro.core.metrics import signature_similarity
from repro.core.signature import AoASignature
from repro.mac.address import MacAddress


@dataclass(frozen=True)
class TrackerConfig:
    """Parameters of the signature update rule."""

    #: EMA weight given to each new matching observation.
    update_weight: float = 0.2
    #: Minimum similarity for an observation to be blended into the stored
    #: signature.  Set at or above the spoofing detector's threshold so that
    #: suspicious packets never influence the certified signature.
    min_similarity_to_update: float = 0.6
    #: Maximum age (seconds) before a stored signature is considered stale and
    #: should be re-trained rather than incrementally updated.
    max_signature_age_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.update_weight <= 1.0:
            raise ValueError("update_weight must be in (0, 1]")
        if not 0.0 <= self.min_similarity_to_update <= 1.0:
            raise ValueError("min_similarity_to_update must be in [0, 1]")
        if self.max_signature_age_s <= 0:
            raise ValueError("max_signature_age_s must be positive")


class SignatureTracker:
    """Keep per-client signatures fresh from matching uplink traffic."""

    def __init__(self, database: SignatureDatabase,
                 config: Optional[TrackerConfig] = None):
        self.database = database
        self.config = config if config is not None else TrackerConfig()

    def observe(self, address: MacAddress, observation: AoASignature,
                timestamp_s: float) -> bool:
        """Offer a new observation for ``address``.

        Returns ``True`` when the observation was blended into the stored
        signature (it matched well enough), ``False`` otherwise.  Unknown
        addresses are never updated here — training is an explicit step.
        """
        record = self.database.lookup(address)
        if record is None:
            return False
        similarity = signature_similarity(record.signature, observation)
        if similarity < self.config.min_similarity_to_update:
            return False
        blended = record.signature.merged_with(observation, weight=self.config.update_weight)
        self.database.update(address, blended, timestamp_s)
        return True

    def is_stale(self, address: MacAddress, now_s: float) -> bool:
        """True when the stored signature is older than the configured maximum age."""
        record = self.database.lookup(address)
        if record is None:
            return True
        return (now_s - record.updated_at_s) > self.config.max_signature_age_s
