"""The multi-AP SecureAngle controller.

The virtual-fence application needs bearings from "more than two access
points ... computing this bearing information" (Section 2.3.1).  The
controller owns the set of APs and the building boundary, collects each AP's
direct-path bearing for a packet, triangulates the client, evaluates the
fence, and merges the result with the primary AP's spoofing verdict into a
final packet decision.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.access_point import SecureAngleAP
from repro.core.fence import FenceCheck, VirtualFence
from repro.core.localization import BearingObservation, LocationEstimate, triangulate_bearings
from repro.core.policy import PacketDecision
from repro.core.signature import AoASignature
from repro.hardware.capture import Capture
from repro.mac.frames import Dot11Frame


class SecureAngleController:
    """Coordinate several SecureAngle APs for localisation and fencing."""

    def __init__(self, aps: List[SecureAngleAP], fence: Optional[VirtualFence] = None):
        if not aps:
            raise ValueError("the controller needs at least one access point")
        names = [ap.name for ap in aps]
        if len(set(names)) != len(names):
            raise ValueError("access points must have unique names")
        self.aps: Dict[str, SecureAngleAP] = {ap.name: ap for ap in aps}
        self.fence = fence

    # ------------------------------------------------------------ localisation
    def collect_bearings(self, captures: Mapping[str, Capture]) -> List[BearingObservation]:
        """One bearing observation per AP that has a capture of the packet."""
        return self.collect_bearings_batch([captures])[0]

    def collect_bearings_batch(self, packets: Sequence[Mapping[str, Capture]]
                               ) -> List[List[BearingObservation]]:
        """Bearing observations for a batch of packets, batched per AP.

        ``packets`` is one mapping of AP name to capture per packet.  All
        captures belonging to one AP — across every packet of the batch — are
        fed to that AP's batched engine in a single call; the observations are
        then regrouped per packet, in each packet's own AP order.
        """
        packets = list(packets)
        per_ap: Dict[str, List[Tuple[int, Capture]]] = {}
        for index, captures in enumerate(packets):
            for name, capture in captures.items():
                if name not in self.aps:
                    raise KeyError(f"unknown access point {name!r}")
                per_ap.setdefault(name, []).append((index, capture))
        collected: List[Dict[str, BearingObservation]] = [{} for _ in packets]
        for name, entries in per_ap.items():
            observations = self.aps[name].bearing_observations(
                [capture for _, capture in entries])
            for (index, _), observation in zip(entries, observations):
                collected[index][name] = observation
        return [
            [collected[index][name] for name in captures]
            for index, captures in enumerate(packets)
        ]

    def localize(self, captures: Mapping[str, Capture]) -> LocationEstimate:
        """Triangulate a client from per-AP captures of the same packet."""
        observations = self.collect_bearings(captures)
        return triangulate_bearings(observations)

    def localize_batch(self, packets: Sequence[Mapping[str, Capture]]
                       ) -> List[LocationEstimate]:
        """Triangulate a batch of packets, running each AP's estimator once."""
        return [triangulate_bearings(observations)
                for observations in self.collect_bearings_batch(packets)]

    def fence_check(self, captures: Mapping[str, Capture]) -> FenceCheck:
        """Evaluate the virtual fence for a packet captured by several APs."""
        if self.fence is None:
            raise ValueError("no virtual fence configured on this controller")
        observations = self.collect_bearings(captures)
        return self.fence.check_bearings(observations)

    def fence_check_batch(self, packets: Sequence[Mapping[str, Capture]]
                          ) -> List[FenceCheck]:
        """Evaluate the virtual fence for a batch of multi-AP packets."""
        if self.fence is None:
            raise ValueError("no virtual fence configured on this controller")
        return [self.fence.check_bearings(observations)
                for observations in self.collect_bearings_batch(packets)]

    # ---------------------------------------------------------------- decisions
    def process_packet(self, frame: Dot11Frame, captures: Mapping[str, Capture],
                       primary_ap: Optional[str] = None) -> PacketDecision:
        """Full multi-AP decision for one packet.

        ``captures`` maps AP name to that AP's capture of the packet.  The
        ``primary_ap`` (default: the first AP with a capture) runs the
        ACL and spoofing checks; the fence uses every capture.

        ``repro.api.deployment.Deployment._event`` gathers the same evidence
        from pre-computed estimates (tolerating ambiguous arrays by skipping
        them); both paths assemble the final decision through the shared
        :meth:`SecureAngleAP.decide`.  Note that this convenience path
        estimates the primary AP's spectrum twice when a fence applies (once
        for the observation, once inside ``fence_check``); high-throughput
        callers should prefer the deployment session, which computes every
        estimate exactly once.
        """
        if not captures:
            raise ValueError("at least one capture is required")
        if primary_ap is None:
            primary_ap = next(iter(captures))
        ap = self.aps.get(primary_ap)
        if ap is None:
            raise KeyError(f"unknown access point {primary_ap!r}")
        if primary_ap not in captures:
            raise ValueError(f"no capture supplied for primary AP {primary_ap!r}")

        estimate = ap.analyze(captures[primary_ap])
        observation = AoASignature.from_pseudospectrum(
            estimate.pseudospectrum, captured_at_s=captures[primary_ap].timestamp_s)
        check = ap.check_packet(frame.source, observation,
                                captures[primary_ap].timestamp_s)

        fence_result = None
        if self.fence is not None and len(captures) >= 2:
            fence_result = self.fence_check(captures)
        return ap.decide(frame.source, observation, check,
                         fence=self.fence, fence_check=fence_result)

    def __len__(self) -> int:
        return len(self.aps)
