"""The per-MAC signature database.

"SecureAngle records a legitimate client's signature S_cl during the initial
training stage and associates this signature with the MAC address"
(Section 2.3.2).  The database holds those associations, together with
bookkeeping the tracker and detector need: when the signature was last
updated, how many packets have contributed to it, and how many anomalies have
been flagged against the address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.signature import AoASignature
from repro.mac.address import MacAddress


@dataclass
class SignatureRecord:
    """Everything the access point remembers about one MAC address."""

    address: MacAddress
    signature: AoASignature
    trained_at_s: float = 0.0
    updated_at_s: float = 0.0
    packets_seen: int = 0
    anomalies_flagged: int = 0
    history: List[AoASignature] = field(default_factory=list)

    def record_update(self, signature: AoASignature, timestamp_s: float,
                      keep_history: int = 0) -> None:
        """Replace the stored signature and update bookkeeping."""
        if keep_history > 0:
            self.history.append(self.signature)
            if len(self.history) > keep_history:
                self.history = self.history[-keep_history:]
        self.signature = signature
        self.updated_at_s = float(timestamp_s)
        self.packets_seen += 1

    def record_anomaly(self) -> None:
        """Count one flagged (suspected spoofed) packet against this address."""
        self.anomalies_flagged += 1
        self.packets_seen += 1


class SignatureDatabase:
    """MAC address → signature record store."""

    def __init__(self, keep_history: int = 0):
        if keep_history < 0:
            raise ValueError("keep_history must be non-negative")
        self._records: Dict[MacAddress, SignatureRecord] = {}
        self.keep_history = int(keep_history)

    # ------------------------------------------------------------------ access
    def train(self, address: MacAddress, signature: AoASignature,
              timestamp_s: float = 0.0) -> SignatureRecord:
        """Register (or re-register) the certified signature for ``address``."""
        record = SignatureRecord(
            address=address, signature=signature,
            trained_at_s=float(timestamp_s), updated_at_s=float(timestamp_s),
            packets_seen=1,
        )
        self._records[address] = record
        return record

    def lookup(self, address: MacAddress) -> Optional[SignatureRecord]:
        """Return the record for ``address``, or ``None`` if never trained."""
        return self._records.get(address)

    def require(self, address: MacAddress) -> SignatureRecord:
        """Return the record for ``address`` or raise ``KeyError``."""
        record = self._records.get(address)
        if record is None:
            raise KeyError(f"no signature trained for {address}")
        return record

    def forget(self, address: MacAddress) -> bool:
        """Remove ``address`` from the database; returns whether it existed."""
        return self._records.pop(address, None) is not None

    def update(self, address: MacAddress, signature: AoASignature,
               timestamp_s: float) -> SignatureRecord:
        """Store an updated signature for an already-trained address."""
        record = self.require(address)
        record.record_update(signature, timestamp_s, keep_history=self.keep_history)
        return record

    # --------------------------------------------------------------- iteration
    def addresses(self) -> List[MacAddress]:
        """All trained MAC addresses."""
        return list(self._records.keys())

    def __contains__(self, address: MacAddress) -> bool:
        return address in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SignatureRecord]:
        return iter(self._records.values())
