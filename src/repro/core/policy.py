"""Packet-level policy decisions.

The access point combines several sources of evidence about each packet — the
existing address-based ACL, the spoofing detector's verdict, and (when a
controller with multiple APs is available) the virtual fence — into one
decision: accept the frame, drop it, or accept-but-flag it for the network's
anomaly-detection systems (the paper positions SecureAngle as an aid to such
systems, citing [9, 1]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.fence import FenceDecision
from repro.core.spoofing import SpoofingVerdict
from repro.mac.address import MacAddress


class PacketVerdict(enum.Enum):
    """Final disposition of a received frame."""

    ACCEPT = "accept"
    DROP = "drop"
    FLAG = "flag"


@dataclass(frozen=True)
class PacketDecision:
    """The decision for one frame, with the evidence that produced it."""

    verdict: PacketVerdict
    source: MacAddress
    reasons: List[str] = field(default_factory=list)
    spoofing_verdict: Optional[SpoofingVerdict] = None
    fence_decision: Optional[FenceDecision] = None
    similarity: Optional[float] = None
    bearing_deg: Optional[float] = None

    @property
    def accepted(self) -> bool:
        """True when the frame is delivered to the network."""
        return self.verdict is PacketVerdict.ACCEPT

    @property
    def dropped(self) -> bool:
        """True when the frame is discarded."""
        return self.verdict is PacketVerdict.DROP


def combine_evidence(source: MacAddress,
                     acl_permits: bool,
                     spoofing_verdict: Optional[SpoofingVerdict],
                     fence_decision: Optional[FenceDecision],
                     fence_fail_open: bool = False,
                     similarity: Optional[float] = None,
                     bearing_deg: Optional[float] = None) -> PacketDecision:
    """Combine ACL, spoofing, and fence evidence into a packet decision.

    Precedence: an ACL denial drops the frame outright; a spoofing verdict of
    ``SPOOFED`` drops it; a fence decision of ``OUTSIDE`` drops it; an
    indeterminate fence follows the fail-open/closed rule but flags the frame;
    an unknown address (no certified signature yet) is accepted but flagged so
    the operator can trigger training.
    """
    reasons: List[str] = []
    verdict = PacketVerdict.ACCEPT

    if not acl_permits:
        verdict = PacketVerdict.DROP
        reasons.append("denied by address-based ACL")
    if spoofing_verdict is SpoofingVerdict.SPOOFED:
        verdict = PacketVerdict.DROP
        reasons.append("AoA signature does not match the certified signature")
    elif spoofing_verdict is SpoofingVerdict.UNKNOWN_ADDRESS and verdict is PacketVerdict.ACCEPT:
        verdict = PacketVerdict.FLAG
        reasons.append("no certified signature for this address (training needed)")
    if fence_decision is FenceDecision.OUTSIDE:
        verdict = PacketVerdict.DROP
        reasons.append("client localised outside the virtual fence")
    elif fence_decision is FenceDecision.INDETERMINATE and verdict is not PacketVerdict.DROP:
        if not fence_fail_open:
            verdict = PacketVerdict.DROP
            reasons.append("client location indeterminate (fail-closed fence)")
        else:
            if verdict is PacketVerdict.ACCEPT:
                verdict = PacketVerdict.FLAG
            reasons.append("client location indeterminate (fail-open fence)")
    if not reasons:
        reasons.append("all checks passed")
    return PacketDecision(
        verdict=verdict,
        source=source,
        reasons=reasons,
        spoofing_verdict=spoofing_verdict,
        fence_decision=fence_decision,
        similarity=similarity,
        bearing_deg=bearing_deg,
    )
