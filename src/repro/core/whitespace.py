"""Whitespace-radio yielding using AoA information (Section 1).

The introduction lists a third use of SecureAngle signatures: helping
"whitespace radios in yielding to incumbent transmitters".  A whitespace
device must stop (or steer away from) transmissions that would interfere with
a licensed incumbent; knowing the *direction* the incumbent's signal arrives
from lets the device do better than a binary on/off decision:

* if the incumbent is strong, cease transmission entirely;
* if it is detectable but weak, keep transmitting but place a spatial null in
  the incumbent's direction (the array is already there for MIMO);
* otherwise transmit normally.

``WhitespaceYielder`` implements that policy on top of the existing AoA
pipeline: feed it the pseudospectrum estimate and received power of a sensing
capture and it returns the decision plus, when nulling, the transmit weights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.aoa.estimator import AoAEstimate
from repro.arrays.geometry import AntennaArray
from repro.core.beamforming import steering_weights
from repro.utils.validation import require_positive


class YieldDecision(enum.Enum):
    """What the whitespace device should do after sensing."""

    #: No incumbent detected: transmit normally.
    TRANSMIT = "transmit"
    #: Incumbent detected but weak: transmit with a null towards it.
    NULL_AND_TRANSMIT = "null-and-transmit"
    #: Incumbent strong: cease transmission.
    YIELD = "yield"


@dataclass(frozen=True)
class YieldPlan:
    """The decision plus the transmit weights implementing it."""

    decision: YieldDecision
    incumbent_bearing_deg: Optional[float]
    incumbent_power_dbm: Optional[float]
    #: Unit-norm transmit weights; ``None`` when the device must stay silent.
    transmit_weights: Optional[np.ndarray]
    #: Suppression (dB) the weights achieve towards the incumbent, relative to
    #: an omnidirectional (single-antenna) transmission.  ``None`` when not
    #: transmitting or no incumbent was detected.
    null_depth_db: Optional[float] = None


class WhitespaceYielder:
    """Decide whether (and how) to transmit around a sensed incumbent."""

    def __init__(self, array: AntennaArray,
                 detection_threshold_dbm: float = -85.0,
                 yield_threshold_dbm: float = -65.0):
        if yield_threshold_dbm <= detection_threshold_dbm:
            raise ValueError(
                "yield_threshold_dbm must be above detection_threshold_dbm")
        self.array = array
        self.detection_threshold_dbm = float(detection_threshold_dbm)
        self.yield_threshold_dbm = float(yield_threshold_dbm)

    # ------------------------------------------------------------------ policy
    def plan(self, incumbent_power_dbm: Optional[float],
             estimate: Optional[AoAEstimate],
             intended_bearing_deg: float) -> YieldPlan:
        """Build the transmission plan for one sensing interval.

        Parameters
        ----------
        incumbent_power_dbm:
            Received power of the sensing capture (``None`` when nothing was
            received at all).
        estimate:
            The AoA estimate of the sensing capture (``None`` when nothing was
            detected); its strongest peak is taken as the incumbent direction.
        intended_bearing_deg:
            Direction of the whitespace device's own client, towards which it
            wants to transmit.
        """
        if incumbent_power_dbm is None or estimate is None or \
                incumbent_power_dbm < self.detection_threshold_dbm:
            weights = steering_weights(self.array, intended_bearing_deg)
            return YieldPlan(decision=YieldDecision.TRANSMIT,
                             incumbent_bearing_deg=None,
                             incumbent_power_dbm=incumbent_power_dbm,
                             transmit_weights=weights)
        incumbent_bearing = float(estimate.bearing_deg)
        if incumbent_power_dbm >= self.yield_threshold_dbm:
            return YieldPlan(decision=YieldDecision.YIELD,
                             incumbent_bearing_deg=incumbent_bearing,
                             incumbent_power_dbm=float(incumbent_power_dbm),
                             transmit_weights=None)
        weights = self.nulling_weights(intended_bearing_deg, incumbent_bearing)
        depth = self.null_depth_db(weights, incumbent_bearing)
        return YieldPlan(decision=YieldDecision.NULL_AND_TRANSMIT,
                         incumbent_bearing_deg=incumbent_bearing,
                         incumbent_power_dbm=float(incumbent_power_dbm),
                         transmit_weights=weights,
                         null_depth_db=depth)

    # ----------------------------------------------------------------- weights
    def nulling_weights(self, intended_bearing_deg: float,
                        incumbent_bearing_deg: float) -> np.ndarray:
        """Steer at the intended client while nulling the incumbent direction.

        The conjugate-steering weights towards the client are projected onto
        the subspace of weight vectors that radiate nothing towards the
        incumbent (``w . a(incumbent) = 0``) — a single-constraint
        zero-forcing beamformer.
        """
        desired = steering_weights(self.array, intended_bearing_deg)
        # The far field radiated towards a bearing is w . a(bearing), so the
        # null constraint is orthogonality to conj(a), not to a itself.
        incumbent = np.conj(self.array.steering_vector(incumbent_bearing_deg))
        incumbent = incumbent / np.linalg.norm(incumbent)
        projection = desired - incumbent * np.vdot(incumbent, desired)
        norm = np.linalg.norm(projection)
        if norm < 1e-12:
            # The client and the incumbent are in (nearly) the same direction:
            # nulling one nulls the other, so the only safe plan is to yield.
            raise ValueError(
                "intended and incumbent bearings are indistinguishable; yield instead")
        return projection / norm

    def null_depth_db(self, weights: np.ndarray, incumbent_bearing_deg: float) -> float:
        """Radiated power towards the incumbent, in dB relative to omnidirectional."""
        weights = np.asarray(weights, dtype=complex).ravel()
        if weights.shape != (self.array.num_elements,):
            raise ValueError("weights do not match the array size")
        require_positive(float(np.linalg.norm(weights)), "weight norm")
        response = self.array.steering_vector(incumbent_bearing_deg)
        # Far-field amplitude towards the bearing: the weights summed with the
        # propagation phases of that direction.
        radiated = float(np.abs(np.sum(weights * response)) ** 2)
        # An omnidirectional (single-antenna, unit-power) reference radiates
        # unit power towards every direction.
        return float(10.0 * np.log10(max(radiated, 1e-30) / 1.0))

    def gain_towards(self, weights: np.ndarray, bearing_deg: float) -> float:
        """Radiated power towards ``bearing_deg`` in dB relative to omnidirectional."""
        return self.null_depth_db(weights, bearing_deg)
