"""Client mobility tracking (Section 5, future work).

"We also plan to test our applications with client mobility and track the
mobility trace with multiple APs."  This module implements that extension on
top of the existing pipeline:

* ``BearingTracker`` — a single AP smooths the per-packet bearing estimates of
  a moving client with a constant-velocity alpha–beta filter on the angle
  (handling the 0/360 wrap), giving a bearing track robust to the occasional
  reflection-locked outlier.
* ``MobilityTracker`` — several APs' bearing tracks are triangulated per
  packet, producing the client's position trace across the floor plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.localization import BearingObservation, LocationEstimate, triangulate_bearings
from repro.geometry.point import Point
from repro.utils.angles import normalize_angle_deg, signed_angular_difference
from repro.utils.validation import require_in_range, require_positive


@dataclass(frozen=True)
class BearingTrackPoint:
    """One smoothed bearing sample."""

    timestamp_s: float
    raw_bearing_deg: float
    smoothed_bearing_deg: float
    angular_rate_deg_s: float
    rejected: bool = False


class BearingTracker:
    """Alpha–beta filter on a client's bearing as seen from one AP.

    Parameters
    ----------
    alpha, beta:
        Standard alpha–beta gains: ``alpha`` weights the position (bearing)
        correction, ``beta`` the rate correction.
    outlier_threshold_deg:
        Innovations larger than this are treated as outliers (for example a
        packet whose pseudospectrum peak locked onto a reflection): the filter
        coasts on its prediction instead of jumping.
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.1,
                 outlier_threshold_deg: float = 30.0):
        self.alpha = require_in_range(alpha, "alpha", 0.0, 1.0, inclusive=False)
        self.beta = require_in_range(beta, "beta", 0.0, 1.0, inclusive=False)
        self.outlier_threshold_deg = require_positive(outlier_threshold_deg,
                                                      "outlier_threshold_deg")
        self._bearing_deg: Optional[float] = None
        self._rate_deg_s: float = 0.0
        self._last_time_s: Optional[float] = None
        self.track: List[BearingTrackPoint] = []

    @property
    def bearing_deg(self) -> Optional[float]:
        """Current smoothed bearing, or ``None`` before the first update."""
        return self._bearing_deg

    def update(self, bearing_deg: float, timestamp_s: float) -> BearingTrackPoint:
        """Fold one per-packet bearing estimate into the track."""
        bearing_deg = float(normalize_angle_deg(bearing_deg))
        if self._bearing_deg is None or self._last_time_s is None:
            self._bearing_deg = bearing_deg
            self._last_time_s = float(timestamp_s)
            point = BearingTrackPoint(timestamp_s, bearing_deg, bearing_deg, 0.0)
            self.track.append(point)
            return point
        dt = float(timestamp_s) - self._last_time_s
        if dt < 0:
            raise ValueError("timestamps must be non-decreasing")
        predicted = float(normalize_angle_deg(self._bearing_deg + self._rate_deg_s * dt))
        innovation = float(signed_angular_difference(bearing_deg, predicted))
        rejected = abs(innovation) > self.outlier_threshold_deg
        if rejected:
            smoothed = predicted
        else:
            smoothed = float(normalize_angle_deg(predicted + self.alpha * innovation))
            if dt > 0:
                self._rate_deg_s += self.beta * innovation / dt
        self._bearing_deg = smoothed
        self._last_time_s = float(timestamp_s)
        point = BearingTrackPoint(
            timestamp_s=float(timestamp_s),
            raw_bearing_deg=bearing_deg,
            smoothed_bearing_deg=smoothed,
            angular_rate_deg_s=self._rate_deg_s,
            rejected=rejected,
        )
        self.track.append(point)
        return point


@dataclass(frozen=True)
class PositionTrackPoint:
    """One triangulated position sample of the mobility trace."""

    timestamp_s: float
    location: LocationEstimate


class MobilityTracker:
    """Track a moving client's position from several APs' bearing trackers."""

    def __init__(self, ap_positions: Dict[str, Point],
                 alpha: float = 0.5, beta: float = 0.1,
                 outlier_threshold_deg: float = 30.0):
        if len(ap_positions) < 2:
            raise ValueError("mobility tracking needs at least two access points")
        self.ap_positions = dict(ap_positions)
        self.trackers: Dict[str, BearingTracker] = {
            name: BearingTracker(alpha=alpha, beta=beta,
                                 outlier_threshold_deg=outlier_threshold_deg)
            for name in ap_positions
        }
        self.trace: List[PositionTrackPoint] = []

    def update(self, bearings_deg: Dict[str, float], timestamp_s: float
               ) -> PositionTrackPoint:
        """Fold one packet's per-AP bearings into the trace.

        ``bearings_deg`` maps AP name to that AP's *global-frame* direct-path
        bearing for the packet (what ``SecureAngleAP.bearing_observation``
        reports).
        """
        missing = set(bearings_deg) - set(self.trackers)
        if missing:
            raise KeyError(f"unknown access points: {sorted(missing)}")
        if len(bearings_deg) < 2:
            raise ValueError("at least two APs must observe each packet")
        observations = []
        for name, bearing in bearings_deg.items():
            smoothed = self.trackers[name].update(bearing, timestamp_s)
            observations.append(BearingObservation(
                ap_position=self.ap_positions[name],
                bearing_deg=smoothed.smoothed_bearing_deg,
            ))
        location = triangulate_bearings(observations)
        point = PositionTrackPoint(timestamp_s=float(timestamp_s), location=location)
        self.trace.append(point)
        return point

    def positions(self) -> List[Point]:
        """The triangulated positions of the trace, in time order."""
        return [point.location.position for point in self.trace]

    def track_error_m(self, true_positions: Sequence[Point]) -> List[float]:
        """Per-sample position error against a ground-truth trajectory."""
        true_positions = list(true_positions)
        if len(true_positions) != len(self.trace):
            raise ValueError("ground-truth trajectory length does not match the trace")
        return [point.location.position.distance_to(truth)
                for point, truth in zip(self.trace, true_positions)]
