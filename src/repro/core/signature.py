"""AoA signatures.

"We use the pseudospectrum as our client signature" (Section 2.1).  The
signature is therefore a normalised pseudospectrum sampled on a canonical
angle grid, plus the set of significant peaks (direct path and multipath
reflections).  The direct-path peak is the most stable part of the signature
(Section 3.2), so it is kept separately accessible for the virtual-fence and
localisation applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.peaks import find_peaks_batch
from repro.aoa.spectrum import (
    PEAK_MIN_RELATIVE_HEIGHT,
    Pseudospectrum,
    grid_peak_params,
)


@dataclass(frozen=True)
class AoASignature:
    """A client's angle-of-arrival signature.

    Parameters
    ----------
    spectrum:
        The (normalised) pseudospectrum on the array's angle grid.
    peaks_deg:
        Significant peak bearings, strongest first.  The first entry is
        normally the direct path.
    captured_at_s:
        Timestamp of the capture that produced the signature.
    num_packets:
        Number of packets averaged into the signature (signatures built from
        more packets are smoother and more trustworthy).
    """

    spectrum: Pseudospectrum
    peaks_deg: List[float] = field(default_factory=list)
    captured_at_s: float = 0.0
    num_packets: int = 1

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ValueError("num_packets must be at least 1")
        peaks = [float(p) for p in self.peaks_deg]
        object.__setattr__(self, "peaks_deg", peaks)
        object.__setattr__(self, "spectrum", self.spectrum.normalized())

    @staticmethod
    def from_pseudospectrum(spectrum: Pseudospectrum, captured_at_s: float = 0.0,
                            max_peaks: int = 4, num_packets: int = 1) -> "AoASignature":
        """Build a signature from a pseudospectrum, extracting its peaks."""
        peaks = spectrum.peak_bearings(max_peaks=max_peaks)
        if not peaks:
            peaks = [spectrum.peak_bearing()]
        return AoASignature(spectrum=spectrum, peaks_deg=peaks,
                            captured_at_s=captured_at_s, num_packets=num_packets)

    @property
    def direct_path_bearing_deg(self) -> float:
        """Bearing of the strongest peak — the direct path in most cases."""
        if self.peaks_deg:
            return self.peaks_deg[0]
        return self.spectrum.peak_bearing()

    @property
    def multipath_bearings_deg(self) -> List[float]:
        """Bearings of the secondary (reflection) peaks."""
        return list(self.peaks_deg[1:])

    @property
    def angles_deg(self) -> np.ndarray:
        """The signature's angle grid."""
        return self.spectrum.angles_deg

    @property
    def values(self) -> np.ndarray:
        """The signature's normalised pseudospectrum values."""
        return self.spectrum.values

    def merged_with(self, other: "AoASignature", weight: float = 0.5) -> "AoASignature":
        """Blend two signatures on the same grid (used by the tracker).

        ``weight`` is the weight of ``other``; 0 returns (a copy of) this
        signature, 1 returns ``other`` resampled onto this signature's grid.
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        other_resampled = other.spectrum.resampled(self.spectrum.angles_deg)
        blended_values = (1.0 - weight) * self.spectrum.values + weight * other_resampled.values
        blended = Pseudospectrum(self.spectrum.angles_deg.copy(), blended_values,
                                 dict(self.spectrum.metadata))
        return AoASignature.from_pseudospectrum(
            blended,
            captured_at_s=max(self.captured_at_s, other.captured_at_s),
            num_packets=self.num_packets + other.num_packets,
        )

    def __repr__(self) -> str:
        peaks = ", ".join(f"{p:.1f}" for p in self.peaks_deg)
        return (f"AoASignature(peaks=[{peaks}] deg, packets={self.num_packets}, "
                f"t={self.captured_at_s:.1f} s)")


def signatures_from_pseudospectra(spectra: Sequence[Pseudospectrum],
                                  captured_at_s: Optional[Sequence[float]] = None,
                                  max_peaks: int = 4,
                                  num_packets: int = 1) -> List[AoASignature]:
    """Batched signature construction from a batch of pseudospectra.

    Equivalent to calling :meth:`AoASignature.from_pseudospectrum` per
    spectrum, but when the spectra share one angle grid (the common case: one
    batch from the batched estimation engine) the peak extraction runs
    vectorised over the whole (B, A) value stack.
    """
    spectra = list(spectra)
    if captured_at_s is None:
        captured_at_s = [0.0] * len(spectra)
    timestamps = [float(t) for t in captured_at_s]
    if len(timestamps) != len(spectra):
        raise ValueError("captured_at_s must match the number of spectra")
    if not spectra:
        return []
    grid = spectra[0].angles_deg
    shared_grid = all(
        s.angles_deg is grid or np.array_equal(s.angles_deg, grid) for s in spectra[1:])
    if not shared_grid:
        return [AoASignature.from_pseudospectrum(spectrum, captured_at_s=timestamp,
                                                 max_peaks=max_peaks, num_packets=num_packets)
                for spectrum, timestamp in zip(spectra, timestamps)]
    values = np.stack([s.values for s in spectra])
    wrap, min_separation = grid_peak_params(grid)
    peak_indices = find_peaks_batch(values, wrap=wrap,
                                    min_relative_height=PEAK_MIN_RELATIVE_HEIGHT,
                                    min_separation=min_separation)
    signatures: List[AoASignature] = []
    for spectrum, indices, timestamp in zip(spectra, peak_indices, timestamps):
        peaks = [float(grid[i]) for i in indices[:max_peaks]]
        if not peaks:
            peaks = [spectrum.peak_bearing()]
        signatures.append(AoASignature(spectrum=spectrum, peaks_deg=peaks,
                                       captured_at_s=timestamp, num_packets=num_packets))
    return signatures
