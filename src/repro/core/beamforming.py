"""Downlink directional transmission from uplink AoA (Section 5, future work).

"With AoA information obtained, high efficiency downlink directional
transmission will also be feasible resulting in higher throughput and better
reliability."  This module implements that extension: the access point reuses
the uplink angle-of-arrival information (either the direct-path bearing alone
or the full spatial structure of the uplink capture) to steer its downlink
transmission towards the client.

Two weight designs are provided:

* **Steering-vector (conjugate) beamforming** — point the array at the
  direct-path bearing.  Needs only the bearing, which is exactly what the
  SecureAngle pipeline already produces per packet.
* **Eigen-beamforming (maximum ratio transmission)** — transmit along the
  dominant eigenvector of the uplink spatial covariance, which by reciprocity
  also captures energy delivered via reflections.

``beamforming_gain_db`` evaluates either design against the true downlink
channel (the same multipath paths, used in reverse) and compares it with a
single-antenna / omnidirectional transmission, which is the quantity the
paper's claim is about.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.arrays.steering import steering_vector
from repro.channel.path import PropagationPath
from repro.kernels.backend import get_backend
from repro.utils.validation import require_positive


def steering_weights(array: AntennaArray, bearing_deg: float) -> np.ndarray:
    """Unit-norm conjugate-steering transmit weights towards ``bearing_deg``.

    The bearing is given in the array's local azimuth convention (the same
    convention the AoA estimator reports for unambiguous arrays).
    """
    response = array.steering_vector(bearing_deg)
    weights = np.conj(response)
    return weights / np.linalg.norm(weights)


def eigen_weights(uplink_covariance: np.ndarray) -> np.ndarray:
    """Unit-norm maximum-ratio-transmission weights from an uplink covariance.

    By channel reciprocity the dominant eigenvector of the uplink spatial
    covariance is the transmit direction that delivers the most power to the
    client over the same set of paths.
    """
    covariance = np.asarray(uplink_covariance, dtype=complex)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise ValueError(f"covariance must be square, got {covariance.shape}")
    # Routed through the Backend seam so REPRO_BACKEND covers the scalar
    # path too; the numpy backend is literally np.linalg.eigh (bit-identical).
    eigenvalues, eigenvectors = get_backend().eigh(covariance)
    principal = eigenvectors[:, int(np.argmax(eigenvalues))]
    weights = np.conj(principal)
    return weights / np.linalg.norm(weights)


def downlink_channel_vector(array: AntennaArray, paths: Sequence[PropagationPath],
                            orientation_deg: float = 0.0) -> np.ndarray:
    """The downlink array-to-client channel implied by a set of uplink paths.

    By reciprocity each uplink path is also a downlink path: the client
    receives the superposition, over paths, of the transmit weights projected
    onto that path's steering vector, scaled by the path's amplitude and
    carrier phase.
    """
    paths = list(paths)
    if not paths:
        raise ValueError("at least one propagation path is required")
    lambda_m = array.wavelength
    channel = np.zeros(array.num_elements, dtype=complex)
    for path in paths:
        local_azimuth = path.aoa_deg - orientation_deg
        response = steering_vector(array.element_positions, local_azimuth, lambda_m)
        channel += path.amplitude * np.exp(-1j * path.carrier_phase_rad(lambda_m)) * response
    return channel


def received_power(weights: np.ndarray, channel: np.ndarray) -> float:
    """Power delivered to the client for unit total transmit power."""
    weights = np.asarray(weights, dtype=complex).ravel()
    channel = np.asarray(channel, dtype=complex).ravel()
    if weights.shape != channel.shape:
        raise ValueError("weights and channel must have the same length")
    norm = np.linalg.norm(weights)
    if norm == 0:
        raise ValueError("weights must not be all zero")
    return float(np.abs(np.vdot(weights / norm, np.conj(channel))) ** 2)


def beamforming_gain_db(weights: np.ndarray, channel: np.ndarray) -> float:
    """Gain (dB) of beamformed transmission over a single-antenna transmission.

    The single-antenna reference transmits the same total power from element 0
    only; the array gain of an N-element array towards a single path is
    therefore upper-bounded by ``10 log10(N)`` plus any multipath combining
    gain.
    """
    channel = np.asarray(channel, dtype=complex).ravel()
    beamformed = received_power(weights, channel)
    reference_weights = np.zeros_like(channel)
    reference_weights[0] = 1.0
    reference = received_power(reference_weights, channel)
    require_positive(reference, "reference received power")
    return float(10.0 * np.log10(beamformed / reference))
