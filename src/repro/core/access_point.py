"""The SecureAngle access point.

``SecureAngleAP`` ties the whole receive-side pipeline together, mirroring the
prototype's data flow (Section 3): a capture arrives from the array receiver,
the per-chain calibration is applied, the AoA estimator produces a
pseudospectrum, the pseudospectrum becomes a signature, and the signature is
checked against the per-MAC database to decide whether the frame is accepted,
dropped, or flagged.  The AP also exposes its direct-path bearings so a
multi-AP controller can run the virtual-fence application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.aoa.estimator import AoAEstimate, AoAEstimator, EstimatorConfig
from repro.arrays.geometry import AntennaArray
from repro.calibration.procedure import calibrate_receiver
from repro.calibration.table import CalibrationTable
from repro.core.database import SignatureDatabase
from repro.core.localization import BearingObservation
from repro.core.policy import PacketDecision, combine_evidence
from repro.core.signature import AoASignature, signatures_from_pseudospectra
from repro.core.spoofing import (
    SpoofingCheck,
    SpoofingDetector,
    SpoofingDetectorConfig,
    SpoofingVerdict,
)
from repro.core.tracker import SignatureTracker, TrackerConfig
from repro.geometry.point import Point
from repro.hardware.capture import Capture
from repro.hardware.receiver import ArrayReceiver
from repro.hardware.reference import CalibrationSource
from repro.mac.acl import AccessControlList
from repro.mac.address import MacAddress
from repro.mac.frames import Dot11Frame


@dataclass(frozen=True)
class AccessPointConfig:
    """Configuration of one SecureAngle access point."""

    # Nested configs use default_factory so two AccessPointConfig instances
    # never alias one shared default object (the class-attribute-default
    # footgun: a single instance shared by every AP built without overrides).
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    spoofing: SpoofingDetectorConfig = field(default_factory=SpoofingDetectorConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    #: Default bearing uncertainty (degrees) attached to localisation observations.
    bearing_sigma_deg: float = 3.0
    #: Number of packets averaged when training a certified signature.
    training_packets: int = 10

    def __post_init__(self) -> None:
        if self.bearing_sigma_deg <= 0:
            raise ValueError("bearing_sigma_deg must be positive")
        if self.training_packets < 1:
            raise ValueError("training_packets must be at least 1")


class SecureAngleAP:
    """One access point: array, receiver, calibration, estimator, and policy."""

    def __init__(self, name: str, position: Point, array: AntennaArray,
                 orientation_deg: float = 0.0,
                 config: Optional[AccessPointConfig] = None,
                 acl: Optional[AccessControlList] = None):
        self.name = name
        self.position = position
        self.array = array
        self.orientation_deg = float(orientation_deg)
        self.config = config = config if config is not None else AccessPointConfig()
        self.acl = acl if acl is not None else AccessControlList(default_allow=True)
        self.estimator = AoAEstimator(array, config.estimator)
        self.database = SignatureDatabase(keep_history=4)
        self.detector = SpoofingDetector(self.database, config.spoofing)
        self.tracker = SignatureTracker(self.database, config.tracker)
        self.calibration: Optional[CalibrationTable] = None

    # -------------------------------------------------------------- calibration
    def calibrate(self, receiver: ArrayReceiver, source: CalibrationSource,
                  num_samples: int = 4096) -> CalibrationTable:
        """Run the Section 2.2 calibration procedure and store the table."""
        self.calibration = calibrate_receiver(receiver, source, num_samples=num_samples)
        return self.calibration

    def set_calibration(self, table: CalibrationTable) -> None:
        """Install an externally measured calibration table."""
        if table.num_chains != self.array.num_elements:
            raise ValueError("calibration table does not match the array size")
        self.calibration = table

    # ----------------------------------------------------------------- analysis
    def analyze(self, capture: Capture) -> AoAEstimate:
        """Run the AoA estimator on a capture (applying calibration if needed)."""
        return self.estimator.process(capture, calibration=self.calibration)

    def analyze_batch(self, captures: Sequence[Capture]) -> List[AoAEstimate]:
        """Run the batched AoA engine on a whole batch of captures."""
        return self.estimator.process_batch(captures, calibration=self.calibration)

    def signature_from_capture(self, capture: Capture) -> AoASignature:
        """Compute the AoA signature of a single capture."""
        return self.signatures_from_captures([capture])[0]

    def signatures_from_captures(self, captures: Sequence[Capture]) -> List[AoASignature]:
        """Batched capture -> spectrum -> signature for a batch of captures."""
        captures = list(captures)
        estimates = self.analyze_batch(captures)
        return signatures_from_pseudospectra(
            [estimate.pseudospectrum for estimate in estimates],
            captured_at_s=[capture.timestamp_s for capture in captures])

    def train_client(self, address: MacAddress, captures) -> AoASignature:
        """Train the certified signature for ``address`` from one or more captures."""
        captures = list(captures)
        if not captures:
            raise ValueError("training requires at least one capture")
        observations = self.signatures_from_captures(captures)
        signature = observations[0]
        for observation in observations[1:]:
            signature = signature.merged_with(
                observation, weight=1.0 / (signature.num_packets + 1))
        self.database.train(address, signature, timestamp_s=captures[-1].timestamp_s)
        return signature

    # ------------------------------------------------------------------ packets
    def check_packet(self, source: MacAddress, observation: AoASignature,
                     timestamp_s: float, update_signature: bool = True) -> SpoofingCheck:
        """The shared per-packet policy step: spoofing-check, then track.

        Consults the detector for ``source`` and folds a matching observation
        back into the certified signature (unless tracking is disabled).
        Every packet path — the AP's own, the controller's, and the
        deployment session's — runs exactly this step, so the check/track
        sequence cannot diverge between them.
        """
        check = self.detector.check(source, observation)
        if update_signature and check.verdict is SpoofingVerdict.MATCH:
            self.tracker.observe(source, observation, timestamp_s)
        return check

    def decide(self, source: MacAddress, observation: AoASignature,
               check: SpoofingCheck, fence=None,
               fence_check=None) -> PacketDecision:
        """Assemble the final packet decision from the gathered evidence.

        The single home of the ACL + spoofing + fence evidence combination:
        the AP's own packet path, the multi-AP controller, and the deployment
        session all call this, so a new evidence term cannot be added to one
        front door and silently missed by the others.  ``fence_check`` is the
        (optional) evaluated :class:`~repro.core.fence.FenceCheck`; ``fence``
        supplies its fail-open rule.
        """
        fence_decision = fence_check.decision if fence_check is not None else None
        fail_open = fence.fail_open if (fence is not None
                                        and fence_check is not None) else False
        return combine_evidence(
            source=source,
            acl_permits=self.acl.permits(source),
            spoofing_verdict=check.verdict,
            fence_decision=fence_decision,
            fence_fail_open=fail_open,
            similarity=check.similarity,
            bearing_deg=observation.direct_path_bearing_deg,
        )

    def process_packet(self, frame: Dot11Frame, capture: Capture,
                       update_signature: bool = True) -> PacketDecision:
        """Decide what to do with one received frame.

        ``frame`` carries the claimed source address; ``capture`` carries the
        raw samples of the same packet.  The signature check runs against the
        certified signature for the claimed address; matching packets also
        update the stored signature (tracking), unless disabled.
        """
        return self.process_packets([frame], [capture], update_signature=update_signature)[0]

    def process_packets(self, frames: Sequence[Dot11Frame], captures: Sequence[Capture],
                        update_signature: bool = True) -> List[PacketDecision]:
        """Decide what to do with a batch of received frames.

        The AoA estimation and signature construction run through the batched
        engine; the per-packet policy (ACL, spoofing check, signature
        tracking) then runs in arrival order, so tracking sees packets in the
        same sequence the scalar path would.
        """
        frames = list(frames)
        captures = list(captures)
        if len(frames) != len(captures):
            raise ValueError(
                f"got {len(frames)} frames but {len(captures)} captures")
        observations = self.signatures_from_captures(captures)
        decisions: List[PacketDecision] = []
        for frame, capture, observation in zip(frames, captures, observations):
            check = self.check_packet(frame.source, observation, capture.timestamp_s,
                                      update_signature=update_signature)
            decisions.append(self.decide(frame.source, observation, check))
        return decisions

    # ------------------------------------------------------------- localisation
    def bearing_observation(self, capture: Capture,
                            sigma_deg: Optional[float] = None) -> BearingObservation:
        """The AP's contribution to multi-AP localisation: a global bearing.

        The estimator reports bearings in the array's local frame; adding the
        AP's mounting orientation converts them to the global floor-plan frame
        the controller triangulates in.  Only meaningful for unambiguous
        (circular) arrays — a linear array cannot provide a full 360-degree
        bearing (footnote 1 of the paper).
        """
        return self.bearing_observations([capture], sigma_deg=sigma_deg)[0]

    def bearing_observations(self, captures: Sequence[Capture],
                             sigma_deg: Optional[float] = None) -> List[BearingObservation]:
        """Batched :meth:`bearing_observation` for several captures."""
        if self.array.ambiguous:
            raise ValueError(
                "virtual-fence localisation requires an unambiguous (circular) array")
        sigma = self.config.bearing_sigma_deg if sigma_deg is None else sigma_deg
        return [
            BearingObservation(
                ap_position=self.position,
                bearing_deg=(estimate.bearing_deg + self.orientation_deg) % 360.0,
                sigma_deg=sigma,
            )
            for estimate in self.analyze_batch(captures)
        ]

    def __repr__(self) -> str:
        return (f"SecureAngleAP({self.name!r}, at ({self.position.x:.1f}, {self.position.y:.1f}), "
                f"{self.array.num_elements} antennas)")
