"""Signature similarity metrics.

The spoofing-prevention application hinges on "a significant difference
between the certified signature and an attacker's signature so that they can
be discriminated from each other" (Section 2.3.2).  These metrics quantify
that difference:

* ``spectral_correlation`` / ``cosine_similarity`` — shape similarity of the
  two pseudospectra over the whole angle grid.
* ``peak_set_distance_deg`` — how far apart the two signatures' peak sets are,
  in degrees (a greedy matching of peaks).
* ``signature_similarity`` — the combined score the detector thresholds: the
  spectral correlation, discounted when the direct-path peaks disagree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.signature import AoASignature
from repro.utils.angles import angular_difference


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two non-negative vectors, in [0, 1]."""
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(f"vectors must have the same shape, got {a.shape} and {b.shape}")
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0:
        return 0.0
    return float(np.clip(np.dot(a, b) / norm, 0.0, 1.0))


def spectral_correlation(a: AoASignature, b: AoASignature) -> float:
    """Cosine similarity of two signatures' pseudospectra on a common grid.

    Pseudospectra are compared in the dB domain (relative to their own peaks,
    floored) so that secondary multipath peaks — tens of dB below the direct
    path — still contribute to the comparison instead of being swamped by the
    dominant peak.
    """
    spectrum_b = b.spectrum.resampled(a.spectrum.angles_deg)
    a_db = a.spectrum.to_db(floor_db=-30.0)
    b_db = spectrum_b.to_db(floor_db=-30.0)
    # Shift so the floor maps to zero; correlation then emphasises peak shape.
    return cosine_similarity(a_db + 30.0, b_db + 30.0)


def peak_set_distance_deg(peaks_a: Sequence[float], peaks_b: Sequence[float]) -> float:
    """Mean angular distance (degrees) between two peak sets under greedy matching.

    Each peak of the smaller set is matched to the closest unmatched peak of
    the larger set; unmatched extra peaks do not contribute.  Returns 180 (the
    maximum possible bearing error) when either set is empty.
    """
    peaks_a = [float(p) for p in peaks_a]
    peaks_b = [float(p) for p in peaks_b]
    if not peaks_a or not peaks_b:
        return 180.0
    if len(peaks_a) > len(peaks_b):
        peaks_a, peaks_b = peaks_b, peaks_a
    remaining = list(peaks_b)
    distances = []
    for peak in peaks_a:
        best_index = int(np.argmin([angular_difference(peak, other) for other in remaining]))
        distances.append(float(angular_difference(peak, remaining[best_index])))
        remaining.pop(best_index)
    return float(np.mean(distances))


def direct_path_distance_deg(a: AoASignature, b: AoASignature) -> float:
    """Angular distance between two signatures' direct-path (strongest) peaks."""
    return float(angular_difference(a.direct_path_bearing_deg, b.direct_path_bearing_deg))


def signature_similarity(a: AoASignature, b: AoASignature,
                         direct_path_scale_deg: float = 10.0) -> float:
    """Combined similarity score in [0, 1] used by the spoofing detector.

    The spectral correlation is multiplied by a factor that decays with the
    direct-path bearing disagreement (scale ``direct_path_scale_deg``): two
    signatures whose whole-spectrum shapes happen to correlate but whose
    direct paths point in different directions are *not* the same client,
    because the direct path is the stable, hard-to-forge component
    (Section 3.1–3.2).
    """
    if direct_path_scale_deg <= 0:
        raise ValueError("direct_path_scale_deg must be positive")
    correlation = spectral_correlation(a, b)
    direct_error = direct_path_distance_deg(a, b)
    direct_factor = float(np.exp(-direct_error / direct_path_scale_deg))
    return float(np.clip(correlation * direct_factor, 0.0, 1.0))
