"""SecureAngle core: AoA signatures and the security applications built on them."""

from repro.core.signature import AoASignature, signatures_from_pseudospectra
from repro.core.metrics import (
    cosine_similarity,
    peak_set_distance_deg,
    signature_similarity,
    spectral_correlation,
)
from repro.core.database import SignatureDatabase, SignatureRecord
from repro.core.tracker import SignatureTracker, TrackerConfig
from repro.core.spoofing import SpoofingDetector, SpoofingDetectorConfig, SpoofingVerdict
from repro.core.localization import LocationEstimate, triangulate_bearings
from repro.core.fence import VirtualFence, FenceDecision
from repro.core.policy import PacketDecision, PacketVerdict
from repro.core.access_point import AccessPointConfig, SecureAngleAP
from repro.core.controller import SecureAngleController
from repro.core.beamforming import (
    beamforming_gain_db,
    downlink_channel_vector,
    eigen_weights,
    steering_weights,
)
from repro.core.tracking import BearingTracker, MobilityTracker
from repro.core.whitespace import WhitespaceYielder, YieldDecision, YieldPlan

__all__ = [
    "WhitespaceYielder",
    "YieldDecision",
    "YieldPlan",
    "beamforming_gain_db",
    "downlink_channel_vector",
    "eigen_weights",
    "steering_weights",
    "BearingTracker",
    "MobilityTracker",
    "AoASignature",
    "signatures_from_pseudospectra",
    "cosine_similarity",
    "spectral_correlation",
    "peak_set_distance_deg",
    "signature_similarity",
    "SignatureDatabase",
    "SignatureRecord",
    "SignatureTracker",
    "TrackerConfig",
    "SpoofingDetector",
    "SpoofingDetectorConfig",
    "SpoofingVerdict",
    "LocationEstimate",
    "triangulate_bearings",
    "VirtualFence",
    "FenceDecision",
    "PacketDecision",
    "PacketVerdict",
    "AccessPointConfig",
    "SecureAngleAP",
    "SecureAngleController",
]
