"""Link-layer address-spoofing detection.

For every incoming packet claiming MAC address M, SecureAngle compares the
packet's AoA signature against the certified signature stored for M.  "The
experimental hypothesis [is] that there is a significant difference between
S_cl and an attacker's signature, so that they can be discriminated from each
other" (Section 2.3.2).  The detector thresholds the combined similarity
metric; it can also require several consecutive mismatches before raising an
alarm, which trades detection delay against false alarms from occasional bad
pseudospectra.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.database import SignatureDatabase
from repro.core.metrics import direct_path_distance_deg, signature_similarity
from repro.core.signature import AoASignature
from repro.mac.address import MacAddress


class SpoofingVerdict(enum.Enum):
    """Outcome of checking one packet's signature."""

    #: Signature matches the certified one: accept.
    MATCH = "match"
    #: Signature differs: flag as a suspected spoofed/injected packet.
    SPOOFED = "spoofed"
    #: No certified signature exists for this address yet.
    UNKNOWN_ADDRESS = "unknown-address"


@dataclass(frozen=True)
class SpoofingDetectorConfig:
    """Detector thresholds."""

    #: Similarity at or above which a packet is considered to match.
    similarity_threshold: float = 0.55
    #: Direct-path disagreement (degrees) above which a packet is flagged even
    #: if the overall spectral shapes correlate.
    max_direct_path_error_deg: float = 15.0
    #: Number of consecutive mismatches required before declaring spoofing.
    consecutive_mismatches: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if self.max_direct_path_error_deg <= 0:
            raise ValueError("max_direct_path_error_deg must be positive")
        if self.consecutive_mismatches < 1:
            raise ValueError("consecutive_mismatches must be at least 1")


@dataclass(frozen=True)
class SpoofingCheck:
    """Detailed result of one packet check."""

    verdict: SpoofingVerdict
    similarity: float
    direct_path_error_deg: float


class SpoofingDetector:
    """Compare per-packet signatures against the certified database."""

    def __init__(self, database: SignatureDatabase,
                 config: Optional[SpoofingDetectorConfig] = None):
        self.database = database
        self.config = config if config is not None else SpoofingDetectorConfig()
        self._mismatch_streaks: Dict[MacAddress, int] = {}

    def check(self, address: MacAddress, observation: AoASignature) -> SpoofingCheck:
        """Check one packet's signature against the stored one for ``address``."""
        record = self.database.lookup(address)
        if record is None:
            return SpoofingCheck(SpoofingVerdict.UNKNOWN_ADDRESS, 0.0, 180.0)
        similarity = signature_similarity(record.signature, observation)
        direct_error = direct_path_distance_deg(record.signature, observation)
        matches = (similarity >= self.config.similarity_threshold
                   and direct_error <= self.config.max_direct_path_error_deg)
        if matches:
            self._mismatch_streaks[address] = 0
            return SpoofingCheck(SpoofingVerdict.MATCH, similarity, direct_error)
        streak = self._mismatch_streaks.get(address, 0) + 1
        self._mismatch_streaks[address] = streak
        if streak >= self.config.consecutive_mismatches:
            record.record_anomaly()
            return SpoofingCheck(SpoofingVerdict.SPOOFED, similarity, direct_error)
        # Not enough consecutive evidence yet: treat as a (suspicious) match so
        # that an isolated bad pseudospectrum does not disrupt a legitimate client.
        return SpoofingCheck(SpoofingVerdict.MATCH, similarity, direct_error)

    def reset(self, address: Optional[MacAddress] = None) -> None:
        """Clear mismatch streaks (for one address or for all)."""
        if address is None:
            self._mismatch_streaks.clear()
        else:
            self._mismatch_streaks.pop(address, None)
