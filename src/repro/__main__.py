"""``python -m repro``: the reproduction's command-line front door."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
