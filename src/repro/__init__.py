"""SecureAngle reproduction.

A from-scratch Python reproduction of *SecureAngle: Improving wireless
security using angle-of-arrival information* (Xiong & Jamieson, HotNets 2010):
a multi-antenna access point profiles the directions each client's signal
arrives from (MUSIC pseudospectra), uses them as per-client signatures, and
builds two applications on top — virtual fences (drop frames from clients
localised outside a boundary) and link-layer address-spoofing detection.

The public API is organised in layers:

* ``repro.geometry``, ``repro.arrays``, ``repro.channel``, ``repro.hardware``,
  ``repro.phy``, ``repro.mac`` — the simulated substrate (floor plans,
  antenna arrays, multipath propagation, WARP-like radio chains, OFDM
  packets, 802.11 frames);
* ``repro.calibration``, ``repro.aoa`` — phase calibration and AoA
  estimation (MUSIC and baselines);
* ``repro.core`` — SecureAngle itself: signatures, the signature database and
  tracker, spoofing detection, localisation, virtual fences, and the
  access-point / controller pipelines;
* ``repro.attacks``, ``repro.baselines``, ``repro.testbed``,
  ``repro.experiments`` — threat models, RSS baselines, the Figure 4 testbed,
  and the scripts that regenerate the paper's figures;
* ``repro.api`` — the unified front door: declarative ``ScenarioSpec``
  (JSON-serialisable), component registries, and the ``Deployment`` facade
  with its streaming ``run`` / batched ``run_batch`` sessions;
* ``repro.campaign`` — sharded multi-process Monte-Carlo sweeps: declarative
  ``CampaignSpec`` grids over the experiments, a resumable on-disk result
  store, and the ``python -m repro`` command line.
"""

from repro.aoa import AoAEstimate, AoAEstimator, EstimatorConfig
from repro.api import Deployment, Packet, PacketEvent, ScenarioSpec
from repro.campaign import CampaignSpec, run_campaign
from repro.arrays import OctagonalArray, UniformCircularArray, UniformLinearArray
from repro.core import (
    AccessPointConfig,
    AoASignature,
    SecureAngleAP,
    SecureAngleController,
    SignatureDatabase,
    SpoofingDetector,
    VirtualFence,
)
from repro.testbed import TestbedSimulator, figure4_environment

__version__ = "0.1.0"

__all__ = [
    "AoAEstimate",
    "AoAEstimator",
    "EstimatorConfig",
    "UniformLinearArray",
    "UniformCircularArray",
    "OctagonalArray",
    "AoASignature",
    "SignatureDatabase",
    "SpoofingDetector",
    "VirtualFence",
    "SecureAngleAP",
    "SecureAngleController",
    "AccessPointConfig",
    "TestbedSimulator",
    "figure4_environment",
    "ScenarioSpec",
    "CampaignSpec",
    "run_campaign",
    "Deployment",
    "Packet",
    "PacketEvent",
    "__version__",
]
