"""The array channel: turn propagation paths into per-antenna baseband samples.

``ArrayChannel`` implements the superposition the paper's Figure 1 describes:
each propagation path arrives as a plane wave whose phase progresses by 2*pi
per wavelength travelled, and the antennas of the array each see that wave
with a geometry-dependent extra phase (the steering vector).  The channel sums
the paths, giving the noiseless per-antenna signal; receiver impairments
(per-chain phase offsets, gain mismatch, thermal noise) are added by the
hardware layer in :mod:`repro.hardware`, because that is where they arise in
the real prototype.

Coherent multipath
------------------
All paths carry delayed copies of the same packet, which would make the
spatial covariance rank-1 and hide the weaker paths from MUSIC.  Two physical
effects break this coherence in the real system and are modelled here:

* **Wideband delay decorrelation** — at 20 MHz bandwidth, reflections tens of
  nanoseconds longer than the direct path are partially decorrelated.  The
  channel applies each path's true (fractional) sample delay via an FFT-domain
  delay filter.
* **Per-path phase dynamics** — residual carrier-frequency offset and
  scatterer micro-motion give each path a slowly wandering phase over the
  packet.  The channel applies an independent random-walk phase per path
  (common across antennas so the spatial structure of the path is untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.arrays.steering import steering_vector
from repro.channel.path import PropagationPath
from repro.constants import (
    DEFAULT_CARRIER_FREQUENCY_HZ,
    DEFAULT_SAMPLE_RATE_HZ,
    wavelength,
)
from repro.utils.decibels import dbm_to_watts
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive

#: Delays smaller than this (in samples) skip the FFT delay filter entirely,
#: so the undelayed reference path is returned untouched rather than put
#: through a lossless-but-rounding FFT round trip.
_DELAY_EPSILON_SAMPLES = 1e-12


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters of the array channel model."""

    #: Carrier frequency (Hz); sets the wavelength used for steering phases.
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    #: Complex baseband sampling rate (Hz).
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    #: Standard deviation (radians) of the per-sample random-walk phase applied
    #: independently to each path.  Zero disables the mechanism.
    path_phase_walk_std_rad: float = 0.02
    #: Whether to apply each path's fractional sample delay (FFT-domain).
    apply_path_delays: bool = True

    def __post_init__(self) -> None:
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if self.path_phase_walk_std_rad < 0:
            raise ValueError("path_phase_walk_std_rad must be non-negative")

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self.carrier_frequency_hz)


class ArrayChannel:
    """Propagate a transmit waveform over a set of paths onto an antenna array.

    Parameters
    ----------
    array:
        The receiving antenna array (element positions in its local frame).
    orientation_deg:
        Rotation of the array's local frame within the global floor plan.
        A path arriving from global bearing ``b`` impinges on the array from
        local azimuth ``b - orientation_deg``.
    config:
        Channel model parameters.
    rng:
        Seed or generator for the stochastic parts of the model.
    """

    def __init__(self, array: AntennaArray, orientation_deg: float = 0.0,
                 config: Optional[ChannelConfig] = None, rng: RngLike = None):
        config = config if config is not None else ChannelConfig()
        self.array = array
        self.orientation_deg = float(orientation_deg)
        self.config = config
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ public
    def propagate(self, waveform: np.ndarray, paths: Sequence[PropagationPath],
                  tx_power_dbm: float = 15.0,
                  path_fading: Optional[np.ndarray] = None,
                  rng: RngLike = None) -> np.ndarray:
        """Return the noiseless (num_antennas, num_samples) received signal.

        Parameters
        ----------
        waveform:
            Unit-power complex baseband transmit waveform (1-D).
        paths:
            Propagation paths from the ray tracer (possibly evolved by
            :class:`repro.channel.dynamics.EnvironmentDynamics`).
        tx_power_dbm:
            Transmit power; path gains are applied on top of this.
        path_fading:
            Optional per-path complex fading factors (for example from
            ``EnvironmentDynamics.fast_fading_jitter``); length must match
            ``paths``.
        rng:
            Overrides the channel's generator for this packet (useful for
            per-packet reproducibility in experiments).
        """
        waveform = np.asarray(waveform, dtype=complex)
        if waveform.ndim != 1:
            raise ValueError(f"waveform must be 1-D, got shape {waveform.shape}")
        if waveform.size == 0:
            raise ValueError("waveform must not be empty")
        paths = list(paths)
        if not paths:
            raise ValueError("at least one propagation path is required")
        if path_fading is not None:
            path_fading = np.asarray(path_fading, dtype=complex)
            if path_fading.shape != (len(paths),):
                raise ValueError(
                    f"path_fading must have shape ({len(paths)},), got {path_fading.shape}")
        generator = ensure_rng(rng) if rng is not None else self._rng
        return self._propagate_one(waveform, paths, tx_power_dbm, path_fading,
                                   generator)

    def propagate_batch(self, waveforms: Sequence[np.ndarray],
                        paths_batch: Sequence[Sequence[PropagationPath]],
                        tx_power_dbm: float = 15.0,
                        path_fading: Optional[Sequence[Optional[np.ndarray]]] = None,
                        rngs: Optional[Sequence[RngLike]] = None) -> np.ndarray:
        """Propagate a whole batch of packets in one vectorized pass.

        Returns the noiseless ``(B, num_antennas, num_samples)`` received
        signals for ``B`` packets.  The output is bit-identical to calling
        :meth:`propagate` once per packet, provided the same per-packet
        generators are supplied: pass ``rngs`` as one generator per packet
        (pinned rng substreams), or leave it ``None`` to consume the
        channel's own generator packet by packet exactly as a scalar loop
        would.

        Parameters
        ----------
        waveforms:
            ``B`` unit-power transmit waveforms of equal length (a ``(B, S)``
            array or a sequence of 1-D arrays).
        paths_batch:
            One path set per packet; path counts may differ between packets.
        tx_power_dbm:
            Transmit power, shared by the batch or one value per packet.
        path_fading:
            Optional per-packet fading factor arrays (``None`` entries allowed).
        rngs:
            Optional per-packet generators for the stochastic phase walks.
        """
        waveform_matrix = np.asarray(waveforms, dtype=complex)
        if waveform_matrix.ndim != 2:
            raise ValueError(
                f"waveforms must stack into a (B, S) matrix, got shape {waveform_matrix.shape}")
        batch_size, num_samples = waveform_matrix.shape
        if batch_size == 0:
            raise ValueError("waveforms must contain at least one packet")
        if num_samples == 0:
            raise ValueError("waveforms must not be empty")
        paths_batch = [list(paths) for paths in paths_batch]
        if len(paths_batch) != batch_size:
            raise ValueError(
                f"expected {batch_size} path sets, got {len(paths_batch)}")
        if any(not paths for paths in paths_batch):
            raise ValueError("every packet needs at least one propagation path")
        tx_powers = np.broadcast_to(np.asarray(tx_power_dbm, dtype=float),
                                    (batch_size,))
        if path_fading is None:
            fading_batch: List[Optional[np.ndarray]] = [None] * batch_size
        else:
            fading_batch = list(path_fading)
            if len(fading_batch) != batch_size:
                raise ValueError(
                    f"expected {batch_size} path_fading entries, got {len(fading_batch)}")
        if rngs is None:
            generators = [self._rng] * batch_size
        else:
            generators = [ensure_rng(rng) for rng in rngs]
            if len(generators) != batch_size:
                raise ValueError(
                    f"expected {batch_size} rng substreams, got {len(generators)}")

        num_antennas = self.array.num_elements
        max_paths = max(len(paths) for paths in paths_batch)
        lambda_m = self.config.wavelength
        # Per-(packet, path) steering vectors, complex coefficients, and
        # relative delays, zero-padded up to the largest path count.  Padded
        # entries carry zero coefficients and zero steering responses, so they
        # add exact complex zeros and cannot perturb the bit pattern.  A
        # static client repeats one path set for the whole burst, so the
        # geometry-only quantities (steering, dry coefficients, delays) are
        # computed once per distinct path set and reused.
        steering = np.zeros((batch_size, max_paths, num_antennas), dtype=complex)
        coefficients = np.zeros((batch_size, max_paths), dtype=complex)
        delays = np.zeros((batch_size, max_paths), dtype=float)
        geometry_memo: dict = {}
        for index, paths in enumerate(paths_batch):
            count = len(paths)
            fading = fading_batch[index]
            if fading is not None:
                fading = np.asarray(fading, dtype=complex)
                if fading.shape != (count,):
                    raise ValueError(
                        f"path_fading[{index}] must have shape ({count},), "
                        f"got {fading.shape}")
            memo_key = (tuple(id(path) for path in paths), float(tx_powers[index]))
            cached = geometry_memo.get(memo_key)
            if cached is None:
                cached = (
                    self._steering_stack(paths, lambda_m),
                    self._path_coefficients(paths, float(tx_powers[index]),
                                            None, lambda_m),
                    self._relative_delays(paths),
                )
                geometry_memo[memo_key] = cached
            path_steering, dry_coefficients, relative_delays = cached
            steering[index, :count] = path_steering
            if fading is None:
                coefficients[index, :count] = dry_coefficients
            else:
                # Same grouping as the scalar path: (amplitude * carrier
                # phase), then * fading.
                coefficients[index, :count] = dry_coefficients * fading
            if self.config.apply_path_delays:
                delays[index, :count] = relative_delays

        if self.config.apply_path_delays:
            modulated = fractional_delay_batch(waveform_matrix[:, None, :], delays)
        else:
            modulated = np.broadcast_to(
                waveform_matrix[:, None, :],
                (batch_size, max_paths, num_samples))
        if self.config.path_phase_walk_std_rad > 0:
            walks = np.empty((batch_size, max_paths, num_samples), dtype=complex)
            if any(len(paths) != max_paths for paths in paths_batch):
                # Padded rows multiply zero-coefficient paths; any finite
                # value works, and 1.0 keeps them inert.
                walks[:] = 1.0
            for index, paths in enumerate(paths_batch):
                walks[index, :len(paths)] = phase_random_walk_batch(
                    len(paths), num_samples, self.config.path_phase_walk_std_rad,
                    generators[index])
            modulated = modulated * walks
        # Coefficients folded into the steering stack; one (B, N, P) @
        # (B, P, S) contraction sums the per-path outer products.  np.matmul
        # runs the identical GEMM per batch item, so this is bit-identical to
        # the scalar path's per-packet matmul.
        weighted = steering * coefficients[:, :, None]
        return np.matmul(weighted.transpose(0, 2, 1), modulated)

    # ---------------------------------------------------------------- internals
    def _relative_delays(self, paths: Sequence[PropagationPath]) -> np.ndarray:
        """Per-path delays in samples, relative to the earliest arrival."""
        reference_delay = min(path.delay_s for path in paths)
        return np.array([
            (path.delay_s - reference_delay) * self.config.sample_rate_hz
            for path in paths
        ])

    def _steering_stack(self, paths: Sequence[PropagationPath],
                        lambda_m: float) -> np.ndarray:
        """Per-path steering vectors hoisted into one (P, N) matrix."""
        positions = self.array.element_positions
        return np.stack([
            steering_vector(positions, path.aoa_deg - self.orientation_deg, lambda_m)
            for path in paths
        ])

    def _path_coefficients(self, paths: Sequence[PropagationPath],
                           tx_power_dbm: float,
                           path_fading: Optional[np.ndarray],
                           lambda_m: float) -> np.ndarray:
        """Complex per-path amplitude * carrier-phase * fading coefficients.

        The fading factors multiply the dry coefficients as one array
        operation; the batch path applies fading to memoized dry coefficients
        the same way, keeping both bit-identical.
        """
        tx_amplitude = float(np.sqrt(dbm_to_watts(tx_power_dbm)))
        coefficients = np.empty(len(paths), dtype=complex)
        for index, path in enumerate(paths):
            carrier_phase = np.exp(-1j * path.carrier_phase_rad(lambda_m))
            amplitude = tx_amplitude * path.amplitude
            coefficients[index] = amplitude * carrier_phase
        if path_fading is not None:
            coefficients = coefficients * np.asarray(path_fading, dtype=complex)
        return coefficients

    def _propagate_one(self, waveform: np.ndarray,
                       paths: Sequence[PropagationPath], tx_power_dbm: float,
                       path_fading: Optional[np.ndarray],
                       generator: np.random.Generator) -> np.ndarray:
        lambda_m = self.config.wavelength
        num_samples = waveform.size
        steering = self._steering_stack(paths, lambda_m)
        coefficients = self._path_coefficients(paths, tx_power_dbm, path_fading,
                                               lambda_m)
        if self.config.apply_path_delays:
            delays = self._relative_delays(paths)
            modulated = fractional_delay_batch(waveform, delays)
        else:
            modulated = np.broadcast_to(waveform, (len(paths), num_samples))
        if self.config.path_phase_walk_std_rad > 0:
            # Named walks: an anonymous temporary could be elided into an
            # in-place complex multiply, breaking batch/scalar bit-exactness.
            walks = phase_random_walk_batch(
                len(paths), num_samples, self.config.path_phase_walk_std_rad,
                generator)
            modulated = modulated * walks
        # Fold the per-path coefficients into the steering matrix (P*N values)
        # instead of scaling the (P, S) waveforms, then contract with one
        # (N, P) @ (P, S) GEMM.  The batch path runs the same GEMM per packet
        # (np.matmul over a stack), so scalar and batched propagation stay
        # bit-identical.
        weighted = steering * coefficients[:, None]
        return np.matmul(weighted.T, modulated)

    def expected_local_bearing(self, global_bearing_deg: float) -> float:
        """Map a global bearing to the bearing the array's estimator reports.

        For unambiguous (planar) arrays this is simply the local azimuth in
        [0, 360).  For linear arrays the estimator reports broadside angles in
        [-90, 90] and cannot distinguish front from back, so the bearing is
        folded accordingly (footnote 1 of the paper).
        """
        local = (float(global_bearing_deg) - self.orientation_deg) % 360.0
        if not self.array.ambiguous:
            return local
        # Linear array along local x: broadside angle theta satisfies
        # sin(theta) = cos(local azimuth); fold the back half-plane onto the front.
        folded = local if local <= 180.0 else 360.0 - local
        return 90.0 - folded


def fractional_delay(waveform: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a waveform by a (possibly fractional) number of samples.

    Uses an FFT-domain linear-phase filter, which is exact for band-limited
    signals and avoids the amplitude ripple of naive interpolation.  Negative
    delays advance the waveform.
    """
    waveform = np.asarray(waveform, dtype=complex)
    if waveform.ndim != 1:
        raise ValueError("waveform must be 1-D")
    if abs(delay_samples) < _DELAY_EPSILON_SAMPLES:
        return waveform.copy()
    n = waveform.size
    spectrum = np.fft.fft(waveform)
    frequencies = np.fft.fftfreq(n)
    # Named ramp: see fractional_delay_batch for why the temporary must not
    # be elided into an in-place complex multiply.
    ramp = np.exp(-2j * np.pi * frequencies * delay_samples)
    shifted = spectrum * ramp
    return np.fft.ifft(shifted)


def fractional_delay_batch(waveforms: np.ndarray,
                           delay_samples: np.ndarray) -> np.ndarray:
    """Apply many fractional delays in one FFT round trip.

    ``waveforms`` is ``(..., S)`` and ``delay_samples`` broadcasts against its
    leading dimensions; each output row is the matching waveform delayed by
    its own (possibly fractional) sample count.  Two common shapes:

    * one waveform, many delays — ``waveforms`` of shape ``(S,)`` with
      ``delay_samples`` of shape ``(P,)`` gives ``(P, S)`` (the per-path
      delays of one packet);
    * a batch — ``waveforms`` of shape ``(B, 1, S)`` with delays ``(B, P)``
      gives ``(B, P, S)`` (per-path delays for every packet of a batch).

    Each row is bit-identical to :func:`fractional_delay` on the same inputs:
    the FFT and inverse FFT process rows independently, the phase ramp is
    evaluated with the same operation order, and near-zero delays return the
    waveform untouched instead of an FFT round trip.
    """
    waveforms = np.asarray(waveforms, dtype=complex)
    if waveforms.ndim == 0 or waveforms.shape[-1] == 0:
        raise ValueError("waveforms must have at least one sample")
    delays = np.asarray(delay_samples, dtype=float)
    n = waveforms.shape[-1]
    lead_shape = np.broadcast_shapes(waveforms.shape[:-1], delays.shape)
    out_shape = lead_shape + (n,)
    delays = np.broadcast_to(delays, lead_shape)
    spectra = np.fft.fft(waveforms, axis=-1)
    ramp = _delay_ramps(delays, n)
    # The ramp is a named array, never an anonymous temporary: numpy would
    # elide a >256 KB temporary into an in-place complex multiply, whose
    # rounding differs in the last ulp from the out-of-place loop and would
    # break bit-exactness between batch sizes.
    shifted = np.broadcast_to(spectra, out_shape) * ramp
    delayed = np.fft.ifft(shifted, axis=-1)
    passthrough = np.abs(delays) < _DELAY_EPSILON_SAMPLES
    if np.any(passthrough):
        delayed[passthrough] = np.broadcast_to(waveforms, out_shape)[passthrough]
    return delayed


def _delay_ramps(delays: np.ndarray, n: int) -> np.ndarray:
    """Linear-phase delay ramps ``exp(-2j*pi*f*d)`` for a stack of delays.

    A burst from a static client repeats the same per-path delays for every
    packet, so the ramps are computed once per *unique* trailing row and
    gathered back — the transcendentals are the expensive part.  The phase is
    evaluated with the same operand grouping as :func:`fractional_delay`
    (``(-2*pi*f) * d``), and ``cos + 1j*sin`` of a real phase is bit-identical
    to ``exp`` of the equivalent purely imaginary argument, so every row
    matches the scalar helper exactly.
    """
    frequencies = np.fft.fftfreq(n)
    base = -2.0 * np.pi * frequencies
    if delays.ndim <= 1:
        unique = delays.reshape(1, -1) if delays.ndim else delays.reshape(1, 1)
        phases = base * unique[..., None]
        ramps = np.empty(phases.shape, dtype=complex)
        ramps.real = np.cos(phases)
        ramps.imag = np.sin(phases)
        return ramps.reshape(delays.shape + (n,))
    rows = delays.reshape(-1, delays.shape[-1])
    unique, inverse = np.unique(rows, axis=0, return_inverse=True)
    phases = base * unique[..., None]
    ramps = np.empty(phases.shape, dtype=complex)
    ramps.real = np.cos(phases)
    ramps.imag = np.sin(phases)
    if unique.shape[0] == 1:
        # Static-client bursts repeat one delay row; broadcast a read-only
        # view instead of materialising B copies.
        return np.broadcast_to(ramps[0], delays.shape + (n,))
    gathered = ramps[inverse.reshape(-1)]
    return gathered.reshape(delays.shape + (n,))


def phase_random_walk(num_samples: int, step_std_rad: float,
                      rng: RngLike = None) -> np.ndarray:
    """Unit-magnitude random-walk phase process of length ``num_samples``.

    Models per-path phase dynamics (residual CFO, scatterer micro-motion) over
    the duration of one packet.  The walk starts from a uniformly random
    initial phase so different paths are mutually incoherent.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if step_std_rad < 0:
        raise ValueError("step_std_rad must be non-negative")
    generator = ensure_rng(rng)
    initial = generator.uniform(0.0, 2.0 * np.pi)
    steps = generator.normal(0.0, step_std_rad, size=num_samples)
    steps[0] = 0.0
    phase = initial + np.cumsum(steps)
    return np.exp(1j * phase)


def phase_random_walk_batch(num_walks: int, num_samples: int,
                            step_std_rad: float,
                            rng: RngLike = None) -> np.ndarray:
    """Stack of ``num_walks`` independent random-walk phase processes.

    Returns a ``(num_walks, num_samples)`` complex matrix.  The random draws
    are made walk by walk in the same order as repeated calls to
    :func:`phase_random_walk` on the same generator (one uniform initial
    phase, then the step sequence), so the result is bit-identical to the
    scalar loop — but the cumulative sum and complex exponential, the actual
    compute, run once over the whole stack.
    """
    if num_walks <= 0:
        raise ValueError("num_walks must be positive")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if step_std_rad < 0:
        raise ValueError("step_std_rad must be non-negative")
    generator = ensure_rng(rng)
    # Draw order (per walk: initial phase, then steps) matches repeated calls
    # to phase_random_walk on the same generator; the Figure 6 stability
    # reproduction is pinned to this stream layout, so it must not change.
    initials = np.empty(num_walks)
    steps = np.empty((num_walks, num_samples))
    for walk in range(num_walks):
        initials[walk] = generator.uniform(0.0, 2.0 * np.pi)
        steps[walk] = generator.normal(0.0, step_std_rad, size=num_samples)
    steps[:, 0] = 0.0
    phases = initials[:, None] + np.cumsum(steps, axis=1)
    # cos + 1j*sin of the real phase is bit-identical to exp(1j*phase) and
    # roughly twice as fast (no complex-exp scalar loop).
    walks = np.empty(phases.shape, dtype=complex)
    walks.real = np.cos(phases)
    walks.imag = np.sin(phases)
    return walks
