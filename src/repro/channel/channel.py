"""The array channel: turn propagation paths into per-antenna baseband samples.

``ArrayChannel`` implements the superposition the paper's Figure 1 describes:
each propagation path arrives as a plane wave whose phase progresses by 2*pi
per wavelength travelled, and the antennas of the array each see that wave
with a geometry-dependent extra phase (the steering vector).  The channel sums
the paths, giving the noiseless per-antenna signal; receiver impairments
(per-chain phase offsets, gain mismatch, thermal noise) are added by the
hardware layer in :mod:`repro.hardware`, because that is where they arise in
the real prototype.

Coherent multipath
------------------
All paths carry delayed copies of the same packet, which would make the
spatial covariance rank-1 and hide the weaker paths from MUSIC.  Two physical
effects break this coherence in the real system and are modelled here:

* **Wideband delay decorrelation** — at 20 MHz bandwidth, reflections tens of
  nanoseconds longer than the direct path are partially decorrelated.  The
  channel applies each path's true (fractional) sample delay via an FFT-domain
  delay filter.
* **Per-path phase dynamics** — residual carrier-frequency offset and
  scatterer micro-motion give each path a slowly wandering phase over the
  packet.  The channel applies an independent random-walk phase per path
  (common across antennas so the spatial structure of the path is untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.channel.path import PropagationPath
from repro.constants import (
    DEFAULT_CARRIER_FREQUENCY_HZ,
    DEFAULT_SAMPLE_RATE_HZ,
    wavelength,
)
from repro.kernels.backend import (
    DELAY_EPSILON_SAMPLES as _DELAY_EPSILON_SAMPLES,
    Backend,
    complex_dtype,
    delay_ramps as _delay_ramps,
    get_backend,
    real_dtype,
)
from repro.utils.decibels import dbm_to_watts
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters of the array channel model."""

    #: Carrier frequency (Hz); sets the wavelength used for steering phases.
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    #: Complex baseband sampling rate (Hz).
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    #: Standard deviation (radians) of the per-sample random-walk phase applied
    #: independently to each path.  Zero disables the mechanism.
    path_phase_walk_std_rad: float = 0.02
    #: Whether to apply each path's fractional sample delay (FFT-domain).
    apply_path_delays: bool = True

    def __post_init__(self) -> None:
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if self.path_phase_walk_std_rad < 0:
            raise ValueError("path_phase_walk_std_rad must be non-negative")

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self.carrier_frequency_hz)


class ArrayChannel:
    """Propagate a transmit waveform over a set of paths onto an antenna array.

    Parameters
    ----------
    array:
        The receiving antenna array (element positions in its local frame).
    orientation_deg:
        Rotation of the array's local frame within the global floor plan.
        A path arriving from global bearing ``b`` impinges on the array from
        local azimuth ``b - orientation_deg``.
    config:
        Channel model parameters.
    rng:
        Seed or generator for the stochastic parts of the model.
    backend:
        Compute backend for the synthesis kernels (see
        :func:`repro.kernels.get_backend`); ``None`` resolves the
        ``REPRO_BACKEND`` environment variable and defaults to numpy.
    precision:
        ``"float64"`` (the bit-exact reference) or ``"float32"`` (complex64
        waveforms, float32 delay ramps and phase walks — faster, with a
        documented rng-draw layout of its own).
    """

    def __init__(self, array: AntennaArray, orientation_deg: float = 0.0,
                 config: Optional[ChannelConfig] = None, rng: RngLike = None,
                 backend: Union[None, str, Backend] = None,
                 precision: str = "float64"):
        config = config if config is not None else ChannelConfig()
        self.array = array
        self.orientation_deg = float(orientation_deg)
        self.config = config
        self._rng = ensure_rng(rng)
        self.precision = precision
        self._backend = get_backend(backend)
        self._cdtype = complex_dtype(precision)
        self._rdtype = real_dtype(precision)

    # ------------------------------------------------------------------ public
    def propagate(self, waveform: np.ndarray, paths: Sequence[PropagationPath],
                  tx_power_dbm: float = 15.0,
                  path_fading: Optional[np.ndarray] = None,
                  rng: RngLike = None) -> np.ndarray:
        """Return the noiseless (num_antennas, num_samples) received signal.

        Parameters
        ----------
        waveform:
            Unit-power complex baseband transmit waveform (1-D).
        paths:
            Propagation paths from the ray tracer (possibly evolved by
            :class:`repro.channel.dynamics.EnvironmentDynamics`).
        tx_power_dbm:
            Transmit power; path gains are applied on top of this.
        path_fading:
            Optional per-path complex fading factors (for example from
            ``EnvironmentDynamics.fast_fading_jitter``); length must match
            ``paths``.
        rng:
            Overrides the channel's generator for this packet (useful for
            per-packet reproducibility in experiments).
        """
        waveform = np.asarray(waveform, dtype=self._cdtype)
        if waveform.ndim != 1:
            raise ValueError(f"waveform must be 1-D, got shape {waveform.shape}")
        if waveform.size == 0:
            raise ValueError("waveform must not be empty")
        paths = list(paths)
        if not paths:
            raise ValueError("at least one propagation path is required")
        if path_fading is not None:
            path_fading = np.asarray(path_fading, dtype=complex)
            if path_fading.shape != (len(paths),):
                raise ValueError(
                    f"path_fading must have shape ({len(paths)},), got {path_fading.shape}")
        generator = ensure_rng(rng) if rng is not None else self._rng
        return self._propagate_one(waveform, paths, tx_power_dbm, path_fading,
                                   generator)

    def propagate_batch(self, waveforms: Sequence[np.ndarray],
                        paths_batch: Sequence[Sequence[PropagationPath]],
                        tx_power_dbm: float = 15.0,
                        path_fading: Optional[Sequence[Optional[np.ndarray]]] = None,
                        rngs: Optional[Sequence[RngLike]] = None) -> np.ndarray:
        """Propagate a whole batch of packets in one vectorized pass.

        Returns the noiseless ``(B, num_antennas, num_samples)`` received
        signals for ``B`` packets.  The output is bit-identical to calling
        :meth:`propagate` once per packet, provided the same per-packet
        generators are supplied: pass ``rngs`` as one generator per packet
        (pinned rng substreams), or leave it ``None`` to consume the
        channel's own generator packet by packet exactly as a scalar loop
        would.

        Parameters
        ----------
        waveforms:
            ``B`` unit-power transmit waveforms of equal length (a ``(B, S)``
            array or a sequence of 1-D arrays).
        paths_batch:
            One path set per packet; path counts may differ between packets.
        tx_power_dbm:
            Transmit power, shared by the batch or one value per packet.
        path_fading:
            Optional per-packet fading factor arrays (``None`` entries allowed).
        rngs:
            Optional per-packet generators for the stochastic phase walks.
        """
        waveform_matrix = np.asarray(waveforms, dtype=self._cdtype)
        if waveform_matrix.ndim != 2:
            raise ValueError(
                f"waveforms must stack into a (B, S) matrix, got shape {waveform_matrix.shape}")
        batch_size, num_samples = waveform_matrix.shape
        if batch_size == 0:
            raise ValueError("waveforms must contain at least one packet")
        if num_samples == 0:
            raise ValueError("waveforms must not be empty")
        paths_batch = [list(paths) for paths in paths_batch]
        if len(paths_batch) != batch_size:
            raise ValueError(
                f"expected {batch_size} path sets, got {len(paths_batch)}")
        if any(not paths for paths in paths_batch):
            raise ValueError("every packet needs at least one propagation path")
        tx_powers = np.broadcast_to(np.asarray(tx_power_dbm, dtype=float),
                                    (batch_size,))
        if path_fading is None:
            fading_batch: List[Optional[np.ndarray]] = [None] * batch_size
        else:
            fading_batch = list(path_fading)
            if len(fading_batch) != batch_size:
                raise ValueError(
                    f"expected {batch_size} path_fading entries, got {len(fading_batch)}")
        if rngs is None:
            generators = [self._rng] * batch_size
        else:
            generators = [ensure_rng(rng) for rng in rngs]
            if len(generators) != batch_size:
                raise ValueError(
                    f"expected {batch_size} rng substreams, got {len(generators)}")

        num_antennas = self.array.num_elements
        max_paths = max(len(paths) for paths in paths_batch)
        lambda_m = self.config.wavelength
        # Per-(packet, path) steering vectors, complex coefficients, and
        # relative delays, zero-padded up to the largest path count.  Padded
        # entries carry zero coefficients and zero steering responses, so they
        # add exact complex zeros and cannot perturb the bit pattern.  A
        # static client repeats one path set for the whole burst, so the
        # geometry-only quantities (steering, dry coefficients, delays) are
        # computed once per distinct path set and reused.
        steering = np.zeros((batch_size, max_paths, num_antennas), dtype=self._cdtype)
        coefficients = np.zeros((batch_size, max_paths), dtype=self._cdtype)
        delays = np.zeros((batch_size, max_paths), dtype=self._rdtype)
        geometry_memo: dict = {}
        for index, paths in enumerate(paths_batch):
            count = len(paths)
            fading = fading_batch[index]
            if fading is not None:
                fading = np.asarray(fading, dtype=complex)
                if fading.shape != (count,):
                    raise ValueError(
                        f"path_fading[{index}] must have shape ({count},), "
                        f"got {fading.shape}")
            memo_key = (tuple(id(path) for path in paths), float(tx_powers[index]))
            cached = geometry_memo.get(memo_key)
            if cached is None:
                cached = (
                    self._steering_stack(paths, lambda_m),
                    self._path_coefficients(paths, float(tx_powers[index]),
                                            None, lambda_m),
                    self._relative_delays(paths),
                )
                geometry_memo[memo_key] = cached
            path_steering, dry_coefficients, relative_delays = cached
            steering[index, :count] = path_steering
            if fading is None:
                coefficients[index, :count] = dry_coefficients
            else:
                # Same grouping as the scalar path: (amplitude * carrier
                # phase), then * fading.
                coefficients[index, :count] = dry_coefficients * fading
            if self.config.apply_path_delays:
                delays[index, :count] = relative_delays

        if self.config.apply_path_delays:
            modulated = fractional_delay_batch(waveform_matrix[:, None, :], delays,
                                               backend=self._backend)
        else:
            modulated = np.broadcast_to(
                waveform_matrix[:, None, :],
                (batch_size, max_paths, num_samples))
        if self.config.path_phase_walk_std_rad > 0:
            walks = np.empty((batch_size, max_paths, num_samples), dtype=self._cdtype)
            if any(len(paths) != max_paths for paths in paths_batch):
                # Padded rows multiply zero-coefficient paths; any finite
                # value works, and 1.0 keeps them inert.
                walks[:] = 1.0
            for index, paths in enumerate(paths_batch):
                walks[index, :len(paths)] = phase_random_walk_batch(
                    len(paths), num_samples, self.config.path_phase_walk_std_rad,
                    generators[index], dtype=self._rdtype, backend=self._backend)
            modulated = modulated * walks
        # Coefficients folded into the steering stack; one (B, N, P) @
        # (B, P, S) contraction sums the per-path outer products.  The
        # backend's matmul runs the identical GEMM per batch item (np.matmul
        # on the default backend), so this is bit-identical to the scalar
        # path's per-packet matmul.
        weighted = steering * coefficients[:, :, None]
        return self._backend.matmul(weighted.transpose(0, 2, 1), modulated)

    # ---------------------------------------------------------------- internals
    def _relative_delays(self, paths: Sequence[PropagationPath]) -> np.ndarray:
        """Per-path delays in samples, relative to the earliest arrival."""
        reference_delay = min(path.delay_s for path in paths)
        return np.array([
            (path.delay_s - reference_delay) * self.config.sample_rate_hz
            for path in paths
        ])

    def _steering_stack(self, paths: Sequence[PropagationPath],
                        lambda_m: float) -> np.ndarray:
        """Per-path steering vectors hoisted into one (P, N) matrix."""
        positions = self.array.element_positions
        angles = [path.aoa_deg - self.orientation_deg for path in paths]
        stack = self._backend.steering_stack(positions, angles, lambda_m)
        return stack.astype(self._cdtype, copy=False)

    def _path_coefficients(self, paths: Sequence[PropagationPath],
                           tx_power_dbm: float,
                           path_fading: Optional[np.ndarray],
                           lambda_m: float) -> np.ndarray:
        """Complex per-path amplitude * carrier-phase * fading coefficients.

        The fading factors multiply the dry coefficients as one array
        operation; the batch path applies fading to memoized dry coefficients
        the same way, keeping both bit-identical.
        """
        tx_amplitude = float(np.sqrt(dbm_to_watts(tx_power_dbm)))
        coefficients = np.empty(len(paths), dtype=complex)
        for index, path in enumerate(paths):
            carrier_phase = np.exp(-1j * path.carrier_phase_rad(lambda_m))
            amplitude = tx_amplitude * path.amplitude
            coefficients[index] = amplitude * carrier_phase
        if path_fading is not None:
            coefficients = coefficients * np.asarray(path_fading, dtype=complex)
        return coefficients.astype(self._cdtype, copy=False)

    def _propagate_one(self, waveform: np.ndarray,
                       paths: Sequence[PropagationPath], tx_power_dbm: float,
                       path_fading: Optional[np.ndarray],
                       generator: np.random.Generator) -> np.ndarray:
        lambda_m = self.config.wavelength
        num_samples = waveform.size
        steering = self._steering_stack(paths, lambda_m)
        coefficients = self._path_coefficients(paths, tx_power_dbm, path_fading,
                                               lambda_m)
        if self.config.apply_path_delays:
            delays = self._relative_delays(paths).astype(self._rdtype, copy=False)
            modulated = fractional_delay_batch(waveform, delays,
                                               backend=self._backend)
        else:
            modulated = np.broadcast_to(waveform, (len(paths), num_samples))
        if self.config.path_phase_walk_std_rad > 0:
            # Named walks: an anonymous temporary could be elided into an
            # in-place complex multiply, breaking batch/scalar bit-exactness.
            walks = phase_random_walk_batch(
                len(paths), num_samples, self.config.path_phase_walk_std_rad,
                generator, dtype=self._rdtype, backend=self._backend)
            modulated = modulated * walks
        # Fold the per-path coefficients into the steering matrix (P*N values)
        # instead of scaling the (P, S) waveforms, then contract with one
        # (N, P) @ (P, S) GEMM.  The batch path runs the same GEMM per packet
        # (the backend's matmul over a stack), so scalar and batched
        # propagation stay bit-identical.
        weighted = steering * coefficients[:, None]
        return self._backend.matmul(weighted.T, modulated)

    def expected_local_bearing(self, global_bearing_deg: float) -> float:
        """Map a global bearing to the bearing the array's estimator reports.

        For unambiguous (planar) arrays this is simply the local azimuth in
        [0, 360).  For linear arrays the estimator reports broadside angles in
        [-90, 90] and cannot distinguish front from back, so the bearing is
        folded accordingly (footnote 1 of the paper).
        """
        local = (float(global_bearing_deg) - self.orientation_deg) % 360.0
        if not self.array.ambiguous:
            return local
        # Linear array along local x: broadside angle theta satisfies
        # sin(theta) = cos(local azimuth); fold the back half-plane onto the front.
        folded = local if local <= 180.0 else 360.0 - local
        return 90.0 - folded


def fractional_delay(waveform: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a waveform by a (possibly fractional) number of samples.

    Uses an FFT-domain linear-phase filter, which is exact for band-limited
    signals and avoids the amplitude ripple of naive interpolation.  Negative
    delays advance the waveform.
    """
    waveform = np.asarray(waveform, dtype=complex)
    if waveform.ndim != 1:
        raise ValueError("waveform must be 1-D")
    if abs(delay_samples) < _DELAY_EPSILON_SAMPLES:
        return waveform.copy()
    n = waveform.size
    # Scalar reference path, deliberately off the Backend seam: the batch
    # path (fractional_delay_batch -> backend.fractional_delay) IS the seam
    # route, and the batch/scalar byte-identity suite pins this exact
    # numpy FFT rounding as the reference both must reproduce.
    spectrum = np.fft.fft(waveform)  # repro-lint: disable=seam-bypass
    frequencies = np.fft.fftfreq(n)
    # Named ramp: see fractional_delay_batch for why the temporary must not
    # be elided into an in-place complex multiply.
    ramp = np.exp(-2j * np.pi * frequencies * delay_samples)
    shifted = spectrum * ramp
    return np.fft.ifft(shifted)  # repro-lint: disable=seam-bypass


def fractional_delay_batch(waveforms: np.ndarray,
                           delay_samples: np.ndarray,
                           backend: Union[None, str, Backend] = None) -> np.ndarray:
    """Apply many fractional delays in one FFT round trip.

    ``waveforms`` is ``(..., S)`` and ``delay_samples`` broadcasts against its
    leading dimensions; each output row is the matching waveform delayed by
    its own (possibly fractional) sample count.  Two common shapes:

    * one waveform, many delays — ``waveforms`` of shape ``(S,)`` with
      ``delay_samples`` of shape ``(P,)`` gives ``(P, S)`` (the per-path
      delays of one packet);
    * a batch — ``waveforms`` of shape ``(B, 1, S)`` with delays ``(B, P)``
      gives ``(B, P, S)`` (per-path delays for every packet of a batch).

    Each row is bit-identical to :func:`fractional_delay` on the same inputs:
    the FFT and inverse FFT process rows independently, the phase ramp is
    evaluated with the same operation order, and near-zero delays return the
    waveform untouched instead of an FFT round trip.  complex64 waveforms and
    float32 delays are honoured (the reduced-precision synthesis mode); all
    other dtypes are promoted to complex128/float64 as before.
    """
    waveforms = np.asarray(waveforms)
    if waveforms.dtype != np.complex64:
        waveforms = waveforms.astype(complex, copy=False)
    if waveforms.ndim == 0 or waveforms.shape[-1] == 0:
        raise ValueError("waveforms must have at least one sample")
    delays = np.asarray(delay_samples)
    if delays.dtype != np.float32:
        delays = delays.astype(float, copy=False)
    n = waveforms.shape[-1]
    lead_shape = np.broadcast_shapes(waveforms.shape[:-1], delays.shape)
    out_shape = lead_shape + (n,)
    delays = np.broadcast_to(delays, lead_shape)
    return get_backend(backend).fractional_delay(waveforms, delays, out_shape)


def phase_random_walk(num_samples: int, step_std_rad: float,
                      rng: RngLike = None) -> np.ndarray:
    """Unit-magnitude random-walk phase process of length ``num_samples``.

    Models per-path phase dynamics (residual CFO, scatterer micro-motion) over
    the duration of one packet.  The walk starts from a uniformly random
    initial phase so different paths are mutually incoherent.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if step_std_rad < 0:
        raise ValueError("step_std_rad must be non-negative")
    generator = ensure_rng(rng)
    initial = generator.uniform(0.0, 2.0 * np.pi)
    steps = generator.normal(0.0, step_std_rad, size=num_samples)
    steps[0] = 0.0
    phase = initial + np.cumsum(steps)
    return np.exp(1j * phase)


def phase_random_walk_batch(num_walks: int, num_samples: int,
                            step_std_rad: float,
                            rng: RngLike = None,
                            dtype: np.dtype = float,
                            backend: Union[None, str, Backend] = None) -> np.ndarray:
    """Stack of ``num_walks`` independent random-walk phase processes.

    Returns a ``(num_walks, num_samples)`` complex matrix.  The random draws
    are made walk by walk in the same order as repeated calls to
    :func:`phase_random_walk` on the same generator (one uniform initial
    phase, then the step sequence), so the result is bit-identical to the
    scalar loop — but the cumulative sum and complex exponential, the actual
    compute, run once over the whole stack (through the compute backend).

    ``dtype=np.float32`` is the reduced-precision mode: initial phases and
    steps are drawn as native float32 variates (roughly twice as fast), which
    intentionally uses a *different* rng stream layout than the float64
    reference — float32 synthesis trades bit-reproducibility against the
    float64 pipeline for speed.
    """
    if num_walks <= 0:
        raise ValueError("num_walks must be positive")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if step_std_rad < 0:
        raise ValueError("step_std_rad must be non-negative")
    generator = ensure_rng(rng)
    # Draw order (per walk: initial phase, then steps) matches repeated calls
    # to phase_random_walk on the same generator; the Figure 6 stability
    # reproduction is pinned to this stream layout, so it must not change.
    if np.dtype(dtype) == np.float32:
        initials = np.empty(num_walks, dtype=np.float32)
        steps = np.empty((num_walks, num_samples), dtype=np.float32)
        for walk in range(num_walks):
            initials[walk] = generator.random(dtype=np.float32) * (2.0 * np.pi)
            steps[walk] = generator.standard_normal(
                num_samples, dtype=np.float32) * step_std_rad
    else:
        initials = np.empty(num_walks)
        steps = np.empty((num_walks, num_samples))
        for walk in range(num_walks):
            initials[walk] = generator.uniform(0.0, 2.0 * np.pi)
            steps[walk] = generator.normal(0.0, step_std_rad, size=num_samples)
    steps[:, 0] = 0.0
    return get_backend(backend).phase_walk(initials, steps)
