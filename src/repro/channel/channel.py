"""The array channel: turn propagation paths into per-antenna baseband samples.

``ArrayChannel`` implements the superposition the paper's Figure 1 describes:
each propagation path arrives as a plane wave whose phase progresses by 2*pi
per wavelength travelled, and the antennas of the array each see that wave
with a geometry-dependent extra phase (the steering vector).  The channel sums
the paths, giving the noiseless per-antenna signal; receiver impairments
(per-chain phase offsets, gain mismatch, thermal noise) are added by the
hardware layer in :mod:`repro.hardware`, because that is where they arise in
the real prototype.

Coherent multipath
------------------
All paths carry delayed copies of the same packet, which would make the
spatial covariance rank-1 and hide the weaker paths from MUSIC.  Two physical
effects break this coherence in the real system and are modelled here:

* **Wideband delay decorrelation** — at 20 MHz bandwidth, reflections tens of
  nanoseconds longer than the direct path are partially decorrelated.  The
  channel applies each path's true (fractional) sample delay via an FFT-domain
  delay filter.
* **Per-path phase dynamics** — residual carrier-frequency offset and
  scatterer micro-motion give each path a slowly wandering phase over the
  packet.  The channel applies an independent random-walk phase per path
  (common across antennas so the spatial structure of the path is untouched).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.arrays.steering import steering_vector
from repro.channel.path import PropagationPath
from repro.constants import (
    DEFAULT_CARRIER_FREQUENCY_HZ,
    DEFAULT_SAMPLE_RATE_HZ,
    wavelength,
)
from repro.utils.decibels import dbm_to_watts
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ChannelConfig:
    """Parameters of the array channel model."""

    #: Carrier frequency (Hz); sets the wavelength used for steering phases.
    carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
    #: Complex baseband sampling rate (Hz).
    sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ
    #: Standard deviation (radians) of the per-sample random-walk phase applied
    #: independently to each path.  Zero disables the mechanism.
    path_phase_walk_std_rad: float = 0.02
    #: Whether to apply each path's fractional sample delay (FFT-domain).
    apply_path_delays: bool = True

    def __post_init__(self) -> None:
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")
        require_positive(self.sample_rate_hz, "sample_rate_hz")
        if self.path_phase_walk_std_rad < 0:
            raise ValueError("path_phase_walk_std_rad must be non-negative")

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self.carrier_frequency_hz)


class ArrayChannel:
    """Propagate a transmit waveform over a set of paths onto an antenna array.

    Parameters
    ----------
    array:
        The receiving antenna array (element positions in its local frame).
    orientation_deg:
        Rotation of the array's local frame within the global floor plan.
        A path arriving from global bearing ``b`` impinges on the array from
        local azimuth ``b - orientation_deg``.
    config:
        Channel model parameters.
    rng:
        Seed or generator for the stochastic parts of the model.
    """

    def __init__(self, array: AntennaArray, orientation_deg: float = 0.0,
                 config: Optional[ChannelConfig] = None, rng: RngLike = None):
        config = config if config is not None else ChannelConfig()
        self.array = array
        self.orientation_deg = float(orientation_deg)
        self.config = config
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ public
    def propagate(self, waveform: np.ndarray, paths: Sequence[PropagationPath],
                  tx_power_dbm: float = 15.0,
                  path_fading: Optional[np.ndarray] = None,
                  rng: RngLike = None) -> np.ndarray:
        """Return the noiseless (num_antennas, num_samples) received signal.

        Parameters
        ----------
        waveform:
            Unit-power complex baseband transmit waveform (1-D).
        paths:
            Propagation paths from the ray tracer (possibly evolved by
            :class:`repro.channel.dynamics.EnvironmentDynamics`).
        tx_power_dbm:
            Transmit power; path gains are applied on top of this.
        path_fading:
            Optional per-path complex fading factors (for example from
            ``EnvironmentDynamics.fast_fading_jitter``); length must match
            ``paths``.
        rng:
            Overrides the channel's generator for this packet (useful for
            per-packet reproducibility in experiments).
        """
        waveform = np.asarray(waveform, dtype=complex)
        if waveform.ndim != 1:
            raise ValueError(f"waveform must be 1-D, got shape {waveform.shape}")
        if waveform.size == 0:
            raise ValueError("waveform must not be empty")
        paths = list(paths)
        if not paths:
            raise ValueError("at least one propagation path is required")
        if path_fading is not None:
            path_fading = np.asarray(path_fading, dtype=complex)
            if path_fading.shape != (len(paths),):
                raise ValueError(
                    f"path_fading must have shape ({len(paths)},), got {path_fading.shape}")
        generator = ensure_rng(rng) if rng is not None else self._rng

        tx_amplitude = float(np.sqrt(dbm_to_watts(tx_power_dbm)))
        lambda_m = self.config.wavelength
        num_antennas = self.array.num_elements
        num_samples = waveform.size
        received = np.zeros((num_antennas, num_samples), dtype=complex)

        reference_delay = min(path.delay_s for path in paths)
        for index, path in enumerate(paths):
            local_azimuth = path.aoa_deg - self.orientation_deg
            response = steering_vector(self.array.element_positions, local_azimuth, lambda_m)
            carrier_phase = np.exp(-1j * path.carrier_phase_rad(lambda_m))
            amplitude = tx_amplitude * path.amplitude
            contribution = waveform
            if self.config.apply_path_delays:
                delay_samples = (path.delay_s - reference_delay) * self.config.sample_rate_hz
                contribution = fractional_delay(contribution, delay_samples)
            if self.config.path_phase_walk_std_rad > 0:
                contribution = contribution * phase_random_walk(
                    num_samples, self.config.path_phase_walk_std_rad, generator)
            fading = 1.0 + 0.0j
            if path_fading is not None:
                fading = complex(path_fading[index])
            received += np.outer(response, amplitude * carrier_phase * fading * contribution)
        return received

    def expected_local_bearing(self, global_bearing_deg: float) -> float:
        """Map a global bearing to the bearing the array's estimator reports.

        For unambiguous (planar) arrays this is simply the local azimuth in
        [0, 360).  For linear arrays the estimator reports broadside angles in
        [-90, 90] and cannot distinguish front from back, so the bearing is
        folded accordingly (footnote 1 of the paper).
        """
        local = (float(global_bearing_deg) - self.orientation_deg) % 360.0
        if not self.array.ambiguous:
            return local
        # Linear array along local x: broadside angle theta satisfies
        # sin(theta) = cos(local azimuth); fold the back half-plane onto the front.
        folded = local if local <= 180.0 else 360.0 - local
        return 90.0 - folded


def fractional_delay(waveform: np.ndarray, delay_samples: float) -> np.ndarray:
    """Delay a waveform by a (possibly fractional) number of samples.

    Uses an FFT-domain linear-phase filter, which is exact for band-limited
    signals and avoids the amplitude ripple of naive interpolation.  Negative
    delays advance the waveform.
    """
    waveform = np.asarray(waveform, dtype=complex)
    if waveform.ndim != 1:
        raise ValueError("waveform must be 1-D")
    if abs(delay_samples) < 1e-12:
        return waveform.copy()
    n = waveform.size
    spectrum = np.fft.fft(waveform)
    frequencies = np.fft.fftfreq(n)
    shifted = spectrum * np.exp(-2j * np.pi * frequencies * delay_samples)
    return np.fft.ifft(shifted)


def phase_random_walk(num_samples: int, step_std_rad: float,
                      rng: RngLike = None) -> np.ndarray:
    """Unit-magnitude random-walk phase process of length ``num_samples``.

    Models per-path phase dynamics (residual CFO, scatterer micro-motion) over
    the duration of one packet.  The walk starts from a uniformly random
    initial phase so different paths are mutually incoherent.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if step_std_rad < 0:
        raise ValueError("step_std_rad must be non-negative")
    generator = ensure_rng(rng)
    initial = generator.uniform(0.0, 2.0 * np.pi)
    steps = generator.normal(0.0, step_std_rad, size=num_samples)
    steps[0] = 0.0
    phase = initial + np.cumsum(steps)
    return np.exp(1j * phase)
