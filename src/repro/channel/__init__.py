"""Multipath propagation channel: paths, ray tracing, dynamics, noise."""

from repro.channel.path import PathKind, PropagationPath
from repro.channel.pathloss import free_space_path_loss_db, log_distance_path_loss_db
from repro.channel.raytracer import RayTracer
from repro.channel.dynamics import DynamicsConfig, EnvironmentDynamics
from repro.channel.noise import awgn, measure_snr_db, noise_power_for_snr
from repro.channel.channel import (
    ArrayChannel,
    ChannelConfig,
    fractional_delay,
    fractional_delay_batch,
    phase_random_walk,
    phase_random_walk_batch,
)

__all__ = [
    "fractional_delay",
    "fractional_delay_batch",
    "phase_random_walk",
    "phase_random_walk_batch",
    "PathKind",
    "PropagationPath",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "RayTracer",
    "DynamicsConfig",
    "EnvironmentDynamics",
    "measure_snr_db",
    "awgn",
    "noise_power_for_snr",
    "ArrayChannel",
    "ChannelConfig",
]
