"""Path-loss models.

The reproduction uses free-space loss for individual propagation paths (each
explicit ray already accounts for reflections and obstructions separately) and
offers a log-distance model with a configurable exponent for the RSS baseline
(RADAR / signalprints), which works with aggregate received power rather than
per-path geometry.
"""

from __future__ import annotations

import math

from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ, SPEED_OF_LIGHT
from repro.utils.validation import require_positive


def free_space_path_loss_db(distance_m: float,
                            frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ) -> float:
    """Free-space path loss (Friis) in dB over ``distance_m``.

    Distances below one wavelength are clamped to one wavelength so that the
    model never reports a gain; the testbed never places clients that close to
    the access point anyway.
    """
    require_positive(distance_m, "distance_m")
    require_positive(frequency_hz, "frequency_hz")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    distance_m = max(distance_m, wavelength)
    return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


def log_distance_path_loss_db(distance_m: float,
                              reference_distance_m: float = 1.0,
                              path_loss_exponent: float = 3.0,
                              frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ) -> float:
    """Log-distance path loss in dB, referenced to free space at ``reference_distance_m``.

    Indoor office environments typically show exponents between 2.5 and 4;
    the default of 3.0 matches the values the RADAR paper reports.
    """
    require_positive(distance_m, "distance_m")
    require_positive(reference_distance_m, "reference_distance_m")
    require_positive(path_loss_exponent, "path_loss_exponent")
    reference_loss = free_space_path_loss_db(reference_distance_m, frequency_hz)
    distance_m = max(distance_m, reference_distance_m)
    return (reference_loss
            + 10.0 * path_loss_exponent * math.log10(distance_m / reference_distance_m))
