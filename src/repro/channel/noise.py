"""Additive white Gaussian noise helpers for complex baseband samples."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power needed to hit ``snr_db`` given ``signal_power`` (linear units)."""
    if signal_power < 0:
        raise ValueError(f"signal power must be non-negative, got {signal_power!r}")
    return signal_power / (10.0 ** (snr_db / 10.0))


def awgn(shape, noise_power: float, rng: RngLike = None) -> np.ndarray:
    """Complex circularly-symmetric Gaussian noise with total power ``noise_power``.

    The returned array has ``E[|n|^2] = noise_power`` per element, split evenly
    between the real and imaginary parts.
    """
    if noise_power < 0:
        raise ValueError(f"noise power must be non-negative, got {noise_power!r}")
    generator = ensure_rng(rng)
    if noise_power == 0:
        return np.zeros(shape, dtype=complex)
    sigma = np.sqrt(noise_power / 2.0)
    real = generator.normal(0.0, sigma, size=shape)
    imag = generator.normal(0.0, sigma, size=shape)
    return real + 1j * imag


def measure_snr_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR (dB) between a clean ``signal`` and its ``noisy`` version."""
    signal = np.asarray(signal)
    noisy = np.asarray(noisy)
    if signal.shape != noisy.shape:
        raise ValueError("signal and noisy arrays must have the same shape")
    noise = noisy - signal
    signal_power = float(np.mean(np.abs(signal) ** 2))
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
