"""Temporal dynamics of the multipath channel.

Figure 6 of the paper shows pseudospectra of the same client recorded 0, 1,
10, 100 and 1000 seconds, one hour, and one day apart: the direct-path peak is
stable, while the weaker reflection peaks wander as people and objects in the
environment move.  Section 3.2 also cites coherence-time measurements of
25 ms (walking receiver) to 125 ms (stationary receiver).

``EnvironmentDynamics`` reproduces both effects on top of a static ray-traced
path set:

* **Fast fading / packet-to-packet jitter** — every path receives a small
  random phase and amplitude perturbation per packet, scaled by how much of a
  coherence time has elapsed since the previous packet.
* **Slow environmental drift** — reflected paths drift in angle and gain with
  a magnitude that grows (logarithmically, saturating) with the elapsed time
  since the reference capture; the direct path's angle never drifts because
  the client and AP do not move, only its amplitude breathes slightly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.path import PathKind, PropagationPath
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class DynamicsConfig:
    """Tunable parameters of the environment dynamics model.

    Defaults are chosen so that the Figure 6 reproduction shows the paper's
    qualitative behaviour: reflection peaks move by a few degrees over
    minutes and by a couple of tens of degrees over a day, while the direct
    path stays within a degree.
    """

    #: Median channel coherence time for a stationary client (seconds); the
    #: Beach et al. measurements the paper cites report ~125 ms.
    coherence_time_s: float = 0.125
    #: Maximum angular drift (degrees) of a reflected path after ~1 day.
    max_reflection_drift_deg: float = 25.0
    #: Maximum gain drift (dB) of a reflected path after ~1 day.
    max_reflection_gain_drift_db: float = 6.0
    #: Amplitude breathing of the direct path (dB) at saturation.
    max_direct_gain_drift_db: float = 1.5
    #: Angular jitter (degrees) of the direct path at saturation.  Small but
    #: non-zero: client oscillators and measurement noise move the peak by a
    #: fraction of a degree even when nothing in the room changes.
    max_direct_drift_deg: float = 0.8
    #: Elapsed time (seconds) at which the slow drift saturates; defaults to a
    #: day, the longest interval Figure 6 examines.
    saturation_time_s: float = 86_400.0
    #: Per-packet fast-fading phase jitter (radians RMS) at full decorrelation.
    fast_phase_jitter_rad: float = 0.5
    #: Per-packet fast-fading amplitude jitter (dB RMS) at full decorrelation.
    fast_gain_jitter_db: float = 1.0

    def __post_init__(self) -> None:
        for name in ("coherence_time_s", "saturation_time_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("max_reflection_drift_deg", "max_reflection_gain_drift_db",
                     "max_direct_gain_drift_db", "max_direct_drift_deg",
                     "fast_phase_jitter_rad", "fast_gain_jitter_db"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class EnvironmentDynamics:
    """Evolve a static path set over elapsed time.

    The evolution is deterministic for a given seed and elapsed time, so an
    experiment can ask for the channel "1000 seconds later" repeatedly and
    obtain the same answer — matching how a figure is regenerated.
    """

    def __init__(self, config: Optional[DynamicsConfig] = None, rng: RngLike = None):
        self.config = config if config is not None else DynamicsConfig()
        self._rng = ensure_rng(rng)
        # One base seed per instance so per-elapsed-time draws are reproducible
        # without sharing state across calls.
        self._base_seed = int(self._rng.integers(0, 2**31 - 1))

    # ------------------------------------------------------------------ public
    def paths_at(self, paths: Sequence[PropagationPath], elapsed_s: float
                 ) -> List[PropagationPath]:
        """Return the path set as it would look ``elapsed_s`` seconds later."""
        if elapsed_s < 0:
            raise ValueError(f"elapsed_s must be non-negative, got {elapsed_s!r}")
        if elapsed_s == 0:
            return list(paths)
        severity = self._drift_severity(elapsed_s)
        rng = np.random.default_rng(self._base_seed ^ _time_key(elapsed_s))
        evolved: List[PropagationPath] = []
        for path in paths:
            if path.kind is PathKind.DIRECT:
                drift_deg = self.config.max_direct_drift_deg
                drift_db = self.config.max_direct_gain_drift_db
            else:
                drift_deg = self.config.max_reflection_drift_deg
                drift_db = self.config.max_reflection_gain_drift_db
            angle_offset = float(rng.normal(0.0, severity * drift_deg / 2.0))
            gain_offset = float(rng.normal(0.0, severity * drift_db / 2.0))
            evolved.append(replace(
                path,
                aoa_deg=path.aoa_deg + angle_offset,
                gain_db=path.gain_db + gain_offset,
            ))
        return evolved

    def decorrelation(self, inter_packet_gap_s: float) -> float:
        """Fraction (0..1) of fast-fading decorrelation between two packets.

        Packets closer together than a coherence time see highly correlated
        channels; packets further apart see essentially independent small-scale
        fading.  Modelled as ``1 - exp(-gap / coherence_time)``.
        """
        if inter_packet_gap_s < 0:
            raise ValueError("inter_packet_gap_s must be non-negative")
        return 1.0 - math.exp(-inter_packet_gap_s / self.config.coherence_time_s)

    def fast_fading_jitter(self, num_paths: int, decorrelation: float,
                           rng: RngLike = None) -> np.ndarray:
        """Per-path complex fading factors for one packet.

        Returns a length-``num_paths`` complex array with unit-mean amplitude
        and phase jitter scaled by ``decorrelation`` (0 = identical channel,
        1 = fully independent small-scale fading).
        """
        if num_paths <= 0:
            raise ValueError("num_paths must be positive")
        if not 0.0 <= decorrelation <= 1.0:
            raise ValueError("decorrelation must be in [0, 1]")
        generator = ensure_rng(rng) if rng is not None else self._rng
        phase = generator.normal(0.0, self.config.fast_phase_jitter_rad * decorrelation,
                                 size=num_paths)
        gain_db = generator.normal(0.0, self.config.fast_gain_jitter_db * decorrelation,
                                   size=num_paths)
        return (10.0 ** (gain_db / 20.0)) * np.exp(1j * phase)

    # ---------------------------------------------------------------- internals
    def _drift_severity(self, elapsed_s: float) -> float:
        """Map elapsed time to a drift severity in [0, 1] (log-scaled, saturating)."""
        if elapsed_s <= 0:
            return 0.0
        numerator = math.log10(1.0 + elapsed_s)
        denominator = math.log10(1.0 + self.config.saturation_time_s)
        return min(numerator / denominator, 1.0)


def _time_key(elapsed_s: float) -> int:
    """Stable integer key for an elapsed time, used to seed per-time draws."""
    # Quantise to milliseconds so float noise does not change the draw.
    return hash(round(float(elapsed_s) * 1000.0)) & 0x7FFFFFFF
