"""Propagation paths.

A path is one copy of the transmitted signal arriving at the access point: the
direct (line-of-sight or through-obstacle) path, or a single-bounce reflection
off a wall or obstacle face.  SecureAngle's signature is precisely the set of
angles these paths arrive from, so the path abstraction carries the angle of
arrival, the geometric length (which sets delay and carrier phase), and the
accumulated gain.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.constants import SPEED_OF_LIGHT
from repro.geometry.point import Point


class PathKind(enum.Enum):
    """How a propagation path reached the access point."""

    DIRECT = "direct"
    REFLECTED = "reflected"


@dataclass(frozen=True)
class PropagationPath:
    """One propagation path from a transmitter to the access point.

    Parameters
    ----------
    aoa_deg:
        Angle of arrival at the access point, degrees, global floor-plan
        convention (0 = +x, counter-clockwise).
    length_m:
        Total geometric path length in metres (sets both delay and carrier
        phase, the quantity Figure 1(a) of the paper illustrates).
    gain_db:
        Total power gain of the path in dB (path loss plus any reflection or
        penetration losses); always negative in practice.
    kind:
        Direct or reflected.
    reflector:
        Optional label of the surface the path bounced off.
    points:
        The geometric polyline of the path (transmitter, optional bounce
        point, access point), useful for plotting and debugging.
    """

    aoa_deg: float
    length_m: float
    gain_db: float
    kind: PathKind = PathKind.DIRECT
    reflector: str = ""
    points: Tuple[Point, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not math.isfinite(self.aoa_deg):
            raise ValueError(f"aoa_deg must be finite, got {self.aoa_deg!r}")
        if not (math.isfinite(self.length_m) and self.length_m > 0):
            raise ValueError(f"length_m must be positive and finite, got {self.length_m!r}")
        if not math.isfinite(self.gain_db):
            raise ValueError(f"gain_db must be finite, got {self.gain_db!r}")

    @property
    def delay_s(self) -> float:
        """Propagation delay in seconds."""
        return self.length_m / SPEED_OF_LIGHT

    @property
    def amplitude(self) -> float:
        """Linear amplitude gain of the path."""
        return 10.0 ** (self.gain_db / 20.0)

    def carrier_phase_rad(self, wavelength_m: float) -> float:
        """Carrier phase accumulated along the path, radians in [0, 2*pi).

        The phase advances by 2*pi every wavelength travelled — the principle
        of operation shown in Figure 1(a) of the paper.
        """
        if wavelength_m <= 0:
            raise ValueError(f"wavelength must be positive, got {wavelength_m!r}")
        return (2.0 * math.pi * self.length_m / wavelength_m) % (2.0 * math.pi)

    @property
    def is_direct(self) -> bool:
        """True for the direct (possibly obstructed) path."""
        return self.kind is PathKind.DIRECT

    def with_gain_offset(self, offset_db: float) -> "PropagationPath":
        """Return a copy of the path with ``offset_db`` added to its gain."""
        return replace(self, gain_db=self.gain_db + offset_db)

    def with_aoa(self, aoa_deg: float) -> "PropagationPath":
        """Return a copy of the path arriving from a different angle."""
        return replace(self, aoa_deg=float(aoa_deg))

    def __repr__(self) -> str:
        label = self.kind.value
        if self.reflector:
            label += f" via {self.reflector}"
        return (f"PropagationPath({label}, aoa={self.aoa_deg:.1f} deg, "
                f"length={self.length_m:.2f} m, gain={self.gain_db:.1f} dB)")


def strongest_path(paths) -> Optional[PropagationPath]:
    """Return the path with the highest gain, or ``None`` for an empty list."""
    paths = list(paths)
    if not paths:
        return None
    return max(paths, key=lambda path: path.gain_db)


def direct_path(paths) -> Optional[PropagationPath]:
    """Return the direct path from a path list, or ``None`` if absent."""
    for path in paths:
        if path.is_direct:
            return path
    return None
