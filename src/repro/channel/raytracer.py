"""Single-bounce image-method ray tracer.

The ray tracer turns a floor plan (walls, obstacles) and a transmitter /
access-point pair into an explicit list of :class:`PropagationPath` objects:

* the direct path, attenuated by any walls or obstacles it penetrates (this is
  how the cement pillar of Figure 4 degrades — without removing — the direct
  path of blocked clients), and
* one single-bounce specular reflection per wall or obstacle face for which a
  valid reflection point exists, attenuated by path loss, the surface's
  reflection loss, and any penetration losses along either leg.

Single-bounce ray tracing is sufficient for the paper's purposes: MUSIC sees a
superposition of plane waves, and the dominant multipath components indoors
are the first-order reflections; higher-order bounces are both much weaker and
qualitatively identical for the signature application.
"""

from __future__ import annotations

from typing import List, Optional

from repro.channel.path import PathKind, PropagationPath
from repro.channel.pathloss import free_space_path_loss_db
from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ
from repro.geometry.point import Point
from repro.geometry.room import Room
from repro.geometry.segment import Segment


class RayTracer:
    """Compute direct and single-bounce propagation paths within a room.

    Parameters
    ----------
    room:
        The floor plan to trace within.
    frequency_hz:
        Carrier frequency (sets the free-space path loss).
    max_reflections:
        Maximum number of reflected paths to return (strongest first).
        ``None`` keeps every valid reflection.
    min_gain_db:
        Reflected paths weaker than this total gain are discarded; keeps the
        path list focused on components MUSIC could actually resolve.
    """

    def __init__(self, room: Room,
                 frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 max_reflections: Optional[int] = None,
                 min_gain_db: float = -120.0):
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz!r}")
        self.room = room
        self.frequency_hz = frequency_hz
        self.max_reflections = max_reflections
        self.min_gain_db = float(min_gain_db)

    # ------------------------------------------------------------------ direct
    def direct_path(self, transmitter: Point, receiver: Point) -> PropagationPath:
        """The direct path, including through-wall/obstacle penetration loss."""
        if transmitter.distance_to(receiver) < 1e-9:
            raise ValueError("transmitter and receiver positions coincide")
        segment = Segment(transmitter, receiver)
        distance = segment.length
        loss_db = free_space_path_loss_db(distance, self.frequency_hz)
        loss_db += self.room.penetration_loss_db(segment)
        return PropagationPath(
            aoa_deg=receiver.bearing_to(transmitter),
            length_m=distance,
            gain_db=-loss_db,
            kind=PathKind.DIRECT,
            points=(transmitter, receiver),
        )

    # -------------------------------------------------------------- reflections
    def reflected_paths(self, transmitter: Point, receiver: Point) -> List[PropagationPath]:
        """All valid single-bounce reflections, strongest first."""
        paths: List[PropagationPath] = []
        for surface, reflection_loss_db, label in self._surfaces():
            path = self._reflection_via(surface, reflection_loss_db, label,
                                        transmitter, receiver)
            if path is not None and path.gain_db >= self.min_gain_db:
                paths.append(path)
        paths.sort(key=lambda p: p.gain_db, reverse=True)
        if self.max_reflections is not None:
            paths = paths[: self.max_reflections]
        return paths

    def trace(self, transmitter: Point, receiver: Point) -> List[PropagationPath]:
        """Direct path plus single-bounce reflections, direct path first."""
        paths = [self.direct_path(transmitter, receiver)]
        paths.extend(self.reflected_paths(transmitter, receiver))
        return paths

    # ---------------------------------------------------------------- internals
    def _surfaces(self):
        """Yield (segment, reflection_loss_db, label) for every reflective face."""
        for index, wall in enumerate(self.room.walls):
            label = wall.name or f"wall-{index}"
            yield wall.segment, wall.reflection_loss_db, label
        for obs_index, obstacle in enumerate(self.room.obstacles):
            base = obstacle.name or f"obstacle-{obs_index}"
            for face_index, face in enumerate(obstacle.faces()):
                yield face, obstacle.reflection_loss_db, f"{base}-face-{face_index}"

    def _reflection_via(self, surface: Segment, reflection_loss_db: float, label: str,
                        transmitter: Point, receiver: Point) -> Optional[PropagationPath]:
        bounce = surface.reflection_point(transmitter, receiver)
        if bounce is None:
            return None
        # Degenerate reflections where the bounce point coincides with either
        # endpoint are the endpoints lying on the surface; skip them.
        if bounce.distance_to(transmitter) < 1e-6 or bounce.distance_to(receiver) < 1e-6:
            return None
        leg_in = Segment(transmitter, bounce)
        leg_out = Segment(bounce, receiver)
        total_length = leg_in.length + leg_out.length
        loss_db = free_space_path_loss_db(total_length, self.frequency_hz)
        loss_db += reflection_loss_db
        loss_db += self._penetration_excluding(leg_in, surface)
        loss_db += self._penetration_excluding(leg_out, surface)
        return PropagationPath(
            aoa_deg=receiver.bearing_to(bounce),
            length_m=total_length,
            gain_db=-loss_db,
            kind=PathKind.REFLECTED,
            reflector=label,
            points=(transmitter, bounce, receiver),
        )

    def _penetration_excluding(self, leg: Segment, reflecting_surface: Segment) -> float:
        """Penetration loss along ``leg``, ignoring the surface it reflects off.

        The bounce point lies on the reflecting surface, so a naive blockage
        test would charge that surface's penetration loss to its own
        reflection; this helper excludes it.
        """
        total = 0.0
        for wall in self.room.walls:
            if (wall.segment is reflecting_surface
                    or _same_segment(wall.segment, reflecting_surface)):
                continue
            if wall.segment.intersects(leg):
                total += wall.penetration_loss_db
        for obstacle in self.room.obstacles:
            faces = obstacle.faces()
            reflecting_own_face = any(_same_segment(face, reflecting_surface) for face in faces)
            crossings = 0
            for face in faces:
                if _same_segment(face, reflecting_surface):
                    continue
                if face.intersects(leg):
                    crossings += 1
            if reflecting_own_face:
                # Reflecting off the obstacle's own face: the leg touches the
                # outline at the bounce point but does not pass through the body
                # unless it crosses at least one *other* face.
                if crossings >= 1:
                    total += obstacle.penetration_loss_db
            elif crossings >= 1:
                total += obstacle.penetration_loss_db
        return total


def _same_segment(a: Segment, b: Segment, tolerance: float = 1e-9) -> bool:
    """True when two segments share (possibly swapped) endpoints."""
    forward = (a.start.distance_to(b.start) <= tolerance and a.end.distance_to(b.end) <= tolerance)
    backward = (a.start.distance_to(b.end) <= tolerance
                and a.end.distance_to(b.start) <= tolerance)
    return forward or backward
