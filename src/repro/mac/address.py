"""IEEE 802 MAC addresses.

Link-layer addresses are the identity SecureAngle binds AoA signatures to: the
spoofing-prevention application (Section 2.3.2) records a signature per MAC
address and compares subsequent packets claiming that address against it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address, stored canonically as lower-case colon-separated hex."""

    value: str

    def __post_init__(self) -> None:
        if not isinstance(self.value, str) or not _MAC_RE.match(self.value):
            raise ValueError(f"invalid MAC address: {self.value!r}")
        object.__setattr__(self, "value", self.value.lower().replace("-", ":"))

    @staticmethod
    def from_bytes(octets: bytes) -> "MacAddress":
        """Build an address from six raw octets."""
        if len(octets) != 6:
            raise ValueError(f"a MAC address has 6 octets, got {len(octets)}")
        return MacAddress(":".join(f"{octet:02x}" for octet in octets))

    @staticmethod
    def random(rng: RngLike = None, locally_administered: bool = True) -> "MacAddress":
        """Generate a random unicast MAC address."""
        generator = ensure_rng(rng)
        octets = bytearray(int(b) for b in generator.integers(0, 256, size=6))
        octets[0] &= 0xFE  # clear the multicast bit
        if locally_administered:
            octets[0] |= 0x02
        else:
            octets[0] &= 0xFD
        return MacAddress.from_bytes(bytes(octets))

    @staticmethod
    def broadcast() -> "MacAddress":
        """The broadcast address ff:ff:ff:ff:ff:ff."""
        return MacAddress("ff:ff:ff:ff:ff:ff")

    def to_bytes(self) -> bytes:
        """Return the six raw octets."""
        return bytes(int(part, 16) for part in self.value.split(":"))

    def to_bits(self) -> np.ndarray:
        """Return the address as a 48-element 0/1 array (MSB first per octet)."""
        bits = []
        for octet in self.to_bytes():
            bits.extend((octet >> shift) & 1 for shift in range(7, -1, -1))
        return np.array(bits, dtype=int)

    @property
    def is_multicast(self) -> bool:
        """True when the group bit is set."""
        return bool(self.to_bytes()[0] & 0x01)

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self.value == "ff:ff:ff:ff:ff:ff"

    @property
    def is_locally_administered(self) -> bool:
        """True when the locally-administered bit is set."""
        return bool(self.to_bytes()[0] & 0x02)

    def __str__(self) -> str:
        return self.value
