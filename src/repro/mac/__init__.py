"""802.11 MAC layer: addresses, frames, and address-based access control."""

from repro.mac.address import MacAddress
from repro.mac.frames import Dot11Frame, FrameType
from repro.mac.acl import AccessControlList

__all__ = [
    "MacAddress",
    "Dot11Frame",
    "FrameType",
    "AccessControlList",
]
