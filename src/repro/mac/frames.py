"""Minimal 802.11 frame model.

SecureAngle does not change the MAC protocol; it only needs to know, per
received packet, the claimed transmitter address (and whether the frame is
data or management) so it can look up and verify the stored AoA signature.
``Dot11Frame`` models exactly that subset of the 802.11 header, plus a payload
and a simple bit serialisation so PHY packets can carry real frame bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.mac.address import MacAddress


class FrameType(enum.Enum):
    """The 802.11 frame classes relevant to the applications."""

    DATA = "data"
    MANAGEMENT = "management"
    CONTROL = "control"


@dataclass(frozen=True)
class Dot11Frame:
    """A simplified 802.11 frame.

    Parameters
    ----------
    source / destination:
        Transmitter and receiver MAC addresses (address 2 and address 1 of a
        data frame heading to the distribution system).
    frame_type:
        Data, management, or control.
    sequence_number:
        12-bit MAC sequence number.
    payload:
        Raw payload bytes (contents are irrelevant to SecureAngle).
    """

    source: MacAddress
    destination: MacAddress
    frame_type: FrameType = FrameType.DATA
    sequence_number: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not isinstance(self.source, MacAddress) or not isinstance(self.destination, MacAddress):
            raise TypeError("source and destination must be MacAddress instances")
        if not isinstance(self.frame_type, FrameType):
            raise TypeError("frame_type must be a FrameType")
        if not 0 <= self.sequence_number < 4096:
            raise ValueError(f"sequence_number must fit in 12 bits, got {self.sequence_number}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")
        object.__setattr__(self, "payload", bytes(self.payload))

    def to_bytes(self) -> bytes:
        """Serialise the frame header and payload to bytes.

        Layout: 1 byte frame type, 2 bytes sequence number, 6 bytes destination,
        6 bytes source, 2 bytes payload length, payload.  This is not the exact
        802.11 wire format (which the experiments do not need) but is a stable,
        invertible encoding carrying the same identity information.
        """
        type_code = {FrameType.DATA: 0, FrameType.MANAGEMENT: 1,
                     FrameType.CONTROL: 2}[self.frame_type]
        header = bytes([type_code])
        header += self.sequence_number.to_bytes(2, "big")
        header += self.destination.to_bytes()
        header += self.source.to_bytes()
        header += len(self.payload).to_bytes(2, "big")
        return header + self.payload

    @staticmethod
    def from_bytes(blob: bytes) -> "Dot11Frame":
        """Parse a frame serialised by :meth:`to_bytes`."""
        if len(blob) < 17:
            raise ValueError(f"frame too short: {len(blob)} bytes")
        type_code = blob[0]
        frame_type = {0: FrameType.DATA, 1: FrameType.MANAGEMENT,
                      2: FrameType.CONTROL}.get(type_code)
        if frame_type is None:
            raise ValueError(f"unknown frame type code {type_code}")
        sequence = int.from_bytes(blob[1:3], "big")
        destination = MacAddress.from_bytes(blob[3:9])
        source = MacAddress.from_bytes(blob[9:15])
        payload_length = int.from_bytes(blob[15:17], "big")
        payload = blob[17:17 + payload_length]
        if len(payload) != payload_length:
            raise ValueError("frame payload truncated")
        return Dot11Frame(source=source, destination=destination, frame_type=frame_type,
                          sequence_number=sequence, payload=payload)

    def to_bits(self) -> np.ndarray:
        """Return the serialised frame as a 0/1 bit array (MSB first)."""
        data = self.to_bytes()
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        return bits.astype(int)

    def spoofed_by(self, claimed_source: MacAddress) -> "Dot11Frame":
        """Return a copy of the frame whose source address is ``claimed_source``.

        This is what a spoofing attacker transmits: the legitimate client's
        address on the attacker's own packets.
        """
        return replace(self, source=claimed_source)

    def with_sequence(self, sequence_number: int) -> "Dot11Frame":
        """Return a copy with an updated sequence number."""
        return replace(self, sequence_number=sequence_number)
