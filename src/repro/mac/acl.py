"""Address-based access control lists.

The paper points out that when the only wireless security is an address-based
ACL, link-layer spoofing grants immediate access — which is exactly the attack
the SecureAngle signature check defeats.  The ACL model is therefore kept
deliberately simple (allow-list / deny-list of MAC addresses); it represents
the *existing* security mechanism SecureAngle operates alongside.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.mac.address import MacAddress


class AccessControlList:
    """A MAC-address allow/deny list.

    In allow-list mode only listed addresses are admitted; in deny-list mode
    everything except listed addresses is admitted.
    """

    def __init__(self, allowed: Iterable[MacAddress] = (), denied: Iterable[MacAddress] = (),
                 default_allow: bool = False):
        self._allowed: Set[MacAddress] = set(allowed)
        self._denied: Set[MacAddress] = set(denied)
        self.default_allow = bool(default_allow)
        overlap = self._allowed & self._denied
        if overlap:
            raise ValueError(f"addresses cannot be both allowed and denied: {overlap}")

    def allow(self, address: MacAddress) -> None:
        """Add ``address`` to the allow list (removing it from the deny list)."""
        self._denied.discard(address)
        self._allowed.add(address)

    def deny(self, address: MacAddress) -> None:
        """Add ``address`` to the deny list (removing it from the allow list)."""
        self._allowed.discard(address)
        self._denied.add(address)

    def remove(self, address: MacAddress) -> None:
        """Remove ``address`` from both lists."""
        self._allowed.discard(address)
        self._denied.discard(address)

    def permits(self, address: MacAddress) -> bool:
        """True when a frame from ``address`` passes the ACL."""
        if address in self._denied:
            return False
        if address in self._allowed:
            return True
        return self.default_allow

    @property
    def allowed_addresses(self) -> Set[MacAddress]:
        """Copy of the allow list."""
        return set(self._allowed)

    @property
    def denied_addresses(self) -> Set[MacAddress]:
        """Copy of the deny list."""
        return set(self._denied)

    def __len__(self) -> int:
        return len(self._allowed) + len(self._denied)

    def __contains__(self, address: MacAddress) -> bool:
        return address in self._allowed or address in self._denied
