"""The Capon (minimum-variance distortionless response, MVDR) beamformer.

Better resolution than Bartlett without needing to know the number of sources:
``P(theta) = 1 / (a^H R^{-1} a)``.  Included as a second baseline for the
estimator-comparison ablation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aoa.covariance import diagonal_loading
from repro.aoa.spectrum import Pseudospectrum
from repro.arrays.geometry import AntennaArray
from repro.kernels.backend import get_backend


def capon_pseudospectrum(correlation: np.ndarray, array: AntennaArray,
                         angles_deg: Optional[Sequence[float]] = None,
                         loading_factor: float = 1e-3) -> Pseudospectrum:
    """Compute the Capon/MVDR pseudospectrum.

    ``loading_factor`` controls the diagonal loading applied before inversion;
    short or nearly noiseless captures give ill-conditioned correlation
    matrices that need it.
    """
    correlation = np.asarray(correlation, dtype=complex)
    if correlation.ndim != 2 or correlation.shape != (array.num_elements, array.num_elements):
        raise ValueError(
            f"correlation must be ({array.num_elements}, {array.num_elements}), "
            f"got {correlation.shape}")
    if angles_deg is None:
        angles_deg = array.angle_grid()
    angles = np.asarray(angles_deg, dtype=float)
    loaded = diagonal_loading(correlation, loading_factor)
    # Routed through the Backend seam so REPRO_BACKEND covers the scalar
    # path too; the numpy backend is literally np.linalg.inv (bit-identical).
    inverse = get_backend().inv(loaded)
    steering = array.steering_matrix(angles)
    denominator = np.real(np.einsum("na,nm,ma->a", steering.conj(), inverse, steering))
    values = 1.0 / np.maximum(denominator, 1e-15)
    return Pseudospectrum(angles, values, metadata={"estimator": "capon"})
