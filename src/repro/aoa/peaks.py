"""Peak finding on pseudospectra.

A small, dependency-light peak finder: local maxima above a relative height
threshold, separated by a minimum distance, optionally treating the grid as
circular (for full-360-degree pseudospectra).  Returned indices are sorted by
descending peak value so callers can take "the strongest peak" (the paper's
bearing estimate) or "all significant peaks" (the multipath signature).

Candidate detection is vectorised with numpy and shared between the scalar
:func:`find_peaks` and the batched :func:`find_peaks_batch`, so the per-packet
and per-batch paths cannot diverge.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _candidate_masks(values: np.ndarray, wrap: bool,
                     min_relative_height: float) -> np.ndarray:
    """Boolean (B, A) mask of local maxima above the per-row threshold.

    ``values`` is a (B, A) stack of pseudospectrum rows.  A sample is a
    candidate when it is at least as large as its left neighbour, strictly
    larger than its right neighbour, and at least ``min_relative_height``
    times the row maximum.  On a non-wrapping grid the two end samples count
    as peaks when they dominate their single neighbour, which keeps bearings
    near +/-90 degrees on linear arrays from being silently dropped.
    """
    maxima = np.max(values, axis=-1)
    thresholds = maxima * min_relative_height
    left = np.roll(values, 1, axis=-1)
    right = np.roll(values, -1, axis=-1)
    mask = (values >= thresholds[:, None]) & (values >= left) & (values > right)
    if not wrap:
        mask[:, 0] = (values[:, 0] >= thresholds) & (values[:, 0] > values[:, 1])
        mask[:, -1] = (values[:, -1] >= thresholds) & (values[:, -1] > values[:, -2])
    # Rows whose maximum is not positive have no meaningful peaks.
    mask[maxima <= 0, :] = False
    return mask


def _select_separated(values: np.ndarray, candidates: np.ndarray, wrap: bool,
                      min_separation: int) -> List[int]:
    """Enforce minimum separation on candidate indices, keeping stronger peaks.

    ``values`` is one row; ``candidates`` its candidate indices in ascending
    order.  The stable descending-value sort keeps the original tie-breaking
    (lower index wins on equal values).
    """
    if candidates.size == 0:
        return []
    n = values.size
    order = np.argsort(-values[candidates], kind="stable")
    selected: List[int] = []
    for index in candidates[order]:
        index = int(index)
        too_close = False
        for kept in selected:
            distance = abs(index - kept)
            if wrap:
                distance = min(distance, n - distance)
            if distance < min_separation:
                too_close = True
                break
        if not too_close:
            selected.append(index)
    return selected


def _validate(min_relative_height: float, min_separation: int) -> None:
    if not 0.0 <= min_relative_height <= 1.0:
        raise ValueError("min_relative_height must be in [0, 1]")
    if min_separation < 1:
        raise ValueError("min_separation must be at least 1")


def find_peaks(values: np.ndarray, wrap: bool = False,
               min_relative_height: float = 0.05,
               min_separation: int = 3) -> List[int]:
    """Indices of significant local maxima in ``values``, strongest first.

    Parameters
    ----------
    values:
        1-D non-negative array.
    wrap:
        Treat the array as circular (last sample adjacent to the first).
    min_relative_height:
        Peaks smaller than this fraction of the global maximum are ignored.
    min_separation:
        Minimum index separation between reported peaks; of two close peaks,
        only the stronger is kept.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 3:
        return []
    _validate(min_relative_height, min_separation)
    mask = _candidate_masks(values[None, :], wrap, min_relative_height)[0]
    return _select_separated(values, np.nonzero(mask)[0], wrap, min_separation)


def find_peaks_batch(values: np.ndarray, wrap: bool = False,
                     min_relative_height: float = 0.05,
                     min_separation: int = 3) -> List[List[int]]:
    """Batched :func:`find_peaks` over a (B, A) stack of pseudospectrum rows.

    Candidate detection runs vectorised over the whole stack; only the
    separation enforcement (which operates on the handful of candidates per
    row) remains per-row.  Each returned list matches what :func:`find_peaks`
    returns for the corresponding row.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"values must be a (batch, num_angles) array, got {values.shape}")
    if values.shape[1] < 3:
        return [[] for _ in range(values.shape[0])]
    _validate(min_relative_height, min_separation)
    masks = _candidate_masks(values, wrap, min_relative_height)
    return [
        _select_separated(row, np.nonzero(mask)[0], wrap, min_separation)
        for row, mask in zip(values, masks)
    ]
