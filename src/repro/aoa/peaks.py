"""Peak finding on pseudospectra.

A small, dependency-light peak finder: local maxima above a relative height
threshold, separated by a minimum distance, optionally treating the grid as
circular (for full-360-degree pseudospectra).  Returned indices are sorted by
descending peak value so callers can take "the strongest peak" (the paper's
bearing estimate) or "all significant peaks" (the multipath signature).
"""

from __future__ import annotations

from typing import List

import numpy as np


def find_peaks(values: np.ndarray, wrap: bool = False,
               min_relative_height: float = 0.05,
               min_separation: int = 3) -> List[int]:
    """Indices of significant local maxima in ``values``, strongest first.

    Parameters
    ----------
    values:
        1-D non-negative array.
    wrap:
        Treat the array as circular (last sample adjacent to the first).
    min_relative_height:
        Peaks smaller than this fraction of the global maximum are ignored.
    min_separation:
        Minimum index separation between reported peaks; of two close peaks,
        only the stronger is kept.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 3:
        return []
    if not 0.0 <= min_relative_height <= 1.0:
        raise ValueError("min_relative_height must be in [0, 1]")
    if min_separation < 1:
        raise ValueError("min_separation must be at least 1")
    global_max = float(np.max(values))
    if global_max <= 0:
        return []
    threshold = global_max * min_relative_height

    candidates: List[int] = []
    n = values.size
    for index in range(n):
        if not wrap and (index == 0 or index == n - 1):
            # Ends of a non-wrapping grid count as peaks if they dominate
            # their single neighbour; this keeps bearings near +/-90 degrees
            # on linear arrays from being silently dropped.
            neighbour = values[1] if index == 0 else values[n - 2]
            if values[index] >= threshold and values[index] > neighbour:
                candidates.append(index)
            continue
        left = values[(index - 1) % n]
        right = values[(index + 1) % n]
        if values[index] >= threshold and values[index] >= left and values[index] > right:
            candidates.append(index)

    # Enforce minimum separation, keeping stronger peaks first.
    candidates.sort(key=lambda i: values[i], reverse=True)
    selected: List[int] = []
    for index in candidates:
        too_close = False
        for kept in selected:
            distance = abs(index - kept)
            if wrap:
                distance = min(distance, n - distance)
            if distance < min_separation:
                too_close = True
                break
        if not too_close:
            selected.append(index)
    return selected
