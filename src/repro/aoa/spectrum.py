"""Pseudospectra.

The output of the AoA estimators is a *pseudospectrum*: a continuous plot of
likelihood versus angle (Section 2.1).  SecureAngle uses the pseudospectrum
directly as the client signature, so the container offers both estimation
conveniences (peak extraction, the bearing of the maximum) and the
normalisation / resampling operations the signature layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.aoa.peaks import find_peaks
from repro.utils.validation import require_positive

#: Default peak-search parameters shared by the scalar
#: :meth:`Pseudospectrum.peak_bearings` and the batched engine / signature
#: builder, so tuning them cannot silently diverge the two paths.
PEAK_MIN_RELATIVE_HEIGHT = 0.05
PEAK_MIN_SEPARATION_DEG = 5.0


def grid_peak_params(angles_deg: np.ndarray,
                     min_separation_deg: float = PEAK_MIN_SEPARATION_DEG):
    """Wrap flag and minimum index separation for a uniform angle grid.

    Mirrors :attr:`Pseudospectrum.wraps_around` and
    :meth:`Pseudospectrum._separation_samples` for callers (the batched
    engine) that search peaks on raw value stacks before building spectra.
    """
    require_positive(min_separation_deg, "min_separation_deg")
    step = float(angles_deg[1] - angles_deg[0])
    wrap = (angles_deg[-1] - angles_deg[0]) + step >= 360.0 - 1e-9
    return wrap, max(int(round(min_separation_deg / step)), 1)


@dataclass(frozen=True)
class Pseudospectrum:
    """A sampled likelihood-versus-angle curve.

    Parameters
    ----------
    angles_deg:
        Monotonically increasing evaluation grid (degrees).
    values:
        Non-negative likelihood values on the grid (linear scale, not dB).
    metadata:
        Free-form annotations (estimator name, number of sources, etc.).
    """

    angles_deg: np.ndarray
    values: np.ndarray
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        angles = np.asarray(self.angles_deg, dtype=float).ravel()
        values = np.asarray(self.values, dtype=float).ravel()
        if angles.size != values.size:
            raise ValueError("angles and values must have the same length")
        if angles.size < 2:
            raise ValueError("a pseudospectrum needs at least two grid points")
        if np.any(np.diff(angles) <= 0):
            raise ValueError("the angle grid must be strictly increasing")
        if np.any(values < 0) or not np.all(np.isfinite(values)):
            raise ValueError("pseudospectrum values must be finite and non-negative")
        object.__setattr__(self, "angles_deg", angles)
        object.__setattr__(self, "values", values)

    # ----------------------------------------------------------------- queries
    @property
    def wraps_around(self) -> bool:
        """True when the grid spans a full circle (circular-array convention)."""
        span = self.angles_deg[-1] - self.angles_deg[0]
        step = self.angles_deg[1] - self.angles_deg[0]
        return span + step >= 360.0 - 1e-9

    def peak_bearing(self) -> float:
        """Angle (degrees) of the global maximum — the paper's bearing estimate."""
        return float(self.angles_deg[int(np.argmax(self.values))])

    def peak_bearings(self, max_peaks: Optional[int] = None,
                      min_relative_height: float = PEAK_MIN_RELATIVE_HEIGHT,
                      min_separation_deg: float = PEAK_MIN_SEPARATION_DEG) -> List[float]:
        """Angles of local maxima, strongest first."""
        indices = find_peaks(self.values, wrap=self.wraps_around,
                             min_relative_height=min_relative_height,
                             min_separation=self._separation_samples(min_separation_deg))
        bearings = [float(self.angles_deg[i]) for i in indices]
        if max_peaks is not None:
            bearings = bearings[:max_peaks]
        return bearings

    def value_at(self, angle_deg: float) -> float:
        """Linear interpolation of the pseudospectrum at an arbitrary angle."""
        if self.wraps_around:
            angle_deg = (angle_deg - self.angles_deg[0]) % 360.0 + self.angles_deg[0]
        return float(np.interp(angle_deg, self.angles_deg, self.values))

    def to_db(self, floor_db: float = -60.0) -> np.ndarray:
        """Values in dB relative to the maximum, floored at ``floor_db``.

        This is the normalisation the paper's Figures 6 and 7 plot (peak at
        0 dB).
        """
        peak = float(np.max(self.values))
        if peak <= 0:
            return np.full_like(self.values, floor_db)
        db = 10.0 * np.log10(np.maximum(self.values / peak, 10.0 ** (floor_db / 10.0)))
        return db

    # ------------------------------------------------------------- transforms
    def normalized(self) -> "Pseudospectrum":
        """Return a copy scaled so the maximum value is 1."""
        peak = float(np.max(self.values))
        if peak <= 0:
            raise ValueError("cannot normalise an all-zero pseudospectrum")
        return Pseudospectrum(self.angles_deg.copy(), self.values / peak, dict(self.metadata))

    def resampled(self, angles_deg: np.ndarray) -> "Pseudospectrum":
        """Return a copy interpolated onto a different angle grid."""
        angles_deg = np.asarray(angles_deg, dtype=float).ravel()
        query = angles_deg
        if self.wraps_around:
            query = (angles_deg - self.angles_deg[0]) % 360.0 + self.angles_deg[0]
        values = np.interp(query, self.angles_deg, self.values)
        return Pseudospectrum(angles_deg.copy(), values, dict(self.metadata))

    def with_metadata(self, **entries: Any) -> "Pseudospectrum":
        """Return a copy with extra metadata merged in."""
        merged = dict(self.metadata)
        merged.update(entries)
        return Pseudospectrum(self.angles_deg.copy(), self.values.copy(), merged)

    @classmethod
    def from_validated(cls, angles_deg: np.ndarray, values: np.ndarray,
                       metadata: Dict[str, Any]) -> "Pseudospectrum":
        """Construct without re-running the ``__post_init__`` validation.

        For the batched estimation engine, which evaluates many spectra on the
        same already-validated (cached) angle grid and produces values that are
        finite and non-negative by construction.  The caller guarantees the
        invariants ``__post_init__`` normally checks: 1-D float arrays of equal
        length >= 2, strictly increasing angles, finite non-negative values.
        """
        spectrum = object.__new__(cls)
        object.__setattr__(spectrum, "angles_deg", angles_deg)
        object.__setattr__(spectrum, "values", values)
        object.__setattr__(spectrum, "metadata", metadata)
        return spectrum

    # -------------------------------------------------------------- internals
    def _separation_samples(self, separation_deg: float) -> int:
        require_positive(separation_deg, "min_separation_deg")
        step = float(self.angles_deg[1] - self.angles_deg[0])
        return max(int(round(separation_deg / step)), 1)

    def __len__(self) -> int:
        return int(self.angles_deg.size)

    def __repr__(self) -> str:
        return (f"Pseudospectrum({self.angles_deg[0]:.0f}..{self.angles_deg[-1]:.0f} deg, "
                f"{len(self)} points, peak at {self.peak_bearing():.1f} deg)")
