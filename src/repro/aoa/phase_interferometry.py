"""The paper's two-antenna phase method (Equation 1).

With two antennas spaced half a wavelength apart and a single propagation
path, the bearing follows directly from the phase difference between the
antennas:

    theta = arcsin((angle(x2) - angle(x1)) / pi)

The paper presents this as the pedagogical starting point and immediately
notes that it breaks down under multipath, motivating MUSIC.  It is
implemented both for the estimator-comparison ablation and because it is the
natural unit test of the whole signal chain (channel, hardware, calibration):
in a multipath-free simulation it must recover the geometric bearing almost
exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import require_positive


def phase_difference(samples: np.ndarray) -> float:
    """Mean phase difference (radians, in (-pi, pi]) between two antennas' samples.

    Averaging the per-sample correlation before taking the angle — rather than
    averaging per-sample angles — keeps the estimate robust to noise, which is
    the same reason the full pipeline averages the correlation matrix over a
    whole packet.
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 2 or samples.shape[0] != 2:
        raise ValueError(f"expected samples of shape (2, T), got {samples.shape}")
    correlation = np.mean(samples[1] * np.conj(samples[0]))
    if np.abs(correlation) < 1e-30:
        raise ValueError("samples carry no correlated signal between the two antennas")
    return float(np.angle(correlation))


def two_antenna_bearing(samples: np.ndarray, spacing_m: float, wavelength_m: float) -> float:
    """Equation 1 of the paper: bearing (degrees, broadside convention).

    Parameters
    ----------
    samples:
        (2, T) calibrated samples from two antennas.
    spacing_m:
        Antenna separation in metres.
    wavelength_m:
        Carrier wavelength in metres.

    Notes
    -----
    The paper states the half-wavelength special case (the denominator is then
    exactly pi); the general form divides by ``2*pi*d/lambda``.  With the
    steering convention used throughout this library (element 1 further along
    the arrival direction sees the wave *later*), the bearing is the arcsine of
    the *negative* normalised phase difference.
    """
    require_positive(spacing_m, "spacing_m")
    require_positive(wavelength_m, "wavelength_m")
    delta = phase_difference(samples)
    normaliser = 2.0 * math.pi * spacing_m / wavelength_m
    sin_theta = -delta / normaliser
    if sin_theta > 1.0 or sin_theta < -1.0:
        # Phase wrapping past the unambiguous range: clamp to the end of the
        # range rather than failing, mirroring what a real implementation does.
        sin_theta = max(min(sin_theta, 1.0), -1.0)
    return math.degrees(math.asin(sin_theta))
