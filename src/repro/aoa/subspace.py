"""Incremental subspace tracking for the streaming path.

Packet-rate AoA in a deployment processes one capture at a time, so the
batched engine degenerates to batch-of-one calls whose cost is dominated by
per-packet fixed work: the full-packet correlation accumulation and a fresh
eigendecomposition for every packet.  For a (near-)stationary client both are
wasteful — consecutive packets see almost the same spatial correlation, so
the signal subspace moves slowly and can be *tracked* instead of recomputed.

:class:`SubspaceTracker` implements a PAST-style tracker:

* Each packet's correlation estimate is folded into an exponentially
  weighted running matrix ``R <- beta R + (1 - beta) R_packet``.  Because
  the running average integrates snapshots *across* packets, the per-packet
  estimate can decimate the capture in time (``max_correlation_samples``)
  without giving up averaging depth — that is where most of the per-packet
  flops go.
* The signal-subspace basis is refreshed by one power-iteration sweep
  (``W <- orth(R W)``, modified Gram-Schmidt) instead of a full ``eigh``.
  For the small signal ranks MUSIC uses (1-3 vectors) this is a handful of
  level-1/2 BLAS operations per packet.
* A warm-up phase (``warmup_packets``) and a periodic resync
  (``resync_interval``) run the exact eigendecomposition to (re)estimate the
  model order and re-anchor the basis, bounding drift under mobility.  A
  degenerate Gram-Schmidt sweep (vanishing column norm) forces a resync.

The tracked noise-subspace power uses the same signal-complement identity as
the batched engine (``||a||^2 - sum_signal |w^H a|^2``), the same peak
extraction, and the same pseudospectrum container, so downstream signature
code cannot tell the paths apart.  Accuracy against exact per-packet MUSIC
is pinned by ``tests/test_subspace_tracker.py``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aoa.estimator import AoAEstimate, EstimatorConfig
from repro.aoa.peaks import find_peaks_batch
from repro.aoa.source_count import estimate_num_sources
from repro.aoa.spectrum import (
    PEAK_MIN_RELATIVE_HEIGHT,
    Pseudospectrum,
    grid_peak_params,
)
from repro.arrays.geometry import AntennaArray, UniformLinearArray
from repro.kernels.backend import complex_dtype, get_backend

#: Default forgetting factor of the running correlation (survives ~10 packets).
DEFAULT_FORGETTING = 0.9

#: Packets processed with an exact eigendecomposition before tracking starts.
DEFAULT_WARMUP_PACKETS = 5

#: Interval (in packets) between exact-eigendecomposition resyncs.
DEFAULT_RESYNC_INTERVAL = 50

#: Per-packet cap on correlation snapshots; longer captures are decimated in
#: time (the running average restores the averaging depth across packets).
DEFAULT_MAX_CORRELATION_SAMPLES = 1024


class SubspaceTracker:
    """Track the MUSIC signal subspace incrementally across packets.

    One tracker serves one stream (one array, one configuration); captures
    must be fed in arrival order.  ``update`` consumes one calibrated sample
    matrix and returns the same :class:`AoAEstimate` the batched engine
    produces, with the eigendecomposition replaced by the tracked basis.
    """

    def __init__(self, array: AntennaArray, config: Optional[EstimatorConfig] = None,
                 forgetting: float = DEFAULT_FORGETTING,
                 warmup_packets: int = DEFAULT_WARMUP_PACKETS,
                 resync_interval: int = DEFAULT_RESYNC_INTERVAL,
                 max_correlation_samples: int = DEFAULT_MAX_CORRELATION_SAMPLES):
        config = config if config is not None else EstimatorConfig(
            subspace_tracking=True)
        if not config.subspace_tracking:
            raise ValueError("SubspaceTracker requires subspace_tracking=True")
        if not 0.0 < forgetting < 1.0:
            raise ValueError("forgetting must be in (0, 1)")
        if warmup_packets < 1:
            raise ValueError("warmup_packets must be positive")
        if resync_interval < 1:
            raise ValueError("resync_interval must be positive")
        if max_correlation_samples < 1:
            raise ValueError("max_correlation_samples must be positive")
        self.array = array
        self.config = config
        self.forgetting = float(forgetting)
        self.warmup_packets = int(warmup_packets)
        self.resync_interval = int(resync_interval)
        self.max_correlation_samples = int(max_correlation_samples)
        self._backend = get_backend(config.backend)
        self._cdtype = complex_dtype(config.precision)
        self._is_ula = isinstance(array, UniformLinearArray)
        # Scan-grid cache (the grid never changes for one tracker).
        n = array.num_elements
        self._grid = array.angle_grid(config.resolution_deg)
        steering = array.steering_matrix(resolution_deg=config.resolution_deg)
        self._steering = steering.astype(self._cdtype, copy=False)
        self._steering_total = np.sum(np.abs(self._steering) ** 2, axis=0)
        self._wrap, self._min_separation = grid_peak_params(self._grid)
        self._num_elements = n
        self.reset()

    # ------------------------------------------------------------------ state
    def reset(self) -> None:
        """Forget all tracked state (running correlation and basis)."""
        self._corr: Optional[np.ndarray] = None
        self._basis: Optional[np.ndarray] = None
        self._rank = 1
        self._packets_seen = 0

    @property
    def packets_seen(self) -> int:
        """Number of packets folded into the tracker so far."""
        return self._packets_seen

    @property
    def tracking(self) -> bool:
        """True once the warm-up is over and updates use power iteration."""
        return self._packets_seen >= self.warmup_packets

    # ----------------------------------------------------------------- update
    def update(self, samples: np.ndarray,
               correction: Optional[np.ndarray] = None) -> AoAEstimate:
        """Fold one packet into the tracker and estimate its bearing."""
        samples = np.asarray(samples)
        if samples.ndim != 2 or samples.shape[0] != self._num_elements:
            raise ValueError(
                f"samples must be ({self._num_elements}, T), got shape {samples.shape}")
        if samples.dtype != self._cdtype:
            samples = samples.astype(self._cdtype)
        matrix = self._packet_correlation(samples, correction)

        if self._corr is None:
            self._corr = matrix
        else:
            beta = self.forgetting
            self._corr = beta * self._corr + (1.0 - beta) * matrix
        self._packets_seen += 1

        if (self._basis is None
                or self._packets_seen <= self.warmup_packets
                or self._packets_seen % self.resync_interval == 0):
            self._resync(samples.shape[1])
        else:
            # One (N, N) x (N, r) product per packet: the power-iteration
            # step is deliberately host-local — a device round trip per
            # packet would erase the tracker's 1.55x streaming win.
            basis = self._orthonormalized(self._corr @ self._basis)  # repro-lint: disable=seam-bypass
            if basis is None:
                self._resync(samples.shape[1])
            else:
                self._basis = basis

        return self._estimate()

    # ------------------------------------------------------------ correlation
    def _packet_correlation(self, samples: np.ndarray,
                            correction: Optional[np.ndarray]) -> np.ndarray:
        """One packet's conditioned correlation estimate.

        Mirrors the batched engine's conditioning (calibration as ``C R C^H``,
        forward-backward averaging on ULAs, diagonal loading), but decimates
        the capture to at most ``max_correlation_samples`` snapshots first —
        the running average across packets restores the averaging depth.
        """
        num_samples = samples.shape[1]
        if num_samples > self.max_correlation_samples:
            stride = -(-num_samples // self.max_correlation_samples)
            samples = np.ascontiguousarray(samples[:, ::stride])
        matrix = self._backend.correlation_stack([samples])[0]
        if correction is not None:
            factors = correction.astype(matrix.dtype, copy=False)
            matrix = factors[:, None] * matrix * factors.conj()[None, :]
        if self.config.forward_backward and self._is_ula:
            matrix = 0.5 * (matrix + matrix[::-1, ::-1].conj())
        if self.config.loading_factor > 0:
            power = np.trace(matrix).real / matrix.shape[0]
            load = self.config.loading_factor * max(
                power, float(np.finfo(matrix.real.dtype).tiny))
            matrix = matrix + load * np.eye(matrix.shape[0],
                                            dtype=matrix.real.dtype)
        return matrix

    # ---------------------------------------------------------------- subspace
    def _resync(self, num_samples: int) -> None:
        """Exact eigendecomposition: re-estimate model order, re-anchor basis."""
        eigenvalues, eigenvectors = self._backend.eigh(self._corr[None])
        eigenvalues, eigenvectors = eigenvalues[0], eigenvectors[0]
        self._rank = self._model_order(eigenvalues, num_samples)
        # Ascending eigenvalue order: the signal subspace is the trailing rank.
        self._basis = np.ascontiguousarray(
            eigenvectors[:, self._num_elements - self._rank:])

    def _model_order(self, eigenvalues: np.ndarray, num_samples: int) -> int:
        config = self.config
        n = self._num_elements
        if config.num_sources is not None:
            return min(config.num_sources, n - 1)
        max_sources = min(config.max_sources, n - 1)
        if config.source_count_method == "gap":
            largest = eigenvalues[-1]
            if largest <= 0:
                return 1
            count = int(np.sum(eigenvalues > 0.05 * largest))
            return int(np.clip(count, 1, min(max_sources, n - 1)))
        return estimate_num_sources(np.asarray(eigenvalues, dtype=float),
                                    num_samples,
                                    method=config.source_count_method,
                                    max_sources=max_sources)

    def _orthonormalized(self, basis: np.ndarray) -> Optional[np.ndarray]:
        """Modified Gram-Schmidt; None when a column degenerates."""
        basis = np.array(basis, copy=True)
        threshold = float(np.sqrt(np.finfo(basis.real.dtype).eps))
        scale = float(np.linalg.norm(basis[:, -1]))
        if not np.isfinite(scale) or scale <= 0.0:
            return None
        for k in range(basis.shape[1]):
            column = basis[:, k]
            for j in range(k):
                column -= basis[:, j] * np.vdot(basis[:, j], column)
            norm = float(np.linalg.norm(column))
            if not np.isfinite(norm) or norm < threshold * scale:
                return None
            basis[:, k] = column / norm
        return basis

    # ---------------------------------------------------------------- spectrum
    def _estimate(self) -> AoAEstimate:
        """MUSIC spectrum from the tracked basis, batched-engine conventions."""
        power = self._backend.music_projection_power(
            self._basis[None], self._steering)[0]
        denominator = self._steering_total - power
        values = 1.0 / np.maximum(denominator, 1e-15)
        # Spectra stay float64 regardless of the precision mode (same
        # contract as the batched engine's spectrum construction).
        values = values.astype(np.float64, copy=False)  # repro-lint: disable=precision-discipline

        peak_indices = find_peaks_batch(
            values[None], wrap=self._wrap,
            min_relative_height=PEAK_MIN_RELATIVE_HEIGHT,
            min_separation=self._min_separation)[0]
        peaks: List[float] = [float(self._grid[i])
                              for i in peak_indices[:self.config.max_sources]]
        bearing = peaks[0] if peaks else float(self._grid[int(np.argmax(values))])
        metadata = {
            "estimator": "music",
            "num_sources": int(self._rank),
            "num_antennas": self._num_elements,
            "subspace_tracking": True,
            "tracking": bool(self.tracking),
        }
        spectrum = Pseudospectrum.from_validated(self._grid, values, metadata)
        return AoAEstimate(
            pseudospectrum=spectrum,
            bearing_deg=bearing,
            peak_bearings_deg=peaks,
            num_sources=int(self._rank),
            packet_start=None,
        )
