"""The MUSIC algorithm (Schmidt 1986).

MUSIC eigendecomposes the spatial correlation matrix, splits the eigenvectors
into a signal subspace (the strongest ``num_sources`` eigenvectors) and a
noise subspace, and evaluates, for every candidate angle, how nearly the
array's steering vector is orthogonal to the noise subspace:

    P(theta) = 1 / (a(theta)^H  E_n E_n^H  a(theta))

Steering vectors of true arrival directions lie (almost) entirely in the
signal subspace, so the denominator collapses and the pseudospectrum shows a
sharp peak — the paper's Figures 6 and 7 are exactly these curves.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aoa.covariance import signal_noise_subspaces
from repro.aoa.spectrum import Pseudospectrum
from repro.arrays.geometry import AntennaArray


def music_pseudospectrum(correlation: np.ndarray, array: AntennaArray,
                         num_sources: int,
                         angles_deg: Optional[Sequence[float]] = None) -> Pseudospectrum:
    """Compute the MUSIC pseudospectrum over ``angles_deg``.

    Parameters
    ----------
    correlation:
        (N, N) spatial correlation matrix (already calibrated and, if desired,
        forward–backward averaged or spatially smoothed).
    array:
        The antenna array whose manifold to scan.  When the correlation matrix
        is smaller than the array (spatial smoothing), the first matching
        number of elements is used.
    num_sources:
        Dimension of the signal subspace.
    angles_deg:
        Evaluation grid; defaults to the array's natural grid.
    """
    correlation = np.asarray(correlation, dtype=complex)
    if correlation.ndim != 2 or correlation.shape[0] != correlation.shape[1]:
        raise ValueError(f"correlation must be square, got {correlation.shape}")
    scan_array = array
    if correlation.shape[0] != array.num_elements:
        if correlation.shape[0] > array.num_elements:
            raise ValueError(
                f"correlation is {correlation.shape[0]}x{correlation.shape[0]} but the array "
                f"only has {array.num_elements} elements")
        # Spatial smoothing shrinks the effective aperture; scan with a
        # matching sub-aperture of the same geometry.  For uniform linear
        # arrays this must stay a ULA so the broadside angle convention (and
        # its [-90, 90] grid) is preserved.
        from repro.arrays.geometry import UniformLinearArray
        from repro.arrays.subarray import subarray

        if isinstance(array, UniformLinearArray):
            scan_array = UniformLinearArray(
                num_elements=correlation.shape[0], spacing_m=array.spacing,
                carrier_frequency_hz=array.carrier_frequency_hz,
                name=f"{array.name}-smoothed")
        else:
            scan_array = subarray(array, num_elements=correlation.shape[0])
    if angles_deg is None:
        angles_deg = scan_array.angle_grid()
    angles = np.asarray(angles_deg, dtype=float)

    _, _, noise_subspace = signal_noise_subspaces(correlation, num_sources)
    steering = scan_array.steering_matrix(angles)  # (N, A)
    projected = noise_subspace.conj().T @ steering  # (N - K, A)
    denominator = np.sum(np.abs(projected) ** 2, axis=0)
    values = 1.0 / np.maximum(denominator, 1e-15)
    return Pseudospectrum(angles, values, metadata={
        "estimator": "music",
        "num_sources": int(num_sources),
        "num_antennas": int(correlation.shape[0]),
    })
