"""Root-MUSIC for uniform linear arrays.

Instead of scanning a grid, root-MUSIC finds the roots of the noise-subspace
polynomial closest to the unit circle and converts their phases to bearings.
It only applies to uniform linear arrays (the polynomial structure requires a
Vandermonde manifold) and is included both as a higher-precision alternative
for the linear-array experiments and as a cross-check on the grid-based MUSIC
implementation.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.aoa.covariance import signal_noise_subspaces
from repro.arrays.geometry import UniformLinearArray


def root_music_bearings(correlation: np.ndarray, array: UniformLinearArray,
                        num_sources: int) -> List[float]:
    """Bearings (degrees, broadside convention) estimated by root-MUSIC.

    Returns up to ``num_sources`` bearings sorted by how close their roots lie
    to the unit circle (most reliable first).
    """
    if not isinstance(array, UniformLinearArray):
        raise TypeError("root-MUSIC requires a UniformLinearArray")
    correlation = np.asarray(correlation, dtype=complex)
    n = array.num_elements
    if correlation.shape != (n, n):
        raise ValueError(f"correlation must be ({n}, {n}), got {correlation.shape}")
    _, _, noise = signal_noise_subspaces(correlation, num_sources)
    projector = noise @ noise.conj().T  # (N, N)

    # Build the polynomial sum_k c_k z^k where c_k is the sum of the k-th
    # diagonal of the noise projector; its roots pair up inside/outside the
    # unit circle, one pair per candidate direction.
    coefficients = np.zeros(2 * n - 1, dtype=complex)
    for diag in range(-(n - 1), n):
        coefficients[diag + n - 1] = np.trace(projector, offset=diag)
    roots = np.roots(coefficients[::-1])
    # Keep roots inside (or on) the unit circle and sort by closeness to it.
    inside = roots[np.abs(roots) <= 1.0 + 1e-9]
    if inside.size == 0:
        return []
    order = np.argsort(np.abs(np.abs(inside) - 1.0))
    selected = inside[order][:num_sources]

    bearings: List[float] = []
    spacing_ratio = array.spacing / array.wavelength
    for root in selected:
        omega = float(np.angle(root))
        sin_theta = -omega / (2.0 * math.pi * spacing_ratio)
        if abs(sin_theta) > 1.0:
            continue
        bearings.append(math.degrees(math.asin(sin_theta)))
    return bearings
