"""Estimating the number of incident signals.

MUSIC needs to know how many signal eigenvectors to exclude from the noise
subspace.  The classical information-theoretic criteria (AIC and MDL,
Wax & Kailath 1985) pick the model order that best explains the eigenvalue
spread of the correlation matrix; both are implemented here, plus a simple
eigenvalue-gap heuristic that is robust at the very high SNRs the cabled
prototype sees.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _criterion_terms(eigenvalues: np.ndarray, k: int, num_samples: int):
    """Log-likelihood term shared by AIC and MDL for model order ``k``."""
    n = eigenvalues.size
    tail = eigenvalues[k:]
    geometric = float(np.exp(np.mean(np.log(np.maximum(tail, 1e-300)))))
    arithmetic = float(np.mean(tail))
    if arithmetic <= 0:
        return 0.0
    ratio = geometric / arithmetic
    ratio = min(max(ratio, 1e-300), 1.0)
    return -num_samples * (n - k) * math.log(ratio)


def aic_order(eigenvalues: Sequence[float], num_samples: int) -> int:
    """Akaike information criterion estimate of the number of sources."""
    return _information_criterion(eigenvalues, num_samples, penalty="aic")


def mdl_order(eigenvalues: Sequence[float], num_samples: int) -> int:
    """Minimum description length estimate of the number of sources."""
    return _information_criterion(eigenvalues, num_samples, penalty="mdl")


def _information_criterion(eigenvalues: Sequence[float], num_samples: int, penalty: str) -> int:
    eigenvalues = np.sort(np.asarray(eigenvalues, dtype=float))[::-1]
    if eigenvalues.size < 2:
        raise ValueError("need at least two eigenvalues")
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    eigenvalues = np.maximum(eigenvalues, 1e-300)
    n = eigenvalues.size
    best_k, best_score = 0, float("inf")
    for k in range(n):
        likelihood = _criterion_terms(eigenvalues, k, num_samples) if k < n else 0.0
        free_params = k * (2 * n - k)
        if penalty == "aic":
            score = likelihood + free_params
        else:
            score = likelihood + 0.5 * free_params * math.log(num_samples)
        if score < best_score:
            best_score = score
            best_k = k
    return max(best_k, 1) if n > 1 else 1


def eigenvalue_gap_order(eigenvalues: Sequence[float], threshold: float = 0.05) -> int:
    """Count eigenvalues larger than ``threshold`` times the largest one.

    A blunt but effective heuristic at high SNR: signal eigenvalues tower over
    the noise floor, so counting "large" eigenvalues gives the source count.
    """
    eigenvalues = np.sort(np.asarray(eigenvalues, dtype=float))[::-1]
    if eigenvalues.size < 2:
        raise ValueError("need at least two eigenvalues")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    largest = float(eigenvalues[0])
    if largest <= 0:
        return 1
    count = int(np.sum(eigenvalues > threshold * largest))
    return max(min(count, eigenvalues.size - 1), 1)


def estimate_num_sources(eigenvalues: Sequence[float], num_samples: int,
                         method: str = "mdl", max_sources: int = None) -> int:
    """Estimate the number of incident signals from correlation eigenvalues.

    Parameters
    ----------
    eigenvalues:
        Eigenvalues of the (possibly smoothed) correlation matrix.
    num_samples:
        Number of time samples the matrix was averaged over.
    method:
        ``"mdl"`` (default), ``"aic"``, or ``"gap"``.
    max_sources:
        Optional cap; defaults to one less than the number of antennas, the
        largest count MUSIC can handle.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if method == "mdl":
        order = mdl_order(eigenvalues, num_samples)
    elif method == "aic":
        order = aic_order(eigenvalues, num_samples)
    elif method == "gap":
        order = eigenvalue_gap_order(eigenvalues)
    else:
        raise ValueError(f"unknown source-count method {method!r}")
    cap = eigenvalues.size - 1 if max_sources is None else min(max_sources, eigenvalues.size - 1)
    return int(max(1, min(order, cap)))
