"""The AoA estimation facade.

``AoAEstimator`` strings together the steps Section 3 of the paper describes:
take a capture, (optionally) locate the packet with Schmidl–Cox, form the
correlation matrix over the whole packet, condition it, pick the number of
sources, and run the chosen spectral estimator.  The result bundles the
pseudospectrum (the SecureAngle signature input) with the bearing of its
strongest peak (the paper's bearing estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.aoa.bartlett import bartlett_pseudospectrum
from repro.aoa.capon import capon_pseudospectrum
from repro.aoa.covariance import (
    correlation_matrix,
    diagonal_loading,
    forward_backward_average,
    spatial_smoothing,
)
from repro.aoa.music import music_pseudospectrum
from repro.aoa.source_count import estimate_num_sources
from repro.aoa.spectrum import Pseudospectrum
from repro.arrays.geometry import AntennaArray, UniformLinearArray
from repro.calibration.table import CalibrationTable
from repro.hardware.capture import Capture
from repro.phy.schmidl_cox import SchmidlCoxDetector


@dataclass(frozen=True)
class EstimatorConfig:
    """Configuration of the AoA estimation pipeline."""

    #: Spectral estimator: "music", "bartlett", or "capon".
    method: str = "music"
    #: Angle-grid resolution in degrees.
    resolution_deg: float = 1.0
    #: Fixed number of sources; ``None`` estimates it per capture.
    num_sources: Optional[int] = None
    #: Source-count criterion when ``num_sources`` is ``None``: "mdl", "aic", or "gap".
    source_count_method: str = "gap"
    #: Cap on the estimated number of sources.  Overestimating the signal
    #: subspace on a calibrated-but-imperfect array produces spurious
    #: near-endfire peaks, so the default stays conservative.
    max_sources: int = 3
    #: Apply forward-backward averaging to the correlation matrix.  Only valid
    #: (and only applied) for uniform linear arrays, whose manifold satisfies
    #: the conjugate-symmetry the technique relies on.
    forward_backward: bool = True
    #: Spatial-smoothing subarray size (uniform linear arrays only); ``None`` disables.
    smoothing_subarray: Optional[int] = None
    #: Diagonal loading factor applied before eigendecomposition.
    loading_factor: float = 1e-6
    #: Run Schmidl–Cox packet detection and restrict processing to the packet.
    detect_packet: bool = False
    #: Refuse to process captures whose per-chain phase offsets have not been
    #: calibrated out.  The calibration ablation sets this to False.
    require_calibrated: bool = True

    def __post_init__(self) -> None:
        if self.method not in ("music", "bartlett", "capon"):
            raise ValueError(f"unknown estimator method {self.method!r}")
        if self.resolution_deg <= 0:
            raise ValueError("resolution_deg must be positive")
        if self.num_sources is not None and self.num_sources < 1:
            raise ValueError("num_sources must be positive")
        if self.max_sources < 1:
            raise ValueError("max_sources must be positive")
        if self.smoothing_subarray is not None and self.smoothing_subarray < 2:
            raise ValueError("smoothing_subarray must be at least 2")
        if self.loading_factor < 0:
            raise ValueError("loading_factor must be non-negative")


@dataclass(frozen=True)
class AoAEstimate:
    """Result of processing one capture."""

    #: The pseudospectrum (the SecureAngle signature input).
    pseudospectrum: Pseudospectrum
    #: Bearing of the strongest peak, degrees (the paper's bearing estimate).
    bearing_deg: float
    #: All significant peaks, strongest first.
    peak_bearings_deg: List[float] = field(default_factory=list)
    #: Number of sources the estimator assumed.
    num_sources: int = 1
    #: Sample index where the packet was found (if detection ran).
    packet_start: Optional[int] = None


class AoAEstimator:
    """Estimate angle-of-arrival pseudospectra from captures."""

    def __init__(self, array: AntennaArray, config: EstimatorConfig = EstimatorConfig()):
        self.array = array
        self.config = config
        self._detector: Optional[SchmidlCoxDetector] = None

    # ------------------------------------------------------------------ public
    def process(self, capture: Capture,
                calibration: Optional[CalibrationTable] = None) -> AoAEstimate:
        """Process one capture into an :class:`AoAEstimate`.

        A raw capture can be calibrated on the fly by passing ``calibration``;
        otherwise the capture must already be calibrated (unless the
        configuration disables the check, as the calibration ablation does).
        """
        if calibration is not None and not capture.calibrated:
            capture = calibration.apply(capture)
        if self.config.require_calibrated and not capture.calibrated:
            raise ValueError(
                "capture is not calibrated; pass a CalibrationTable or disable "
                "require_calibrated (see the calibration ablation)")
        if capture.num_antennas != self.array.num_elements:
            raise ValueError(
                f"capture has {capture.num_antennas} antennas but the array has "
                f"{self.array.num_elements} elements")

        samples = capture.samples
        packet_start: Optional[int] = None
        if self.config.detect_packet:
            samples, packet_start = self._extract_packet(capture)

        matrix, effective_samples = self._conditioned_correlation(samples)
        num_sources = self._num_sources(matrix, effective_samples)
        spectrum = self._spectrum(matrix, num_sources)
        peaks = spectrum.peak_bearings(max_peaks=self.config.max_sources)
        bearing = peaks[0] if peaks else spectrum.peak_bearing()
        return AoAEstimate(
            pseudospectrum=spectrum,
            bearing_deg=float(bearing),
            peak_bearings_deg=peaks,
            num_sources=num_sources,
            packet_start=packet_start,
        )

    def process_samples(self, samples: np.ndarray) -> AoAEstimate:
        """Convenience wrapper for already-calibrated raw sample matrices."""
        capture = Capture(samples=samples, calibrated=True)
        return self.process(capture)

    # ---------------------------------------------------------------- internals
    def _extract_packet(self, capture: Capture):
        if self._detector is None:
            self._detector = SchmidlCoxDetector(sample_rate_hz=capture.sample_rate_hz)
        detection = self._detector.detect_first(capture.samples[0])
        if detection is None:
            return capture.samples, None
        start = detection.start_index
        return capture.samples[:, start:], start

    def _conditioned_correlation(self, samples: np.ndarray):
        if self.config.smoothing_subarray is not None:
            if not isinstance(self.array, UniformLinearArray):
                raise ValueError("spatial smoothing requires a uniform linear array")
            matrix = spatial_smoothing(samples, self.config.smoothing_subarray)
        else:
            matrix = correlation_matrix(samples)
        if self.config.forward_backward and isinstance(self.array, UniformLinearArray):
            matrix = forward_backward_average(matrix)
        if self.config.loading_factor > 0:
            matrix = diagonal_loading(matrix, self.config.loading_factor)
        return matrix, samples.shape[1]

    def _num_sources(self, matrix: np.ndarray, num_samples: int) -> int:
        max_sources = min(self.config.max_sources, matrix.shape[0] - 1)
        if self.config.num_sources is not None:
            return min(self.config.num_sources, matrix.shape[0] - 1)
        eigenvalues = np.linalg.eigvalsh(matrix)
        return estimate_num_sources(eigenvalues, num_samples,
                                    method=self.config.source_count_method,
                                    max_sources=max_sources)

    def _spectrum(self, matrix: np.ndarray, num_sources: int) -> Pseudospectrum:
        angles = self.array.angle_grid(self.config.resolution_deg)
        if self.config.method == "music":
            return music_pseudospectrum(matrix, self.array, num_sources, angles)
        if self.config.method == "capon":
            if matrix.shape[0] != self.array.num_elements:
                raise ValueError("capon does not support spatially smoothed matrices")
            return capon_pseudospectrum(matrix, self.array, angles)
        if matrix.shape[0] != self.array.num_elements:
            raise ValueError("bartlett does not support spatially smoothed matrices")
        return bartlett_pseudospectrum(matrix, self.array, angles)
