"""The AoA estimation facade.

``AoAEstimator`` strings together the steps Section 3 of the paper describes:
take a capture, (optionally) locate the packet with Schmidl–Cox, form the
correlation matrix over the whole packet, condition it, pick the number of
sources, and run the chosen spectral estimator.  The result bundles the
pseudospectrum (the SecureAngle signature input) with the bearing of its
strongest peak (the paper's bearing estimate).

The actual pipeline lives in :class:`repro.aoa.batch.BatchAoAEstimator`;
``AoAEstimator.process`` is a thin batch-of-one wrapper over it, so the scalar
and batched paths share one implementation and cannot diverge.  One stacked
eigendecomposition serves both source counting and the MUSIC subspace split.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray
from repro.calibration.table import CalibrationTable
from repro.hardware.capture import Capture
from repro.aoa.spectrum import Pseudospectrum
from repro.kernels.backend import validate_precision

#: Grid-scanning estimators the pipeline can run end to end (they produce the
#: pseudospectra SecureAngle signatures are built from).
SPECTRAL_METHODS = ("music", "bartlett", "capon")

#: Search-free estimators that return bearings directly (no pseudospectrum);
#: available through :data:`repro.api.AOA_METHODS` rather than this config.
PARAMETRIC_METHODS = ("root_music", "esprit", "phase_interferometry")

#: Streaming estimators built on incremental subspace tracking.  They produce
#: MUSIC pseudospectra but are selected with the ``subspace_tracking`` flag
#: (``method`` stays "music"); :data:`repro.api.AOA_METHODS` registers them
#: under their own names for discoverability.
STREAMING_METHODS = ("subspace",)


@dataclass(frozen=True)
class EstimatorConfig:
    """Configuration of the AoA estimation pipeline."""

    #: Spectral estimator: "music", "bartlett", or "capon".
    method: str = "music"
    #: Angle-grid resolution in degrees.
    resolution_deg: float = 1.0
    #: Fixed number of sources; ``None`` estimates it per capture.
    num_sources: Optional[int] = None
    #: Source-count criterion when ``num_sources`` is ``None``: "mdl", "aic", or "gap".
    source_count_method: str = "gap"
    #: Cap on the estimated number of sources.  Overestimating the signal
    #: subspace on a calibrated-but-imperfect array produces spurious
    #: near-endfire peaks, so the default stays conservative.
    max_sources: int = 3
    #: Apply forward-backward averaging to the correlation matrix.  Only valid
    #: (and only applied) for uniform linear arrays, whose manifold satisfies
    #: the conjugate-symmetry the technique relies on.
    forward_backward: bool = True
    #: Spatial-smoothing subarray size (uniform linear arrays only); ``None`` disables.
    smoothing_subarray: Optional[int] = None
    #: Diagonal loading factor applied before eigendecomposition.
    loading_factor: float = 1e-6
    #: Run Schmidl–Cox packet detection and restrict processing to the packet.
    detect_packet: bool = False
    #: Refuse to process captures whose per-chain phase offsets have not been
    #: calibrated out.  The calibration ablation sets this to False.
    require_calibrated: bool = True
    #: Compute backend for the estimation kernels ("numpy", "torch", "cupy");
    #: ``None`` resolves the ``REPRO_BACKEND`` environment variable and
    #: defaults to numpy (the bit-exact reference).
    backend: Optional[str] = None
    #: Estimation arithmetic precision: "float64" (bit-exact reference) or
    #: "float32" (complex64 covariance/eigh/steering — faster, approximate).
    precision: str = "float64"
    #: Replace the per-packet eigendecomposition with an incremental
    #: (PAST-style) subspace tracker on the streaming path.  MUSIC only; see
    #: :class:`repro.aoa.subspace.SubspaceTracker` for the warm-up and
    #: re-orthonormalisation policy.
    subspace_tracking: bool = False

    def __post_init__(self) -> None:
        if self.method not in SPECTRAL_METHODS:
            message = f"unknown estimator method {self.method!r}"
            if self.method in PARAMETRIC_METHODS:
                message += (f"; {self.method!r} is search-free (no pseudospectrum) — "
                            "use it via repro.api.AOA_METHODS instead")
            else:
                close = difflib.get_close_matches(
                    str(self.method), SPECTRAL_METHODS + PARAMETRIC_METHODS, n=2, cutoff=0.5)
                if close:
                    message += "; did you mean " + " or ".join(repr(c) for c in close) + "?"
            raise ValueError(message)
        if self.resolution_deg <= 0:
            raise ValueError("resolution_deg must be positive")
        if self.num_sources is not None and self.num_sources < 1:
            raise ValueError("num_sources must be positive")
        if self.max_sources < 1:
            raise ValueError("max_sources must be positive")
        if self.smoothing_subarray is not None and self.smoothing_subarray < 2:
            raise ValueError("smoothing_subarray must be at least 2")
        if self.loading_factor < 0:
            raise ValueError("loading_factor must be non-negative")
        validate_precision(self.precision)
        if self.subspace_tracking:
            if self.method != "music":
                raise ValueError(
                    "subspace_tracking replaces the MUSIC eigendecomposition "
                    "and requires method='music'")
            if self.smoothing_subarray is not None:
                raise ValueError(
                    "subspace_tracking does not support spatial smoothing")


@dataclass(frozen=True)
class AoAEstimate:
    """Result of processing one capture."""

    #: The pseudospectrum (the SecureAngle signature input).
    pseudospectrum: Pseudospectrum
    #: Bearing of the strongest peak, degrees (the paper's bearing estimate).
    bearing_deg: float
    #: All significant peaks, strongest first.
    peak_bearings_deg: List[float] = field(default_factory=list)
    #: Number of sources the estimator assumed.
    num_sources: int = 1
    #: Sample index where the packet was found (if detection ran).
    packet_start: Optional[int] = None


class AoAEstimator:
    """Estimate angle-of-arrival pseudospectra from captures.

    A thin facade over the batched engine: ``process`` runs a batch of one,
    ``process_batch`` forwards whole batches.
    """

    def __init__(self, array: AntennaArray, config: Optional[EstimatorConfig] = None):
        self.array = array
        self.config = config if config is not None else EstimatorConfig()
        # Imported here to break the estimator <-> batch module cycle (the
        # engine needs EstimatorConfig/AoAEstimate from this module).
        from repro.aoa.batch import BatchAoAEstimator

        self._engine = BatchAoAEstimator(array, self.config)

    # ------------------------------------------------------------------ public
    def process(self, capture: Capture,
                calibration: Optional[CalibrationTable] = None) -> AoAEstimate:
        """Process one capture into an :class:`AoAEstimate`.

        A raw capture can be calibrated on the fly by passing ``calibration``;
        otherwise the capture must already be calibrated (unless the
        configuration disables the check, as the calibration ablation does).
        """
        return self._engine.process_batch([capture], calibration=calibration)[0]

    def process_batch(self, captures: Sequence[Capture],
                      calibration: Optional[CalibrationTable] = None) -> List[AoAEstimate]:
        """Process a batch of captures through the batched engine."""
        return self._engine.process_batch(captures, calibration=calibration)

    def process_samples(self, samples: np.ndarray) -> AoAEstimate:
        """Convenience wrapper for already-calibrated raw sample matrices."""
        capture = Capture(samples=samples, calibrated=True)
        return self.process(capture)
