"""ESPRIT for uniform linear arrays.

ESPRIT exploits the shift invariance of a ULA: the signal subspace seen by
elements 0..N-2 and the one seen by elements 1..N-1 are related by a rotation
whose eigenvalues encode the arrival angles.  Like root-MUSIC it is
search-free and serves as an independent cross-check of the MUSIC results on
linear-array experiments.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.aoa.covariance import signal_noise_subspaces
from repro.arrays.geometry import UniformLinearArray


def esprit_bearings(correlation: np.ndarray, array: UniformLinearArray,
                    num_sources: int) -> List[float]:
    """Bearings (degrees, broadside convention) estimated by (LS-)ESPRIT."""
    if not isinstance(array, UniformLinearArray):
        raise TypeError("ESPRIT requires a UniformLinearArray")
    correlation = np.asarray(correlation, dtype=complex)
    n = array.num_elements
    if correlation.shape != (n, n):
        raise ValueError(f"correlation must be ({n}, {n}), got {correlation.shape}")
    if num_sources >= n:
        raise ValueError("num_sources must be smaller than the number of antennas")
    _, signal, _ = signal_noise_subspaces(correlation, num_sources)
    upper = signal[:-1, :]
    lower = signal[1:, :]
    # Least-squares solution of upper @ Phi = lower.
    phi, *_ = np.linalg.lstsq(upper, lower, rcond=None)
    eigenvalues = np.linalg.eigvals(phi)

    bearings: List[float] = []
    spacing_ratio = array.spacing / array.wavelength
    for value in eigenvalues:
        omega = float(np.angle(value))
        sin_theta = -omega / (2.0 * math.pi * spacing_ratio)
        if abs(sin_theta) > 1.0:
            continue
        bearings.append(math.degrees(math.asin(sin_theta)))
    bearings.sort()
    return bearings
