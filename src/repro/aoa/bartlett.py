"""The Bartlett (classical delay-and-sum) beamformer.

The simplest pseudospectrum: steer the array to each candidate angle and
measure the output power, ``P(theta) = a^H R a / (a^H a)``.  Its resolution is
limited by the array aperture (no super-resolution), which is why the paper
uses MUSIC; it is included as a baseline for the estimator-comparison
ablation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.aoa.spectrum import Pseudospectrum
from repro.arrays.geometry import AntennaArray


def bartlett_pseudospectrum(correlation: np.ndarray, array: AntennaArray,
                            angles_deg: Optional[Sequence[float]] = None) -> Pseudospectrum:
    """Compute the Bartlett beamformer pseudospectrum."""
    correlation = np.asarray(correlation, dtype=complex)
    if correlation.ndim != 2 or correlation.shape != (array.num_elements, array.num_elements):
        raise ValueError(
            f"correlation must be ({array.num_elements}, {array.num_elements}), "
            f"got {correlation.shape}")
    if angles_deg is None:
        angles_deg = array.angle_grid()
    angles = np.asarray(angles_deg, dtype=float)
    steering = array.steering_matrix(angles)  # (N, A)
    numerator = np.real(np.einsum("na,nm,ma->a", steering.conj(), correlation, steering))
    normaliser = np.real(np.sum(np.abs(steering) ** 2, axis=0))
    values = np.maximum(numerator / np.maximum(normaliser, 1e-15), 0.0)
    return Pseudospectrum(angles, values, metadata={"estimator": "bartlett"})
