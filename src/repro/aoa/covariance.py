"""Spatial correlation (covariance) matrix estimation.

Section 2.1 of the paper: "The best known AoA estimation algorithms are based
on eigenstructure analysis of a correlation matrix formed by samplewise-
multiplying the raw signal from the l-th antenna with the raw signal from the
m-th antenna, then computing the mean of the result."  ``correlation_matrix``
is exactly that computation; the other helpers are the standard conditioning
steps (forward–backward averaging, spatial smoothing for coherent multipath on
linear arrays, diagonal loading) used before eigendecomposition.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backend import get_backend
from repro.utils.validation import require_positive_int


def correlation_matrix(samples: np.ndarray) -> np.ndarray:
    """Sample spatial correlation matrix ``R = X X^H / T``.

    Parameters
    ----------
    samples:
        Complex array of shape (num_antennas, num_samples) — one packet's raw
        samples from every antenna.

    Returns
    -------
    numpy.ndarray
        Hermitian (num_antennas, num_antennas) matrix whose (l, m) entry is
        the mean of antenna l's samples times the conjugate of antenna m's.
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 2:
        raise ValueError(f"samples must be (num_antennas, num_samples), got {samples.shape}")
    num_antennas, num_samples = samples.shape
    if num_antennas < 1 or num_samples < 1:
        raise ValueError("samples must contain at least one antenna and one sample")
    return samples @ samples.conj().T / num_samples


def forward_backward_average(matrix: np.ndarray) -> np.ndarray:
    """Forward–backward averaging of a correlation matrix.

    Averages ``R`` with its rotated conjugate ``J R* J`` (J the exchange
    matrix).  For linear arrays this doubles the effective number of looks and
    helps decorrelate a pair of coherent paths.
    """
    matrix = _check_square(matrix)
    n = matrix.shape[0]
    exchange = np.fliplr(np.eye(n))
    return 0.5 * (matrix + exchange @ matrix.conj() @ exchange)


def spatial_smoothing(samples: np.ndarray, subarray_size: int) -> np.ndarray:
    """Forward spatial smoothing for uniform linear arrays.

    Splits the array into overlapping subarrays of ``subarray_size`` elements
    and averages their correlation matrices.  This restores the rank of the
    signal subspace when paths are coherent, at the cost of reducing the
    effective aperture to ``subarray_size`` elements.  Only meaningful for
    uniform linear arrays (the shift invariance it relies on does not hold for
    circular geometries).
    """
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 2:
        raise ValueError(f"samples must be (num_antennas, num_samples), got {samples.shape}")
    num_antennas = samples.shape[0]
    subarray_size = require_positive_int(subarray_size, "subarray_size")
    if subarray_size > num_antennas:
        raise ValueError(
            f"subarray_size {subarray_size} exceeds the number of antennas {num_antennas}")
    num_subarrays = num_antennas - subarray_size + 1
    accumulator = np.zeros((subarray_size, subarray_size), dtype=complex)
    for start in range(num_subarrays):
        block = samples[start:start + subarray_size]
        accumulator += correlation_matrix(block)
    return accumulator / num_subarrays


def diagonal_loading(matrix: np.ndarray, loading_factor: float = 1e-3) -> np.ndarray:
    """Add a small multiple of the average diagonal power to the diagonal.

    Keeps matrix inversions (Capon) and eigendecompositions well conditioned
    when the capture is short or nearly noiseless.
    """
    matrix = _check_square(matrix)
    if loading_factor < 0:
        raise ValueError("loading_factor must be non-negative")
    average_power = float(np.real(np.trace(matrix))) / matrix.shape[0]
    return (matrix
            + loading_factor * max(average_power, np.finfo(float).tiny) * np.eye(matrix.shape[0]))


def signal_noise_subspaces(matrix: np.ndarray, num_sources: int):
    """Eigendecompose a correlation matrix into signal and noise subspaces.

    Returns ``(eigenvalues, signal_subspace, noise_subspace)`` with eigenvalues
    sorted in descending order; the signal subspace holds the ``num_sources``
    dominant eigenvectors as columns.
    """
    matrix = _check_square(matrix)
    num_antennas = matrix.shape[0]
    num_sources = require_positive_int(num_sources, "num_sources")
    if num_sources >= num_antennas:
        raise ValueError(
            f"num_sources ({num_sources}) must be smaller than the number of "
            f"antennas ({num_antennas})")
    # Routed through the Backend seam so REPRO_BACKEND covers the scalar
    # path too; the numpy backend is literally np.linalg.eigh (bit-identical).
    eigenvalues, eigenvectors = get_backend().eigh(matrix)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    signal = eigenvectors[:, :num_sources]
    noise = eigenvectors[:, num_sources:]
    return eigenvalues, signal, noise


def _check_square(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return matrix
