"""Angle-of-arrival estimation: covariance matrices, MUSIC, and baselines."""

from repro.aoa.covariance import (
    correlation_matrix,
    diagonal_loading,
    forward_backward_average,
    spatial_smoothing,
)
from repro.aoa.spectrum import Pseudospectrum
from repro.aoa.peaks import find_peaks
from repro.aoa.source_count import estimate_num_sources
from repro.aoa.music import music_pseudospectrum
from repro.aoa.bartlett import bartlett_pseudospectrum
from repro.aoa.capon import capon_pseudospectrum
from repro.aoa.root_music import root_music_bearings
from repro.aoa.esprit import esprit_bearings
from repro.aoa.phase_interferometry import two_antenna_bearing
from repro.aoa.estimator import AoAEstimator, AoAEstimate, EstimatorConfig
from repro.aoa.batch import BatchAoAEstimator
from repro.aoa.subspace import SubspaceTracker
from repro.aoa.peaks import find_peaks_batch

__all__ = [
    "correlation_matrix",
    "forward_backward_average",
    "spatial_smoothing",
    "diagonal_loading",
    "Pseudospectrum",
    "find_peaks",
    "estimate_num_sources",
    "music_pseudospectrum",
    "bartlett_pseudospectrum",
    "capon_pseudospectrum",
    "root_music_bearings",
    "esprit_bearings",
    "two_antenna_bearing",
    "find_peaks_batch",
    "AoAEstimator",
    "AoAEstimate",
    "EstimatorConfig",
    "BatchAoAEstimator",
    "SubspaceTracker",
]
