"""The batched AoA processing engine.

The per-packet pipeline spends most of its time in fixed Python and LAPACK
call overhead: every capture used to re-derive the angle grid, rebuild the
steering matrix, and run its own eigendecompositions.  The batched engine
amortises all of that across a batch: correlation matrices are stacked into a
(B, N, N) tensor, conditioned (calibration, forward-backward averaging,
diagonal loading) with broadcast operations, eigendecomposed with one stacked
``np.linalg.eigh`` call, and evaluated for all B packets against the array's
cached steering matrix with batched matrix products.  Peak extraction runs
vectorised over the (B, A) value stack.

Two algebraic shortcuts keep the per-packet work flop-bound rather than
overhead-bound:

* Per-chain calibration is a diagonal unitary ``C``, so instead of scaling
  every time sample, the raw correlation matrix is corrected as ``C R C^H``
  — an (N, N) operation instead of an (N, T) one.  (Spatial smoothing breaks
  this commutation, so the smoothing path calibrates samples directly.)
* The eigenvector basis is orthonormal, so the MUSIC noise-subspace power
  ``sum_noise |v_k^H a|^2`` equals ``||a||^2 - sum_signal |v_k^H a|^2``; with
  at most ``max_sources`` signal vectors this projects 1-3 vectors per packet
  instead of N-1.  (Verified safe: simulated pseudospectrum troughs sit many
  orders of magnitude above the float cancellation floor.)

Every item of a batch is computed independently by the underlying BLAS/LAPACK
loops, so ``process_batch([c])`` is bit-for-bit identical to processing ``c``
inside any larger batch — and :class:`~repro.aoa.estimator.AoAEstimator` is a
thin B=1 wrapper over this engine, so the scalar and batched paths cannot
diverge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aoa.estimator import AoAEstimate, EstimatorConfig
from repro.aoa.peaks import find_peaks_batch
from repro.aoa.source_count import estimate_num_sources
from repro.aoa.spectrum import (
    PEAK_MIN_RELATIVE_HEIGHT,
    Pseudospectrum,
    grid_peak_params,
)
from repro.arrays.geometry import AntennaArray, UniformLinearArray
from repro.calibration.table import CalibrationTable
from repro.hardware.capture import Capture
from repro.kernels.backend import complex_dtype, get_backend
from repro.phy.schmidl_cox import SchmidlCoxDetector


class BatchAoAEstimator:
    """Estimate angle-of-arrival pseudospectra for whole batches of captures.

    The engine accepts the same :class:`~repro.aoa.estimator.EstimatorConfig`
    as the scalar facade and honours every knob (method, conditioning, source
    counting, packet detection, calibration policy); it simply evaluates all
    captures of a batch through stacked linear algebra.
    """

    def __init__(self, array: AntennaArray, config: Optional[EstimatorConfig] = None):
        self.array = array
        self.config = config if config is not None else EstimatorConfig()
        self._detector: Optional[SchmidlCoxDetector] = None
        #: Scan arrays for spatially smoothed (shrunken) correlation matrices,
        #: keyed by subarray size, so their steering caches persist.
        self._scan_arrays: Dict[int, AntennaArray] = {}
        self._backend = get_backend(self.config.backend)
        self._cdtype = complex_dtype(self.config.precision)
        #: Reduced-precision casts of the (cached, complex128) steering
        #: matrices, keyed by matrix size, so float32 runs cast once.
        self._steering_casts: Dict[int, np.ndarray] = {}
        self._tracker = None  # lazy SubspaceTracker (subspace_tracking only)

    # ------------------------------------------------------------------ public
    def process(self, capture: Capture,
                calibration: Optional[CalibrationTable] = None) -> AoAEstimate:
        """Process a single capture (a batch of one)."""
        return self.process_batch([capture], calibration=calibration)[0]

    def process_batch(self, captures: Sequence[Capture],
                      calibration: Optional[CalibrationTable] = None) -> List[AoAEstimate]:
        """Process a batch of captures into one :class:`AoAEstimate` each.

        Raw captures are calibrated on the fly when ``calibration`` is given;
        otherwise every capture must already be calibrated (unless the
        configuration disables the check, as the calibration ablation does).
        """
        captures = list(captures)
        if not captures:
            return []
        factors = calibration.correction_factors() if calibration is not None else None
        samples_list: List[np.ndarray] = []
        corrections: List[Optional[np.ndarray]] = []
        for capture in captures:
            samples, correction = self._validated_samples(capture, calibration, factors)
            samples_list.append(samples)
            corrections.append(correction)
        packet_starts: List[Optional[int]] = [None] * len(captures)
        if self.config.detect_packet:
            for index, (capture, samples) in enumerate(zip(captures, samples_list)):
                samples_list[index], packet_starts[index] = self._extract_packet(
                    capture, samples)
        if self.config.smoothing_subarray is not None:
            # Smoothing mixes different chain subsets per subarray, which does
            # not commute with a matrix-level correction: calibrate samples.
            samples_list = [
                samples if correction is None
                else samples * correction.astype(samples.dtype, copy=False)[:, None]
                for samples, correction in zip(samples_list, corrections)
            ]
            corrections = [None] * len(captures)
        return self._process_stack(samples_list, corrections, packet_starts)

    def process_samples_batch(self, samples_list: Sequence[np.ndarray]) -> List[AoAEstimate]:
        """Process already-calibrated raw sample matrices, shape (N, T) each.

        Wraps each matrix in a calibrated :class:`Capture`, exactly like the
        scalar ``process_samples``, so validation and the optional packet
        detection behave identically on both paths.
        """
        return self.process_batch([
            Capture(samples=samples, calibrated=True) for samples in samples_list
        ])

    # ------------------------------------------------------------- validation
    def _validated_samples(self, capture: Capture, calibration: Optional[CalibrationTable],
                           factors: Optional[np.ndarray]
                           ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        correction: Optional[np.ndarray] = None
        calibrated = capture.calibrated
        if calibration is not None and not calibrated:
            if capture.num_antennas != calibration.num_chains:
                raise ValueError(
                    f"capture has {capture.num_antennas} antennas but the table "
                    f"covers {calibration.num_chains} chains")
            correction = factors
            calibrated = True
        if self.config.require_calibrated and not calibrated:
            raise ValueError(
                "capture is not calibrated; pass a CalibrationTable or disable "
                "require_calibrated (see the calibration ablation)")
        if capture.num_antennas != self.array.num_elements:
            raise ValueError(
                f"capture has {capture.num_antennas} antennas but the array has "
                f"{self.array.num_elements} elements")
        samples = capture.samples
        if samples.dtype != self._cdtype:
            samples = samples.astype(self._cdtype)
        return samples, correction

    def _extract_packet(self, capture: Capture,
                        samples: np.ndarray) -> Tuple[np.ndarray, Optional[int]]:
        # Chain 0 is the calibration reference (its correction factor is
        # exactly 1), so detection on the raw first row matches detection on
        # calibrated samples.
        if self._detector is None:
            self._detector = SchmidlCoxDetector(sample_rate_hz=capture.sample_rate_hz)
        detection = self._detector.detect_first(samples[0])
        if detection is None:
            return samples, None
        return samples[:, detection.start_index:], detection.start_index

    # ---------------------------------------------------------------- pipeline
    def _process_stack(self, samples_list: List[np.ndarray],
                       corrections: List[Optional[np.ndarray]],
                       packet_starts: List[Optional[int]]) -> List[AoAEstimate]:
        config = self.config
        if config.subspace_tracking:
            return self._process_tracked(samples_list, corrections, packet_starts)
        num_samples = [samples.shape[1] for samples in samples_list]
        matrices = self._conditioned_correlation_stack(samples_list, corrections)
        batch_size, n = matrices.shape[0], matrices.shape[1]

        # One stacked eigendecomposition serves both source counting and the
        # MUSIC subspace split (eigenvalues ascending, per LAPACK convention).
        eigenvalues, eigenvectors = self._backend.eigh(matrices)
        counts = self._source_counts(eigenvalues, num_samples, n)

        scan_array = self._scan_array(n)
        grid = scan_array.angle_grid(config.resolution_deg)
        steering = self._cast_steering(
            scan_array.steering_matrix(resolution_deg=config.resolution_deg), n)
        values, metadata = self._spectra(matrices, eigenvectors, counts, steering, n)
        # Peak extraction and Pseudospectrum stay float64 regardless of the
        # estimation precision.
        # Spectra are pinned to float64 by contract regardless of the
        # precision mode (peak finding and Pseudospectrum compare across
        # precisions); this is the documented cast point, not a leak.
        values = values.astype(np.float64, copy=False)  # repro-lint: disable=precision-discipline

        # Vectorised peak extraction over the whole (B, A) stack, mirroring
        # Pseudospectrum.peak_bearings' defaults.
        wrap, min_separation = grid_peak_params(grid)
        peak_indices = find_peaks_batch(values, wrap=wrap,
                                        min_relative_height=PEAK_MIN_RELATIVE_HEIGHT,
                                        min_separation=min_separation)

        estimates: List[AoAEstimate] = []
        for index in range(batch_size):
            row = values[index]
            spectrum = Pseudospectrum.from_validated(grid, row, metadata[index])
            peaks = [float(grid[i]) for i in peak_indices[index][:config.max_sources]]
            bearing = peaks[0] if peaks else float(grid[int(np.argmax(row))])
            estimates.append(AoAEstimate(
                pseudospectrum=spectrum,
                bearing_deg=bearing,
                peak_bearings_deg=peaks,
                num_sources=counts[index],
                packet_start=packet_starts[index],
            ))
        return estimates

    # ------------------------------------------------------------- correlation
    def _conditioned_correlation_stack(self, samples_list: List[np.ndarray],
                                       corrections: List[Optional[np.ndarray]]) -> np.ndarray:
        config = self.config
        if config.smoothing_subarray is not None:
            if not isinstance(self.array, UniformLinearArray):
                raise ValueError("spatial smoothing requires a uniform linear array")
            matrices = self._smoothed_stack(samples_list, config.smoothing_subarray)
        else:
            matrices = self._backend.correlation_stack(samples_list)
            matrices = self._calibrate_matrices(matrices, corrections)
        if config.forward_backward and isinstance(self.array, UniformLinearArray):
            # J R* J flips a matrix along both axes; batched over the stack.
            matrices = 0.5 * (matrices + matrices[:, ::-1, ::-1].conj())
        if config.loading_factor > 0:
            matrices = self._diagonal_loading(matrices, config.loading_factor)
        return matrices

    @staticmethod
    def _diagonal_loading(matrices: np.ndarray, loading_factor: float) -> np.ndarray:
        """Batched :func:`repro.aoa.covariance.diagonal_loading` over a stack."""
        n = matrices.shape[1]
        # Batched trace (diagonal gather, not a GEMM): no backend kernel
        # applies, and the O(B*N) sum is negligible next to the eigh.
        power = np.einsum("bii->b", matrices).real / n  # repro-lint: disable=seam-bypass
        load = loading_factor * np.maximum(power, np.finfo(power.dtype).tiny)
        return matrices + load[:, None, None] * np.eye(n, dtype=power.dtype)

    @staticmethod
    def _calibrate_matrices(matrices: np.ndarray,
                            corrections: List[Optional[np.ndarray]]) -> np.ndarray:
        """Apply per-chain corrections as ``C R C^H`` on the matrix stack."""
        if all(correction is None for correction in corrections):
            return matrices
        n = matrices.shape[1]
        factors = np.ones((len(corrections), n), dtype=matrices.dtype)
        for index, correction in enumerate(corrections):
            if correction is not None:
                factors[index] = correction
        return factors[:, :, None] * matrices * factors.conj()[:, None, :]

    def _smoothed_stack(self, samples_list: List[np.ndarray], subarray_size: int) -> np.ndarray:
        num_antennas = self.array.num_elements
        if subarray_size > num_antennas:
            raise ValueError(
                f"subarray_size {subarray_size} exceeds the number of antennas {num_antennas}")
        num_subarrays = num_antennas - subarray_size + 1
        matrices = np.zeros((len(samples_list), subarray_size, subarray_size),
                            dtype=self._cdtype)
        for index, samples in enumerate(samples_list):
            for start in range(num_subarrays):
                block = samples[start:start + subarray_size]
                # Spatial smoothing accumulates tiny per-subarray outer
                # products in place; a per-block backend round trip would
                # cost more than the GEMM. The smoothed stack still hits the
                # seam for its eigendecomposition.
                matrices[index] += block @ block.conj().T  # repro-lint: disable=seam-bypass
            matrices[index] /= samples.shape[1] * num_subarrays
        return matrices

    # ----------------------------------------------------------- model order
    def _source_counts(self, eigenvalues: np.ndarray, num_samples: List[int],
                       n: int) -> List[int]:
        config = self.config
        batch_size = eigenvalues.shape[0]
        if config.num_sources is not None:
            return [min(config.num_sources, n - 1)] * batch_size
        max_sources = min(config.max_sources, n - 1)
        if config.source_count_method == "gap":
            # The eigenvalue-gap heuristic vectorises over the stack: count
            # eigenvalues above 5 % of the per-item maximum (ascending order,
            # so the maximum is the last column).
            largest = eigenvalues[:, -1]
            counts = np.sum(eigenvalues > 0.05 * largest[:, None], axis=1)
            counts = np.clip(counts, 1, n - 1)
            counts[largest <= 0] = 1
            return [int(count) for count in np.minimum(counts, max_sources)]
        return [
            estimate_num_sources(eigenvalues[index], num_samples[index],
                                 method=config.source_count_method,
                                 max_sources=max_sources)
            for index in range(batch_size)
        ]

    # --------------------------------------------------------------- spectra
    def _spectra(self, matrices: np.ndarray, eigenvectors: np.ndarray,
                 counts: List[int], steering: np.ndarray,
                 n: int) -> Tuple[np.ndarray, List[dict]]:
        config = self.config
        batch_size = matrices.shape[0]
        if config.method == "music":
            values = self._music_values(eigenvectors, counts, steering, n)
            metadata = [{"estimator": "music", "num_sources": int(count), "num_antennas": n}
                        for count in counts]
            return values, metadata
        if n != self.array.num_elements:
            raise ValueError(
                f"{config.method} does not support spatially smoothed matrices")
        if config.method == "capon":
            # Capon applies its own, heavier diagonal loading before inversion
            # (matching the scalar capon_pseudospectrum default).
            loaded = self._diagonal_loading(matrices, 1e-3)
            inverses = self._backend.inv(loaded)
            denominator = self._backend.beamscan_numerator(inverses, steering)
            values = 1.0 / np.maximum(denominator, 1e-15)
            metadata = [{"estimator": "capon"} for _ in range(batch_size)]
            return values, metadata
        numerator = self._backend.beamscan_numerator(matrices, steering)
        normaliser = np.sum(np.abs(steering) ** 2, axis=0)
        values = np.maximum(numerator / np.maximum(normaliser, 1e-15), 0.0)
        metadata = [{"estimator": "bartlett"} for _ in range(batch_size)]
        return values, metadata

    def _music_values(self, eigenvectors: np.ndarray, counts: List[int],
                      steering: np.ndarray, n: int) -> np.ndarray:
        """Batched MUSIC via the signal-subspace complement.

        Since the eigenvector basis is orthonormal, the noise-subspace power
        is ``||a||^2`` minus the signal-subspace power; projecting the (few)
        signal eigenvectors is much cheaper than projecting the noise
        subspace.  Items are grouped by model order so each group is one
        batched matrix product.
        """
        counts = np.asarray(counts, dtype=int)
        total = np.sum(np.abs(steering) ** 2, axis=0)  # ||a(theta)||^2, shape (A,)
        denominator = np.empty((counts.size, steering.shape[1]),
                               dtype=total.dtype)
        for order in np.unique(counts):
            items = np.nonzero(counts == order)[0]
            # Ascending eigenvalue order: the signal subspace is the trailing
            # `order` eigenvectors.
            signal = eigenvectors[items, :, n - order:]
            denominator[items] = total[None, :] - self._backend.music_projection_power(
                signal, steering)
        return 1.0 / np.maximum(denominator, 1e-15)

    def _cast_steering(self, steering: np.ndarray, n: int) -> np.ndarray:
        """The steering matrix in estimation precision (cast once, cached)."""
        if steering.dtype == self._cdtype:
            return steering
        cached = self._steering_casts.get(n)
        if cached is None or cached.shape != steering.shape:
            cached = steering.astype(self._cdtype)
            self._steering_casts[n] = cached
        return cached

    # ---------------------------------------------------------- streaming path
    def _process_tracked(self, samples_list: List[np.ndarray],
                         corrections: List[Optional[np.ndarray]],
                         packet_starts: List[Optional[int]]) -> List[AoAEstimate]:
        """Sequential streaming path: one tracker update per capture.

        Captures are folded into the tracker's running correlation in order
        (streaming semantics), so unlike the stacked path the results depend
        on everything processed since the tracker was created.
        """
        from dataclasses import replace

        # Imported here to break the batch <-> subspace module cycle.
        from repro.aoa.subspace import SubspaceTracker

        if self._tracker is None:
            self._tracker = SubspaceTracker(self.array, self.config)
        estimates = []
        for samples, correction, start in zip(samples_list, corrections, packet_starts):
            estimate = self._tracker.update(samples, correction)
            estimates.append(replace(estimate, packet_start=start))
        return estimates

    # ------------------------------------------------------------ scan arrays
    def _scan_array(self, matrix_size: int) -> AntennaArray:
        """The array whose manifold matches the (possibly smoothed) matrices.

        Spatial smoothing shrinks the effective aperture; scanning uses a
        matching sub-aperture with the same geometry (a shorter ULA), whose
        steering cache is kept across batches.
        """
        if matrix_size == self.array.num_elements:
            return self.array
        scan = self._scan_arrays.get(matrix_size)
        if scan is None:
            assert isinstance(self.array, UniformLinearArray)
            scan = UniformLinearArray(
                num_elements=matrix_size, spacing_m=self.array.spacing,
                carrier_frequency_hz=self.array.carrier_frequency_hz,
                name=f"{self.array.name}-smoothed")
            self._scan_arrays[matrix_size] = scan
        return scan
