"""Antenna array geometries.

The prototype uses eight antennas arranged either on a line (half-wavelength,
6.13 cm spacing) or on an octagon with 4.7 cm sides (the paper's "circular"
arrangement).  A linear array can only resolve bearings in [-90, 90] because
clients on either side of the array axis are indistinguishable; the circular
arrangement resolves the full [0, 360) range (footnote 1 of the paper).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_CARRIER_FREQUENCY_HZ, OCTAGON_SIDE_LENGTH_M, wavelength
from repro.utils.validation import require_positive, require_positive_int


class AntennaArray:
    """Base class for a planar antenna array.

    Element positions are expressed in metres in the array's local frame; the
    array can be placed in the floor plan at an arbitrary position and
    orientation by the access-point model.
    """

    def __init__(self, element_positions: np.ndarray,
                 carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 name: str = "array"):
        positions = np.asarray(element_positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(
                f"element positions must be an (N, 2) array, got shape {positions.shape}")
        if positions.shape[0] < 2:
            raise ValueError("an antenna array needs at least two elements")
        if not np.all(np.isfinite(positions)):
            raise ValueError("element positions must be finite")
        self._positions = positions
        self._carrier_frequency_hz = require_positive(carrier_frequency_hz, "carrier_frequency_hz")
        self.name = name
        # Manifold cache: the geometry is immutable, so angle grids and
        # steering matrices depend only on (resolution, wavelength) and are
        # computed once per array instead of once per processed packet.
        # Cached arrays are returned read-only and must not be mutated.
        self._ambiguous: Optional[bool] = None
        self._grid_cache: dict = {}
        self._steering_cache: dict = {}

    @property
    def num_elements(self) -> int:
        """Number of antenna elements."""
        return int(self._positions.shape[0])

    @property
    def element_positions(self) -> np.ndarray:
        """Copy of the (N, 2) element positions in metres (local frame)."""
        return self._positions.copy()

    @property
    def carrier_frequency_hz(self) -> float:
        """Carrier frequency the array operates at."""
        return self._carrier_frequency_hz

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return wavelength(self._carrier_frequency_hz)

    @property
    def aperture(self) -> float:
        """Largest inter-element distance (metres)."""
        diffs = self._positions[:, None, :] - self._positions[None, :, :]
        return float(np.max(np.linalg.norm(diffs, axis=-1)))

    @property
    def ambiguous(self) -> bool:
        """True when the array cannot distinguish the two sides of a line.

        Linear arrays are ambiguous (bearing range [-90, 90]); planar arrays
        with elements spanning two dimensions are not.
        """
        if self._ambiguous is None:
            centred = self._positions - self._positions.mean(axis=0)
            # Rank 1 geometry (all elements collinear) implies front/back ambiguity.
            self._ambiguous = bool(np.linalg.matrix_rank(centred, tol=1e-9) < 2)
        return self._ambiguous

    def angle_grid(self, resolution_deg: float = 1.0) -> np.ndarray:
        """Default evaluation grid for pseudospectra, in degrees (memoized).

        Linear arrays scan [-90, 90]; unambiguous arrays scan [0, 360).  The
        returned array is cached per resolution and marked read-only; callers
        that need a mutable grid must copy it.
        """
        require_positive(resolution_deg, "resolution_deg")
        key = float(resolution_deg)
        grid = self._grid_cache.get(key)
        if grid is None:
            grid = self._compute_angle_grid(key)
            grid.flags.writeable = False
            self._grid_cache[key] = grid
        return grid

    def _compute_angle_grid(self, resolution_deg: float) -> np.ndarray:
        if self.ambiguous:
            return np.arange(-90.0, 90.0 + resolution_deg / 2.0, resolution_deg)
        return np.arange(0.0, 360.0, resolution_deg)

    def steering_vector(self, angle_deg: float) -> np.ndarray:
        """Array response (length-N complex vector) for a plane wave from ``angle_deg``.

        The phase at element k is ``exp(-j * 2*pi/lambda * (x_k cos(theta) + y_k sin(theta)))``,
        i.e. elements further along the arrival direction see the wave earlier.
        """
        theta = math.radians(float(angle_deg))
        direction = np.array([math.cos(theta), math.sin(theta)])
        projection = self._positions @ direction
        phase = -2.0 * np.pi / self.wavelength * projection
        return np.exp(1j * phase)

    def steering_matrix(self, angles_deg: Optional[Sequence[float]] = None,
                        resolution_deg: float = 1.0) -> np.ndarray:
        """Stack of steering vectors, shape (N, len(angles)) (memoized).

        With ``angles_deg=None`` the matrix is evaluated on the array's
        natural :meth:`angle_grid` at ``resolution_deg`` and memoized per
        (resolution, wavelength), so the (N, A) manifold is computed once per
        array rather than once per processed packet.  Passing a grid object
        previously returned by :meth:`angle_grid` hits the same cache.
        Cached matrices are read-only; copy before mutating.
        """
        if angles_deg is None:
            key = (float(resolution_deg), self.wavelength)
        else:
            resolution = next(
                (cached_resolution
                 for cached_resolution, grid in self._grid_cache.items()
                 if angles_deg is grid),
                None)
            if resolution is None:
                angles = np.atleast_1d(np.asarray(angles_deg, dtype=float))
                return self._compute_steering_matrix(angles)
            key = (resolution, self.wavelength)
        matrix = self._steering_cache.get(key)
        if matrix is None:
            matrix = self._compute_steering_matrix(self.angle_grid(key[0]))
            matrix.flags.writeable = False
            self._steering_cache[key] = matrix
        return matrix

    def _compute_steering_matrix(self, angles: np.ndarray) -> np.ndarray:
        theta = np.deg2rad(angles)
        directions = np.stack([np.cos(theta), np.sin(theta)], axis=0)  # (2, A)
        projection = self._positions @ directions  # (N, A)
        return np.exp(-1j * 2.0 * np.pi / self.wavelength * projection)

    def rotated(self, rotation_deg: float) -> "AntennaArray":
        """Return a copy of the array rotated by ``rotation_deg`` about its centroid."""
        theta = math.radians(rotation_deg)
        rotation = np.array([[math.cos(theta), -math.sin(theta)],
                             [math.sin(theta), math.cos(theta)]])
        centre = self._positions.mean(axis=0)
        rotated = (self._positions - centre) @ rotation.T + centre
        return ArbitraryArray(rotated, self._carrier_frequency_hz,
                              name=f"{self.name}-rot{rotation_deg:g}")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(elements={self.num_elements}, "
                f"aperture={self.aperture * 100:.1f} cm)")


class ArbitraryArray(AntennaArray):
    """An array with explicitly supplied element positions."""


class UniformLinearArray(AntennaArray):
    """A uniform linear array (ULA) along the local x axis.

    The prototype's linear arrangement spaces eight antennas at half a
    wavelength (6.13 cm at 2.447 GHz).
    """

    def __init__(self, num_elements: int = 8,
                 spacing_m: Optional[float] = None,
                 carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 name: str = "ula"):
        num_elements = require_positive_int(num_elements, "num_elements")
        if num_elements < 2:
            raise ValueError("a linear array needs at least two elements")
        if spacing_m is None:
            spacing_m = wavelength(carrier_frequency_hz) / 2.0
        spacing_m = require_positive(spacing_m, "spacing_m")
        x = np.arange(num_elements, dtype=float) * spacing_m
        x -= x.mean()
        positions = np.stack([x, np.zeros_like(x)], axis=1)
        super().__init__(positions, carrier_frequency_hz, name=name)
        self._spacing_m = spacing_m

    @property
    def spacing(self) -> float:
        """Inter-element spacing in metres."""
        return self._spacing_m

    def _compute_angle_grid(self, resolution_deg: float) -> np.ndarray:
        """Linear arrays scan [-90, 90] (front/back ambiguous, see footnote 1)."""
        return np.arange(-90.0, 90.0 + resolution_deg / 2.0, resolution_deg)

    def steering_vector(self, angle_deg: float) -> np.ndarray:
        """ULA steering vector using the broadside convention.

        For a ULA the conventional parameterisation measures the bearing from
        broadside (the normal to the array axis), so that a signal from
        broadside (0 degrees) reaches all elements simultaneously and the
        inter-element phase shift is ``2*pi*d/lambda * sin(theta)`` — exactly
        the geometry of Figure 1(c) in the paper.
        """
        theta = math.radians(float(angle_deg))
        k = np.arange(self.num_elements, dtype=float)
        phase = -2.0 * np.pi * self._spacing_m / self.wavelength * k * math.sin(theta)
        return np.exp(1j * phase)

    def _compute_steering_matrix(self, angles: np.ndarray) -> np.ndarray:
        theta = np.deg2rad(angles)
        k = np.arange(self.num_elements, dtype=float)[:, None]
        phase = -2.0 * np.pi * self._spacing_m / self.wavelength * k * np.sin(theta)[None, :]
        return np.exp(1j * phase)


class UniformCircularArray(AntennaArray):
    """A uniform circular array (UCA) with elements evenly spaced on a circle."""

    def __init__(self, num_elements: int = 8,
                 radius_m: Optional[float] = None,
                 carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 name: str = "uca"):
        num_elements = require_positive_int(num_elements, "num_elements")
        if num_elements < 3:
            raise ValueError("a circular array needs at least three elements")
        if radius_m is None:
            radius_m = wavelength(carrier_frequency_hz) / 2.0
        radius_m = require_positive(radius_m, "radius_m")
        angles = 2.0 * np.pi * np.arange(num_elements) / num_elements
        positions = radius_m * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        super().__init__(positions, carrier_frequency_hz, name=name)
        self._radius_m = radius_m

    @property
    def radius(self) -> float:
        """Circle radius in metres."""
        return self._radius_m


class OctagonalArray(UniformCircularArray):
    """The prototype's circular arrangement: an octagon with 4.7 cm sides.

    An octagon with side ``s`` has circumradius ``s / (2 sin(pi/8))``; the
    antennas sit at the corners, which is exactly a uniform circular array
    with eight elements.
    """

    def __init__(self, side_length_m: float = OCTAGON_SIDE_LENGTH_M,
                 carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ,
                 name: str = "octagon"):
        side_length_m = require_positive(side_length_m, "side_length_m")
        radius = side_length_m / (2.0 * math.sin(math.pi / 8.0))
        super().__init__(num_elements=8, radius_m=radius,
                         carrier_frequency_hz=carrier_frequency_hz, name=name)
        self._side_length_m = side_length_m

    @property
    def side_length(self) -> float:
        """Octagon side length in metres."""
        return self._side_length_m


def prototype_arrays(carrier_frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ
                     ) -> Tuple[UniformLinearArray, OctagonalArray]:
    """Return the two antenna arrangements used by the paper's prototype."""
    linear = UniformLinearArray(num_elements=8, carrier_frequency_hz=carrier_frequency_hz,
                                name="prototype-linear")
    circular = OctagonalArray(carrier_frequency_hz=carrier_frequency_hz,
                              name="prototype-circular")
    return linear, circular
