"""Standalone steering-vector helpers.

Most code uses :meth:`repro.arrays.geometry.AntennaArray.steering_vector`;
these free functions exist for callers that work with raw element positions
(for example the channel simulator, which evaluates the array response for
paths impinging from arbitrary directions).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import require_positive


def steering_vector(element_positions: np.ndarray, angle_deg: float,
                    wavelength_m: float) -> np.ndarray:
    """Plane-wave array response for elements at ``element_positions``.

    Parameters
    ----------
    element_positions:
        (N, 2) element coordinates in metres.
    angle_deg:
        Direction of arrival, degrees, mathematical convention (0 = +x,
        counter-clockwise positive).
    wavelength_m:
        Carrier wavelength in metres.
    """
    require_positive(wavelength_m, "wavelength_m")
    positions = np.asarray(element_positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"element positions must be (N, 2), got {positions.shape}")
    theta = np.deg2rad(float(angle_deg))
    direction = np.array([np.cos(theta), np.sin(theta)])
    projection = positions @ direction
    return np.exp(-1j * 2.0 * np.pi / wavelength_m * projection)


def steering_matrix(element_positions: np.ndarray, angles_deg: Sequence[float],
                    wavelength_m: float) -> np.ndarray:
    """Stack of steering vectors for several arrival angles, shape (N, A)."""
    require_positive(wavelength_m, "wavelength_m")
    positions = np.asarray(element_positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"element positions must be (N, 2), got {positions.shape}")
    angles = np.atleast_1d(np.asarray(angles_deg, dtype=float))
    theta = np.deg2rad(angles)
    directions = np.stack([np.cos(theta), np.sin(theta)], axis=0)
    projection = positions @ directions
    return np.exp(-1j * 2.0 * np.pi / wavelength_m * projection)
