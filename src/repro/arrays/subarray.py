"""Subarray selection.

Figure 7 of the paper processes the *same* capture with 2, 4, 6 and 8
antennas to show how resolution improves with array size.  ``subarray``
selects a subset of elements from an array (and the matching rows of a
capture) without re-simulating the channel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.arrays.geometry import AntennaArray, ArbitraryArray


def subarray(array: AntennaArray, element_indices: Optional[Sequence[int]] = None,
             num_elements: Optional[int] = None) -> AntennaArray:
    """Return a new array containing a subset of ``array``'s elements.

    Either ``element_indices`` (explicit selection) or ``num_elements`` (the
    first ``num_elements`` elements, matching how the prototype would simply
    ignore trailing radio chains) must be supplied.
    """
    if (element_indices is None) == (num_elements is None):
        raise ValueError("supply exactly one of element_indices or num_elements")
    if num_elements is not None:
        if num_elements < 2:
            raise ValueError("a subarray needs at least two elements")
        if num_elements > array.num_elements:
            raise ValueError(
                f"requested {num_elements} elements but the array only has {array.num_elements}")
        indices = list(range(num_elements))
    else:
        indices = list(element_indices)  # type: ignore[arg-type]
        if len(indices) < 2:
            raise ValueError("a subarray needs at least two elements")
        if len(set(indices)) != len(indices):
            raise ValueError("element indices must be unique")
        for index in indices:
            if not 0 <= index < array.num_elements:
                raise IndexError(f"element index {index} out of range "
                                 f"for an array of {array.num_elements} elements")
    positions = array.element_positions[indices]
    return ArbitraryArray(positions, array.carrier_frequency_hz,
                          name=f"{array.name}-sub{len(indices)}")


def subarray_samples(samples: np.ndarray, element_indices: Optional[Sequence[int]] = None,
                     num_elements: Optional[int] = None) -> np.ndarray:
    """Select the rows of a (N, T) capture matching a subarray selection."""
    samples = np.asarray(samples)
    if samples.ndim != 2:
        raise ValueError(
            f"samples must be a (num_antennas, num_samples) array, got {samples.shape}")
    if (element_indices is None) == (num_elements is None):
        raise ValueError("supply exactly one of element_indices or num_elements")
    if num_elements is not None:
        if not 2 <= num_elements <= samples.shape[0]:
            raise ValueError(
                f"num_elements must be in [2, {samples.shape[0]}], got {num_elements}")
        return samples[:num_elements]
    indices = list(element_indices)  # type: ignore[arg-type]
    return samples[indices]
