"""Antenna array geometries and array manifolds (steering vectors)."""

from repro.arrays.geometry import (
    AntennaArray,
    ArbitraryArray,
    OctagonalArray,
    UniformCircularArray,
    UniformLinearArray,
)
from repro.arrays.steering import steering_matrix, steering_vector
from repro.arrays.subarray import subarray

__all__ = [
    "AntennaArray",
    "ArbitraryArray",
    "OctagonalArray",
    "UniformCircularArray",
    "UniformLinearArray",
    "steering_vector",
    "steering_matrix",
    "subarray",
]
