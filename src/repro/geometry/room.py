"""Rooms, walls, and obstacles — the building blocks of the testbed floor plan.

The Figure 4 environment is an office with several rooms, a large cement
pillar that blocks some clients, and an exterior boundary used by the virtual
fence.  ``Room`` aggregates walls (reflective surfaces with penetration loss)
and obstacles (blocking volumes with their own attenuation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Wall:
    """A reflective wall face.

    Parameters
    ----------
    segment:
        Geometry of the wall face.
    reflection_loss_db:
        Power loss applied to a signal that reflects off this wall, relative
        to a perfect mirror.  Typical interior drywall: 6-10 dB.
    penetration_loss_db:
        Power loss applied to a signal that passes through the wall.
        Typical interior drywall: 3-5 dB; exterior/cement walls much more.
    name:
        Optional label for debugging and reporting.
    """

    segment: Segment
    reflection_loss_db: float = 8.0
    penetration_loss_db: float = 4.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.reflection_loss_db < 0:
            raise ValueError("reflection loss must be non-negative dB")
        if self.penetration_loss_db < 0:
            raise ValueError("penetration loss must be non-negative dB")


@dataclass(frozen=True)
class Obstacle:
    """A blocking obstacle with a polygonal cross-section (e.g. a cement pillar).

    Signals whose straight-line path crosses the obstacle are attenuated by
    ``penetration_loss_db``; the obstacle's faces also act as reflectors with
    ``reflection_loss_db``.
    """

    outline: Polygon
    penetration_loss_db: float = 20.0
    reflection_loss_db: float = 10.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.penetration_loss_db < 0:
            raise ValueError("penetration loss must be non-negative dB")
        if self.reflection_loss_db < 0:
            raise ValueError("reflection loss must be non-negative dB")

    def blocks(self, path: Segment) -> bool:
        """True when the straight-line ``path`` crosses this obstacle."""
        if self.outline.intersects_segment(path):
            return True
        # A path wholly inside the obstacle (both endpoints inside) also counts.
        return self.outline.contains(path.start) and self.outline.contains(path.end)

    def faces(self) -> List[Segment]:
        """The obstacle's faces, usable as reflector segments."""
        return self.outline.edges


@dataclass
class Room:
    """A collection of walls and obstacles plus an optional bounding outline."""

    walls: List[Wall] = field(default_factory=list)
    obstacles: List[Obstacle] = field(default_factory=list)
    outline: Optional[Polygon] = None
    name: str = ""

    @staticmethod
    def from_rectangle(x_min: float, y_min: float, x_max: float, y_max: float,
                       reflection_loss_db: float = 8.0,
                       penetration_loss_db: float = 4.0,
                       name: str = "") -> "Room":
        """Create a rectangular room whose four walls reflect and attenuate."""
        outline = Polygon.rectangle(x_min, y_min, x_max, y_max)
        walls = [
            Wall(edge, reflection_loss_db=reflection_loss_db,
                 penetration_loss_db=penetration_loss_db,
                 name=f"{name}-wall-{i}")
            for i, edge in enumerate(outline.edges)
        ]
        return Room(walls=walls, outline=outline, name=name)

    def add_obstacle(self, obstacle: Obstacle) -> None:
        """Add an obstacle to the room."""
        self.obstacles.append(obstacle)

    def add_wall(self, wall: Wall) -> None:
        """Add a wall to the room."""
        self.walls.append(wall)

    def reflective_surfaces(self) -> List[Segment]:
        """All segments that can act as single-bounce reflectors."""
        surfaces = [wall.segment for wall in self.walls]
        for obstacle in self.obstacles:
            surfaces.extend(obstacle.faces())
        return surfaces

    def penetration_loss_db(self, path: Segment) -> float:
        """Total penetration loss (dB) accumulated along a straight-line path.

        Each wall the path crosses contributes its penetration loss, and each
        obstacle it crosses contributes its (usually much larger) loss.  This
        models the cement pillar of Figure 4 heavily attenuating — but not
        completely removing — the direct path of blocked clients.
        """
        total = 0.0
        for wall in self.walls:
            if wall.segment.intersects(path):
                total += wall.penetration_loss_db
        for obstacle in self.obstacles:
            if obstacle.blocks(path):
                total += obstacle.penetration_loss_db
        return total

    def line_of_sight(self, a: Point, b: Point) -> bool:
        """True when the straight path from ``a`` to ``b`` crosses nothing."""
        path = Segment(a, b)
        return self.penetration_loss_db(path) == 0.0

    def contains(self, point: Point) -> bool:
        """True when ``point`` falls inside the room outline (if one is set)."""
        if self.outline is None:
            raise ValueError("room has no outline to test containment against")
        return self.outline.contains(point)


def merge_rooms(rooms: Sequence[Room], name: str = "floorplan") -> Room:
    """Merge several rooms into one aggregate floor plan.

    The merged room has no single outline (rooms may be disjoint); callers
    that need a boundary for the virtual fence should supply it explicitly.
    """
    merged = Room(name=name)
    for room in rooms:
        merged.walls.extend(room.walls)
        merged.obstacles.extend(room.obstacles)
    return merged
