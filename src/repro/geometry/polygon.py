"""Simple polygons: containment, area, edges.

Polygons model room outlines, the building footprint used by the virtual
fence, and obstacle cross-sections (the cement pillar of Figure 4).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.segment import Segment


class Polygon:
    """A simple (non-self-intersecting) polygon defined by its vertices."""

    def __init__(self, vertices: Sequence[Point]):
        vertices = list(vertices)
        if len(vertices) < 3:
            raise ValueError(f"a polygon needs at least 3 vertices, got {len(vertices)}")
        deduped: List[Point] = []
        for vertex in vertices:
            if deduped and vertex.distance_to(deduped[-1]) < 1e-12:
                continue
            deduped.append(vertex)
        if len(deduped) > 1 and deduped[0].distance_to(deduped[-1]) < 1e-12:
            deduped.pop()
        if len(deduped) < 3:
            raise ValueError("polygon vertices are degenerate")
        self._vertices: Tuple[Point, ...] = tuple(deduped)

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The polygon's vertices in order."""
        return self._vertices

    @property
    def edges(self) -> List[Segment]:
        """The polygon's edges as segments, in vertex order."""
        verts = self._vertices
        return [Segment(verts[i], verts[(i + 1) % len(verts)]) for i in range(len(verts))]

    @property
    def area(self) -> float:
        """Unsigned area of the polygon (shoelace formula)."""
        return abs(self._signed_area())

    def _signed_area(self) -> float:
        total = 0.0
        verts = self._vertices
        for i, vertex in enumerate(verts):
            nxt = verts[(i + 1) % len(verts)]
            total += vertex.x * nxt.y - nxt.x * vertex.y
        return total / 2.0

    @property
    def centroid(self) -> Point:
        """Centroid (centre of mass) of the polygon."""
        signed = self._signed_area()
        if abs(signed) < 1e-15:
            xs = [v.x for v in self._vertices]
            ys = [v.y for v in self._vertices]
            return Point(sum(xs) / len(xs), sum(ys) / len(ys))
        cx = 0.0
        cy = 0.0
        verts = self._vertices
        for i, vertex in enumerate(verts):
            nxt = verts[(i + 1) % len(verts)]
            cross = vertex.x * nxt.y - nxt.x * vertex.y
            cx += (vertex.x + nxt.x) * cross
            cy += (vertex.y + nxt.y) * cross
        return Point(cx / (6.0 * signed), cy / (6.0 * signed))

    def contains(self, point: Point, include_boundary: bool = True) -> bool:
        """Point-in-polygon test using the ray-casting algorithm."""
        if self.on_boundary(point):
            return include_boundary
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            vi, vj = verts[i], verts[j]
            intersects = ((vi.y > point.y) != (vj.y > point.y)) and (
                point.x < (vj.x - vi.x) * (point.y - vi.y) / (vj.y - vi.y) + vi.x
            )
            if intersects:
                inside = not inside
            j = i
        return inside

    def on_boundary(self, point: Point, tolerance: float = 1e-9) -> bool:
        """True when ``point`` lies on the polygon's boundary."""
        return any(edge.contains_point(point, tolerance) for edge in self.edges)

    def intersects_segment(self, segment: Segment) -> bool:
        """True when ``segment`` crosses any edge of the polygon."""
        return any(edge.intersects(segment) for edge in self.edges)

    def expanded(self, margin: float) -> "Polygon":
        """Return the polygon scaled outward from its centroid by ``margin`` metres.

        This is an approximation of a buffer operation adequate for the
        convex building outlines used by the virtual fence; it moves each
        vertex radially away from the centroid.
        """
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin!r}")
        centre = self.centroid
        new_vertices = []
        for vertex in self._vertices:
            direction = vertex - centre
            length = direction.length
            if length < 1e-12:
                new_vertices.append(vertex)
                continue
            scale = (length + margin) / length
            new_vertices.append(Point(centre.x + direction.dx * scale,
                                      centre.y + direction.dy * scale))
        return Polygon(new_vertices)

    @staticmethod
    def rectangle(x_min: float, y_min: float, x_max: float, y_max: float) -> "Polygon":
        """Create an axis-aligned rectangular polygon."""
        if x_max <= x_min or y_max <= y_min:
            raise ValueError("rectangle must have positive width and height")
        return Polygon([
            Point(x_min, y_min),
            Point(x_max, y_min),
            Point(x_max, y_max),
            Point(x_min, y_max),
        ])

    @staticmethod
    def regular(centre: Point, radius: float, num_sides: int,
                rotation_deg: float = 0.0) -> "Polygon":
        """Create a regular polygon with ``num_sides`` vertices on a circle."""
        if num_sides < 3:
            raise ValueError(f"a regular polygon needs at least 3 sides, got {num_sides}")
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius!r}")
        vertices = []
        for k in range(num_sides):
            angle = math.radians(rotation_deg) + 2.0 * math.pi * k / num_sides
            vertices.append(Point(centre.x + radius * math.cos(angle),
                                  centre.y + radius * math.sin(angle)))
        return Polygon(vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.2f} m^2)"


def convex_hull(points: Iterable[Point]) -> Polygon:
    """Convex hull of a set of points (Andrew's monotone chain)."""
    unique = sorted({(p.x, p.y) for p in points})
    if len(unique) < 3:
        raise ValueError("convex hull needs at least 3 distinct points")

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: List[Tuple[float, float]] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Tuple[float, float]] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    return Polygon([Point(x, y) for x, y in hull])
