"""2-D geometry primitives used by the testbed environment and ray tracer."""

from repro.geometry.point import Point, Vector
from repro.geometry.segment import Segment
from repro.geometry.polygon import Polygon
from repro.geometry.room import Obstacle, Room, Wall

__all__ = [
    "Point",
    "Vector",
    "Segment",
    "Polygon",
    "Wall",
    "Obstacle",
    "Room",
]
