"""2-D points and vectors.

The testbed floor plan (Figure 4 of the paper) is planar; 3-D localisation is
listed as future work, so the geometry layer is deliberately two-dimensional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class Point:
    """A point in the 2-D floor plan, coordinates in metres."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point") -> float:
        """Bearing from this point towards ``other`` in degrees, [0, 360).

        Zero degrees points along +x and bearings increase counter-clockwise,
        matching the Figure 4 floor-plan convention.
        """
        dx = other.x - self.x
        dy = other.y - self.y
        if math.isclose(dx, 0.0, abs_tol=1e-15) and math.isclose(dy, 0.0, abs_tol=1e-15):
            raise ValueError("bearing is undefined for coincident points")
        return math.degrees(math.atan2(dy, dx)) % 360.0

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def to_array(self) -> np.ndarray:
        """Return the point as a length-2 numpy array."""
        return np.array([self.x, self.y], dtype=float)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Vector") -> "Point":
        if not isinstance(other, Vector):
            return NotImplemented
        return Point(self.x + other.dx, self.y + other.dy)

    def __sub__(self, other: "Point") -> "Vector":
        if not isinstance(other, Point):
            return NotImplemented
        return Vector(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Vector:
    """A displacement in the 2-D plane, components in metres."""

    dx: float
    dy: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.dx) and math.isfinite(self.dy)):
            raise ValueError(f"vector components must be finite, got ({self.dx}, {self.dy})")

    @property
    def length(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.dx, self.dy)

    def normalized(self) -> "Vector":
        """Return a unit-length vector in the same direction.

        Raises
        ------
        ValueError
            If the vector has (near) zero length.
        """
        length = self.length
        if length < 1e-15:
            raise ValueError("cannot normalise a zero-length vector")
        return Vector(self.dx / length, self.dy / length)

    def dot(self, other: "Vector") -> float:
        """Dot product with ``other``."""
        return self.dx * other.dx + self.dy * other.dy

    def cross(self, other: "Vector") -> float:
        """Z-component of the cross product with ``other``."""
        return self.dx * other.dy - self.dy * other.dx

    def perpendicular(self) -> "Vector":
        """Return the vector rotated by +90 degrees."""
        return Vector(-self.dy, self.dx)

    def scaled(self, factor: float) -> "Vector":
        """Return the vector scaled by ``factor``."""
        return Vector(self.dx * factor, self.dy * factor)

    def angle_deg(self) -> float:
        """Direction of the vector in degrees, [0, 360)."""
        if self.length < 1e-15:
            raise ValueError("direction is undefined for a zero-length vector")
        return math.degrees(math.atan2(self.dy, self.dx)) % 360.0

    @staticmethod
    def from_angle_deg(angle_deg: float, length: float = 1.0) -> "Vector":
        """Create a vector pointing at ``angle_deg`` with the given ``length``."""
        radians = math.radians(angle_deg)
        return Vector(length * math.cos(radians), length * math.sin(radians))

    def __add__(self, other: "Vector") -> "Vector":
        if not isinstance(other, Vector):
            return NotImplemented
        return Vector(self.dx + other.dx, self.dy + other.dy)

    def __sub__(self, other: "Vector") -> "Vector":
        if not isinstance(other, Vector):
            return NotImplemented
        return Vector(self.dx - other.dx, self.dy - other.dy)

    def __neg__(self) -> "Vector":
        return Vector(-self.dx, -self.dy)
