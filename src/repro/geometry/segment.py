"""Line segments: intersection tests and mirror reflections.

Segments model walls and obstacle faces in the testbed.  The ray tracer uses
segment intersection for line-of-sight/blockage checks and point mirroring for
the image method used to construct single-bounce reflection paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point, Vector

_EPS = 1e-12


@dataclass(frozen=True)
class Segment:
    """A finite line segment between two points in the floor plan."""

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if self.start.distance_to(self.end) < _EPS:
            raise ValueError("segment endpoints must be distinct")

    @property
    def length(self) -> float:
        """Length of the segment in metres."""
        return self.start.distance_to(self.end)

    @property
    def direction(self) -> Vector:
        """Unit vector pointing from ``start`` to ``end``."""
        return (self.end - self.start).normalized()

    @property
    def normal(self) -> Vector:
        """Unit vector perpendicular to the segment."""
        return self.direction.perpendicular()

    @property
    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def intersection(self, other: "Segment") -> Optional[Point]:
        """Return the intersection point with ``other`` or ``None``.

        Touching at endpoints counts as an intersection.  Collinear overlapping
        segments return ``None`` (treated as grazing, not crossing), which is
        the behaviour the blockage test wants: a ray sliding exactly along a
        wall face is not considered blocked by it.
        """
        p = self.start
        r = self.end - self.start
        q = other.start
        s = other.end - other.start
        denom = r.cross(s)
        q_minus_p = q - p
        if abs(denom) < _EPS:
            return None
        t = q_minus_p.cross(s) / denom
        u = q_minus_p.cross(r) / denom
        if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
            return Point(p.x + t * r.dx, p.y + t * r.dy)
        return None

    def intersects(self, other: "Segment") -> bool:
        """True when this segment crosses (or touches) ``other``."""
        return self.intersection(other) is not None

    def contains_point(self, point: Point, tolerance: float = 1e-9) -> bool:
        """True when ``point`` lies on the segment within ``tolerance`` metres."""
        to_point = point - self.start
        direction = self.end - self.start
        cross = abs(direction.cross(to_point))
        if cross / max(self.length, _EPS) > tolerance:
            return False
        dot = direction.dot(to_point)
        return -tolerance <= dot <= direction.dot(direction) + tolerance

    def mirror_point(self, point: Point) -> Point:
        """Mirror ``point`` across the infinite line containing this segment.

        This is the core of the image method: the reflection of a transmitter
        in a wall is its mirror image, and the reflected path is the straight
        line from the image to the receiver.
        """
        direction = self.direction
        to_point = point - self.start
        along = direction.scaled(to_point.dot(direction))
        foot = self.start + along
        return Point(2.0 * foot.x - point.x, 2.0 * foot.y - point.y)

    def distance_to_point(self, point: Point) -> float:
        """Shortest distance from ``point`` to the segment."""
        direction = self.end - self.start
        to_point = point - self.start
        t = to_point.dot(direction) / direction.dot(direction)
        t = min(max(t, 0.0), 1.0)
        closest = Point(self.start.x + t * direction.dx, self.start.y + t * direction.dy)
        return closest.distance_to(point)

    def angle_deg(self) -> float:
        """Orientation of the segment in degrees, [0, 360)."""
        return self.direction.angle_deg()

    def reflection_point(self, source: Point, target: Point) -> Optional[Point]:
        """Specular reflection point on this segment for a source/target pair.

        Returns the point on the segment where a ray from ``source`` bounces to
        reach ``target``, or ``None`` when the specular point falls outside the
        segment (no single-bounce reflection off this face exists).
        """
        image = self.mirror_point(source)
        if image.distance_to(target) < _EPS:
            return None
        try:
            path = Segment(image, target)
        except ValueError:
            return None
        intersection = self.intersection(path)
        if intersection is None:
            return None
        return intersection


def reflect_direction(direction: Vector, surface: Segment) -> Vector:
    """Reflect a propagation ``direction`` off a ``surface`` segment."""
    normal = surface.normal
    dot = direction.dot(normal)
    reflected = direction - normal.scaled(2.0 * dot)
    if reflected.length < _EPS:
        raise ValueError("cannot reflect a zero-length direction")
    return reflected


def path_length(*points: Point) -> float:
    """Total length of the polyline through ``points``."""
    if len(points) < 2:
        raise ValueError("a path needs at least two points")
    total = 0.0
    for first, second in zip(points[:-1], points[1:]):
        total += first.distance_to(second)
    return total


def almost_equal_points(a: Point, b: Point, tolerance: float = 1e-9) -> bool:
    """True when two points coincide within ``tolerance`` metres."""
    return math.hypot(a.x - b.x, a.y - b.y) <= tolerance
