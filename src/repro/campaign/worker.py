"""File-queue campaign worker: claim shards, execute, persist records.

``python -m repro worker --queue DIR`` runs this loop against a campaign
result store (``DIR`` is the same directory the coordinator was given via
``--out``).  Any number of workers — on this host or any host that mounts the
store's filesystem — drain the queue cooperatively:

1. wait for the coordinator's ``ready`` marker (the queue may not exist yet);
2. claim one task via atomic rename (``queue/tasks`` -> ``queue/leases``);
3. execute the shard and write its record durably into ``shards/``;
4. release the lease and go back to 2.

A worker that dies mid-shard simply leaves its lease behind; the coordinator
re-queues it once the lease times out.  Because shards are pure functions of
``(spec, shard)``, a shard executed twice (a slow worker racing its own
re-queued task) writes byte-compatible records and the merged result is
unaffected.

Shard *failures* are terminal, not retried: the worker moves the task to
``queue/failed`` with the traceback so the coordinator can report it instead
of spinning the queue forever on a deterministic error.
"""

from __future__ import annotations

import sys
import time
import traceback
from pathlib import Path
from typing import Optional, Union

from repro.campaign.backends import FileQueue
from repro.campaign.engine import execute_shard
from repro.campaign.spec import ShardSpec
from repro.campaign.store import ResultStore

__all__ = ["run_worker"]


def _log(message: str, quiet: bool) -> None:
    if not quiet:
        sys.stderr.write(f"[worker] {message}\n")


def run_worker(queue_dir: Union[str, Path], poll_s: float = 0.2,
               max_shards: Optional[int] = None,
               exit_when_empty: bool = False,
               startup_timeout_s: float = 60.0,
               quiet: bool = False) -> int:
    """Drain a file-queue campaign; returns the number of shards executed.

    Parameters
    ----------
    queue_dir:
        The campaign's result-store directory (the coordinator's ``--out``).
    poll_s:
        Sleep between polls while the queue is empty or not yet ready.
    max_shards:
        Stop after executing this many shards (``None``: unbounded).
    exit_when_empty:
        Exit once the queue is ready and holds no pending task, instead of
        waiting for more work.  This is the mode CI and tests use; a
        long-lived fleet worker omits it and is simply terminated.
    startup_timeout_s:
        With ``exit_when_empty``, how long to wait for the queue to become
        ready before giving up (covers workers started before the
        coordinator); expiry raises :class:`TimeoutError` so a misconfigured
        ``--queue`` path cannot masquerade as a successful drain.
    """
    if poll_s <= 0:
        raise ValueError("poll_s must be positive")
    store = ResultStore(queue_dir)
    queue = FileQueue(store.root)
    started = time.monotonic()
    executed = 0
    spec = None
    while True:
        if not queue.ready:
            if exit_when_empty and time.monotonic() - started > startup_timeout_s:
                raise TimeoutError(
                    f"queue at {queue.root} never became ready within "
                    f"{startup_timeout_s:.0f}s (wrong --queue path, or no "
                    "coordinator running?)")
            time.sleep(poll_s)
            continue
        lease = queue.claim()
        if lease is None:
            if exit_when_empty:
                _log(f"queue drained after {executed} shard(s); exiting", quiet)
                return executed
            time.sleep(poll_s)
            continue
        if spec is None:
            spec = store.require_spec()
        try:
            shard = ShardSpec.load_json(lease)
        except FileNotFoundError:
            # The coordinator deemed our lease expired and re-queued it
            # between the claim and the read; the shard is someone else's
            # now — move on rather than dying.
            continue
        try:
            record = execute_shard(spec, shard)
        except BaseException:
            queue.record_failure(lease, traceback.format_exc())
            _log(f"shard {shard.index} failed (recorded for the coordinator)",
                 quiet)
            continue
        store.save_record(record)
        queue.release(lease)
        executed += 1
        _log(f"shard {record.index} done in {record.elapsed_s:.2f}s "
             f"(total {executed})", quiet)
        if max_shards is not None and executed >= max_shards:
            _log(f"reached max-shards={max_shards}; exiting", quiet)
            return executed
