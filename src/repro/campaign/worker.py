"""File-queue campaign worker: claim shards, execute, persist records.

``python -m repro worker --queue DIR`` runs this loop against a campaign
result store (``DIR`` is the same directory the coordinator was given via
``--out``).  Any number of workers — on this host or any host that mounts the
store's filesystem — drain the queue cooperatively:

1. wait for the coordinator's ``ready`` marker (the queue may not exist yet);
2. claim one task via atomic rename (``queue/tasks`` -> ``queue/leases``);
3. heartbeat the lease every ``--heartbeat`` seconds while the shard runs,
   so the coordinator can tell slow-but-alive from dead;
4. execute the shard and write its record durably into ``shards/``;
5. release the lease and go back to 2.

A worker that dies mid-shard leaves a lease whose heartbeat goes silent; the
coordinator re-queues it once the staleness exceeds the lease timeout.
Because shards are pure functions of ``(spec, shard)``, a shard executed
twice — a re-queued crash, or a speculative straggler re-dispatch — writes
byte-compatible records and the merged result is unaffected.

Shard *failures* are retried under the queue's persisted
:class:`~repro.campaign.retry.RetryPolicy`: the worker bumps the shard's
attempt count in the store, re-enqueues the task deferred by the policy's
backoff, and — once the budget is exhausted — parks the shard in the store's
``quarantine/`` directory with its traceback.  The coordinator decides
whether quarantine fails the campaign; the worker just reports it in its
exit code.

Deterministic chaos: when ``$REPRO_FAULT_PLAN`` names a fault plan (see
:mod:`repro.campaign.faults`), the worker injects the plan's crashes and
heartbeat delays at the exact production seams — which is how the chaos
suite proves every recovery path above against real subprocesses.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.campaign.backends import FileQueue
from repro.campaign.engine import execute_shard
from repro.campaign.faults import (
    CRASH_EXIT_BEFORE_RECORD,
    CRASH_EXIT_MID_WRITE,
    ENV_WORKER_ID,
    KIND_CRASH_MID_WRITE,
    FaultInjector,
    default_worker_id,
)
from repro.campaign.spec import ShardSpec
from repro.campaign.store import QuarantineEntry, ResultStore, ShardRecord

__all__ = ["WorkerResult", "run_worker"]

#: ``python -m repro worker`` exit codes (documented in ``--help``).
EXIT_DRAINED = 0
EXIT_STARTUP_TIMEOUT = 3
EXIT_SHARD_FAILED = 4


@dataclass(frozen=True)
class WorkerResult:
    """What one worker run accomplished."""

    #: Shards executed to a persisted record.
    executed: int
    #: Shards this worker parked in quarantine (budget exhausted).
    quarantined: int

    @property
    def exit_code(self) -> int:
        """0 drained clean, 4 when any shard terminally failed."""
        return EXIT_SHARD_FAILED if self.quarantined else EXIT_DRAINED


class _Heartbeat:
    """Background thread atomically touching a lease's heartbeat beacon.

    ``delay_s`` suppresses the first beats — the ``delay-heartbeat`` fault:
    the worker is alive but silent, which the coordinator must treat as dead
    once the silence outlives the lease timeout.
    """

    def __init__(self, queue: FileQueue, lease: Path, interval_s: float,
                 delay_s: float = 0.0) -> None:
        self._queue = queue
        self._lease = lease
        self._interval_s = interval_s
        self._delay_s = delay_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        if self._delay_s > 0 and self._stop.wait(self._delay_s):
            return
        self._queue.beat(self._lease)
        while not self._stop.wait(self._interval_s):
            self._queue.beat(self._lease)


def _log(message: str, quiet: bool) -> None:
    if not quiet:
        sys.stderr.write(f"[worker] {message}\n")


def _crash(kind: str, record: ShardRecord, store: ResultStore) -> None:
    """Perform an injected crash (never returns).

    ``crash-mid-write`` first drops a torn partial-record artifact — the
    debris a *non-atomic* writer would leave when killed — into the shard
    directory.  It deliberately bypasses the atomic-write idiom: the chaos
    suite's point is that such debris never matches the store's
    ``shard-*.json`` listing and therefore never corrupts a campaign.
    ``os._exit`` stands in for kill -9: no cleanup, no flush, no release.
    """
    if kind == KIND_CRASH_MID_WRITE:
        target = store.shard_path(record.index)
        target.parent.mkdir(parents=True, exist_ok=True)
        torn = target.with_name(f"{target.name}.{os.getpid()}.torn.tmp")
        text = record.to_json()
        torn.write_text(text[:max(1, len(text) // 2)],  # repro-lint: disable=atomic-write
                        encoding="utf-8")
        os._exit(CRASH_EXIT_MID_WRITE)
    os._exit(CRASH_EXIT_BEFORE_RECORD)


def run_worker(queue_dir: Union[str, Path], poll_s: float = 0.2,
               max_shards: Optional[int] = None,
               exit_when_empty: bool = False,
               startup_timeout_s: float = 60.0,
               heartbeat_s: float = 1.0,
               worker_id: Optional[str] = None,
               quiet: bool = False) -> WorkerResult:
    """Drain a file-queue campaign; returns a :class:`WorkerResult`.

    Parameters
    ----------
    queue_dir:
        The campaign's result-store directory (the coordinator's ``--out``).
    poll_s:
        Sleep between polls while the queue is empty or not yet ready.
    max_shards:
        Stop after executing this many shards (``None``: unbounded).
    exit_when_empty:
        Exit once the queue is ready and holds no pending task, instead of
        waiting for more work.  This is the mode CI and tests use; a
        long-lived fleet worker omits it and is simply terminated.
    startup_timeout_s:
        With ``exit_when_empty``, how long to wait for the queue to become
        ready before giving up (covers workers started before the
        coordinator); expiry raises :class:`TimeoutError` so a misconfigured
        ``--queue`` path cannot masquerade as a successful drain.
    heartbeat_s:
        Interval between heartbeat touches while executing a shard.  Keep it
        well under the coordinator's lease timeout — the heartbeat is what
        distinguishes this worker's slow shard from a dead worker's orphan.
    worker_id:
        Identity recorded in quarantine entries and matched against
        worker-addressed faults; defaults to ``$REPRO_WORKER_ID`` or
        ``<host>-<pid>``.
    """
    if poll_s <= 0:
        raise ValueError("poll_s must be positive")
    if heartbeat_s <= 0:
        raise ValueError("heartbeat_s must be positive")
    store = ResultStore(queue_dir)
    queue = FileQueue(store.root)
    if worker_id is None:
        worker_id = default_worker_id()
    # Publish the identity so faults addressed by worker id also match when
    # evaluated deeper in the stack (execute_shard's injection point).
    os.environ[ENV_WORKER_ID] = worker_id
    injector = FaultInjector.from_env(worker_id=worker_id)
    started = time.monotonic()
    executed = 0
    quarantined = 0
    retry = None
    spec = None
    while True:
        if not queue.ready:
            if exit_when_empty and time.monotonic() - started > startup_timeout_s:
                raise TimeoutError(
                    f"queue at {queue.root} never became ready within "
                    f"{startup_timeout_s:.0f}s (wrong --queue path, or no "
                    "coordinator running?)")
            time.sleep(poll_s)
            continue
        lease = queue.claim()
        if lease is None:
            if exit_when_empty and not queue.has_pending_tasks:
                _log(f"queue drained after {executed} shard(s); exiting", quiet)
                return WorkerResult(executed=executed, quarantined=quarantined)
            time.sleep(poll_s)
            continue
        if spec is None:
            spec = store.require_spec()
        if retry is None:
            retry = queue.load_retry()
        try:
            shard = ShardSpec.load_json(lease)
        except FileNotFoundError:
            # The coordinator deemed our lease expired and re-queued it
            # between the claim and the read; the shard is someone else's
            # now — move on rather than dying.
            continue
        if store.shard_path(shard.index).exists():
            # A stale duplicate — the shard landed while its speculative
            # re-dispatch (or re-queued task) sat in the queue.  Drain it.
            queue.release(lease)
            continue
        delay_s = injector.heartbeat_delay_s(shard.index) if injector else 0.0
        try:
            with _Heartbeat(queue, lease, heartbeat_s, delay_s=delay_s):
                record = execute_shard(spec, shard)
        except BaseException:
            trace = traceback.format_exc()
            attempts = store.bump_attempts(shard.index, trace)
            if retry.exhausted(attempts):
                store.save_quarantine(QuarantineEntry(
                    index=shard.index, attempts=attempts, error=trace,
                    worker=worker_id, shard=shard.to_dict()))
                queue.release(lease)
                quarantined += 1
                _log(f"shard {shard.index} quarantined after {attempts} "
                     "attempt(s)", quiet)
            else:
                backoff = retry.backoff_s(shard.seed, attempts)
                queue.requeue_with_backoff(lease, backoff)
                _log(f"shard {shard.index} failed (attempt {attempts}/"
                     f"{retry.max_attempts}); re-queued with "
                     f"{backoff:.2f}s backoff", quiet)
            continue
        crash = injector.crash_kind(shard.index) if injector else None
        if crash is not None:
            _crash(crash, record, store)
        store.save_record(record)
        queue.release(lease)
        executed += 1
        _log(f"shard {record.index} done in {record.elapsed_s:.2f}s "
             f"(total {executed})", quiet)
        if max_shards is not None and executed >= max_shards:
            _log(f"reached max-shards={max_shards}; exiting", quiet)
            return WorkerResult(executed=executed, quarantined=quarantined)
