"""Campaign adapters: the glue between experiments and the campaign engine.

A :class:`CampaignAdapter` packages everything the engine needs to run one
experiment as a sharded sweep: how to execute a single shard, how to reduce
one replicate's shard records into the experiment's result dataclass, the
record/result types (for JSON revival across process and disk boundaries),
and the experiment's default campaign grid.

The :data:`CAMPAIGNS` registry maps experiment names to adapters; the
``python -m repro`` command line and the engine both resolve names through
it, with the registries' usual did-you-mean errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple, Type

from repro.api.registry import Registry
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.experiments.ablations import (
    CalibrationAblation,
    CalibrationShard,
    EstimatorComparison,
    EstimatorComparisonShard,
    PacketsPerSignatureShard,
    PacketsPerSignatureSweep,
    SnrShard,
    SnrSweep,
    calibration_ablation_campaign,
    estimator_comparison_campaign,
    merge_calibration,
    merge_estimator_comparison,
    merge_packets_per_signature,
    merge_snr_sweep,
    packets_per_signature_campaign,
    run_calibration_shard,
    run_estimator_comparison_shard,
    run_packets_per_signature_shard,
    run_snr_shard,
    snr_sweep_campaign,
)
from repro.experiments.attack_matrix import (
    AttackMatrixResult,
    AttackMatrixShard,
    cfo_drift_eval_campaign,
    merge_attack_matrix,
    reflector_eval_campaign,
    replay_eval_campaign,
    run_attack_matrix_shard,
    swarm_eval_campaign,
)
from repro.experiments.beamforming_eval import (
    BeamformingResult,
    BeamformingShard,
    beamforming_campaign,
    merge_beamforming,
    run_beamforming_shard,
)
from repro.experiments.fence_eval import (
    FenceCase,
    FenceEvaluation,
    fence_eval_campaign,
    merge_fence_eval,
    run_fence_shard,
)
from repro.experiments.figure5 import (
    ClientBearingRow,
    Figure5Result,
    figure5_campaign,
    merge_figure5,
    run_figure5_shard,
)
from repro.experiments.figure6 import (
    ClientStability,
    Figure6Result,
    figure6_campaign,
    merge_figure6,
    run_figure6_shard,
)
from repro.experiments.figure7 import (
    AntennaCountRow,
    Figure7Result,
    figure7_campaign,
    merge_figure7,
    run_figure7_shard,
)
from repro.experiments.mobility import (
    MobilityResult,
    MobilitySample,
    merge_mobility,
    mobility_campaign,
    run_mobility_shard,
)
from repro.experiments.roc import (
    RocShardScores,
    SpoofingRoc,
    merge_roc,
    roc_campaign,
    run_roc_shard,
)
from repro.experiments.spoofing_eval import (
    SpoofingEvalShard,
    SpoofingEvaluation,
    merge_spoofing_eval,
    run_spoofing_eval_shard,
    spoofing_eval_campaign,
)

__all__ = ["CAMPAIGNS", "CampaignAdapter"]


@dataclass(frozen=True)
class CampaignAdapter:
    """One experiment's campaign wiring."""

    #: Canonical experiment name (matches the registry key).
    name: str
    #: Execute one shard; returns the shard's record payload.
    run_shard: Callable[[CampaignSpec, ShardSpec], Any]
    #: Reduce one replicate's records (in point order) into the result.
    merge: Callable[[CampaignSpec, Sequence[Any]], Any]
    #: Dataclass type of the per-shard record (for JSON revival).
    shard_type: Type
    #: Dataclass type of the merged result (for JSON revival).
    result_type: Type
    #: Build the experiment's default campaign spec.
    default_spec: Callable[..., CampaignSpec]
    #: The axis names this experiment shards over.  A spec gridding any
    #: other axis is rejected before execution: the shard runners slice the
    #: serial capture sequence by grid-point index, so an unknown axis would
    #: silently multiply shards and desynchronise that slice arithmetic.
    axis_names: Tuple[str, ...] = ()

    def validate_axes(self, spec: CampaignSpec) -> None:
        """Reject axes the experiment's shard runner does not understand."""
        unknown = sorted(set(spec.axes) - set(self.axis_names))
        if unknown:
            raise ValueError(
                f"campaign experiment {self.name!r} does not shard over "
                f"axis(es) {unknown}; supported: {sorted(self.axis_names)}")


CAMPAIGNS: Registry[CampaignAdapter] = Registry("campaign experiment")

CAMPAIGNS.register("figure5", CampaignAdapter(
    name="figure5",
    run_shard=run_figure5_shard,
    merge=merge_figure5,
    shard_type=ClientBearingRow,
    result_type=Figure5Result,
    default_spec=figure5_campaign,
    axis_names=("client_id",),
))
CAMPAIGNS.register("figure6", CampaignAdapter(
    name="figure6",
    run_shard=run_figure6_shard,
    merge=merge_figure6,
    shard_type=ClientStability,
    result_type=Figure6Result,
    default_spec=figure6_campaign,
    axis_names=("client_id",),
))
CAMPAIGNS.register("figure7", CampaignAdapter(
    name="figure7",
    run_shard=run_figure7_shard,
    merge=merge_figure7,
    shard_type=AntennaCountRow,
    result_type=Figure7Result,
    default_spec=figure7_campaign,
    axis_names=("num_antennas",),
))
CAMPAIGNS.register("roc", CampaignAdapter(
    name="roc",
    run_shard=run_roc_shard,
    merge=merge_roc,
    shard_type=RocShardScores,
    result_type=SpoofingRoc,
    default_spec=roc_campaign,
    axis_names=("population",),
), aliases=("spoofing_roc",))
CAMPAIGNS.register("spoofing_eval", CampaignAdapter(
    name="spoofing_eval",
    run_shard=run_spoofing_eval_shard,
    merge=merge_spoofing_eval,
    shard_type=SpoofingEvalShard,
    result_type=SpoofingEvaluation,
    default_spec=spoofing_eval_campaign,
    axis_names=("population",),
), aliases=("spoofing",))
CAMPAIGNS.register("calibration_ablation", CampaignAdapter(
    name="calibration_ablation",
    run_shard=run_calibration_shard,
    merge=merge_calibration,
    shard_type=CalibrationShard,
    result_type=CalibrationAblation,
    default_spec=calibration_ablation_campaign,
    axis_names=("client_id",),
))
CAMPAIGNS.register("estimator_comparison", CampaignAdapter(
    name="estimator_comparison",
    run_shard=run_estimator_comparison_shard,
    merge=merge_estimator_comparison,
    shard_type=EstimatorComparisonShard,
    result_type=EstimatorComparison,
    default_spec=estimator_comparison_campaign,
    axis_names=("client_id",),
))
CAMPAIGNS.register("snr_sweep", CampaignAdapter(
    name="snr_sweep",
    run_shard=run_snr_shard,
    merge=merge_snr_sweep,
    shard_type=SnrShard,
    result_type=SnrSweep,
    default_spec=snr_sweep_campaign,
    axis_names=("tx_power_dbm",),
))
CAMPAIGNS.register("packets_per_signature", CampaignAdapter(
    name="packets_per_signature",
    run_shard=run_packets_per_signature_shard,
    merge=merge_packets_per_signature,
    shard_type=PacketsPerSignatureShard,
    result_type=PacketsPerSignatureSweep,
    default_spec=packets_per_signature_campaign,
    axis_names=("training_size",),
))
CAMPAIGNS.register("fence_eval", CampaignAdapter(
    name="fence_eval",
    run_shard=run_fence_shard,
    merge=merge_fence_eval,
    shard_type=FenceCase,
    result_type=FenceEvaluation,
    default_spec=fence_eval_campaign,
    axis_names=("transmitter",),
), aliases=("fence",))
CAMPAIGNS.register("mobility", CampaignAdapter(
    name="mobility",
    run_shard=run_mobility_shard,
    merge=merge_mobility,
    shard_type=MobilitySample,
    result_type=MobilityResult,
    default_spec=mobility_campaign,
    axis_names=("sample",),
))
CAMPAIGNS.register("replay_eval", CampaignAdapter(
    name="replay_eval",
    run_shard=run_attack_matrix_shard,
    merge=merge_attack_matrix,
    shard_type=AttackMatrixShard,
    result_type=AttackMatrixResult,
    default_spec=replay_eval_campaign,
    axis_names=("population",),
), aliases=("replay",))
CAMPAIGNS.register("reflector_eval", CampaignAdapter(
    name="reflector_eval",
    run_shard=run_attack_matrix_shard,
    merge=merge_attack_matrix,
    shard_type=AttackMatrixShard,
    result_type=AttackMatrixResult,
    default_spec=reflector_eval_campaign,
    axis_names=("population",),
), aliases=("reflector", "multipath_mirror_eval"))
CAMPAIGNS.register("swarm_eval", CampaignAdapter(
    name="swarm_eval",
    run_shard=run_attack_matrix_shard,
    merge=merge_attack_matrix,
    shard_type=AttackMatrixShard,
    result_type=AttackMatrixResult,
    default_spec=swarm_eval_campaign,
    axis_names=("population",),
), aliases=("swarm", "coordinated_swarm_eval"))
CAMPAIGNS.register("cfo_drift_eval", CampaignAdapter(
    name="cfo_drift_eval",
    run_shard=run_attack_matrix_shard,
    merge=merge_attack_matrix,
    shard_type=AttackMatrixShard,
    result_type=AttackMatrixResult,
    default_spec=cfo_drift_eval_campaign,
    axis_names=("population",),
), aliases=("cfo_eval",))
CAMPAIGNS.register("beamforming", CampaignAdapter(
    name="beamforming",
    run_shard=run_beamforming_shard,
    merge=merge_beamforming,
    shard_type=BeamformingShard,
    result_type=BeamformingResult,
    default_spec=beamforming_campaign,
    axis_names=("client_id",),
), aliases=("beamforming_eval",))


def get_adapter(experiment: str) -> CampaignAdapter:
    """Resolve a campaign adapter by name (did-you-mean on miss)."""
    return CAMPAIGNS.get(experiment)


def adapter_names() -> List[str]:
    """Sorted canonical campaign-experiment names."""
    return CAMPAIGNS.names()
