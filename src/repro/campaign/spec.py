"""Declarative Monte-Carlo campaign specifications.

A :class:`CampaignSpec` describes a whole experiment sweep as data: which
experiment to run, the parameter axes to grid over (SNR points, client ids,
attacker placements, AoA methods, ...), shared base parameters, and the seed
replicates.  ``compile()`` expands the spec into a canonical list of
:class:`ShardSpec` — one independent unit of work per (replicate, grid point)
— with every shard's seed derived from the campaign master seed in canonical
order at compile time.  Because seed assignment happens before any work is
scheduled, the merged campaign result is bit-identical regardless of how many
workers execute the shards or in which order they finish.

Like :class:`~repro.api.spec.ScenarioSpec`, campaign specs serialise
losslessly to JSON (``to_json``/``from_json``), so sweeps can live in
configuration files and be driven from the ``python -m repro`` command line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.aoa.estimator import EstimatorConfig

from repro.utils.rng import derive_seed, ensure_rng
from repro.utils.serde import JsonSerializable, from_jsonable

__all__ = ["CampaignSpec", "ShardSpec", "estimator_from_params"]


def estimator_from_params(params: Dict[str, Any],
                          key: str = "estimator") -> Optional[EstimatorConfig]:
    """Revive an optional ``EstimatorConfig`` embedded in campaign parameters.

    Campaign base parameters are plain JSON values; an estimator override
    travels as the config's ``to_dict`` form and is rebuilt here (an already
    typed config is passed through, so in-process callers can use either).
    """
    from repro.aoa.estimator import EstimatorConfig

    value = params.get(key)
    if value is None or isinstance(value, EstimatorConfig):
        return value
    return from_jsonable(EstimatorConfig, value)


@dataclass(frozen=True)
class ShardSpec(JsonSerializable):
    """One independent unit of campaign work.

    ``index`` is the shard's global position in the campaign's canonical
    order; ``point`` is its grid-point index within one seed replicate and
    ``replicate`` the replicate's index.  ``seed`` is the scenario seed the
    shard runs under and ``params`` holds the resolved axis values of its
    grid point.
    """

    index: int
    point: int
    replicate: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.index < 0 or self.point < 0 or self.replicate < 0:
            raise ValueError("shard indices must be non-negative")


@dataclass(frozen=True)
class CampaignSpec(JsonSerializable):
    """A sharded Monte-Carlo sweep over one experiment's parameter space."""

    name: str = "campaign"
    #: Campaign-experiment registry name (see :data:`repro.campaign.CAMPAIGNS`).
    experiment: str = "figure5"
    #: Master seed; replicate seeds are derived from it in canonical order.
    seed: int = 42
    #: Number of seed replicates when ``seeds`` is not pinned explicitly.
    num_seeds: int = 1
    #: Explicit replicate seeds; overrides the master-seed derivation.  The
    #: paper-figure campaigns pin ``(42,)`` so the lone replicate reproduces
    #: the serial experiment bit-for-bit.
    seeds: Optional[Tuple[int, ...]] = None
    #: Parameters shared by every shard (the experiment's keyword arguments).
    base: Dict[str, Any] = field(default_factory=dict)
    #: Parameter axes; the grid is their cartesian product in declaration
    #: order (the last axis varies fastest).
    axes: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaigns need a non-empty name")
        if not self.experiment:
            raise ValueError("campaigns need an experiment name")
        if self.num_seeds < 1:
            raise ValueError("num_seeds must be at least 1")
        if self.seeds is not None:
            seeds = tuple(int(seed) for seed in self.seeds)
            if not seeds:
                raise ValueError("explicit seeds must be non-empty")
            object.__setattr__(self, "seeds", seeds)
        axes = {}
        for axis, values in self.axes.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            axes[axis] = values
        object.__setattr__(self, "axes", axes)

    # ------------------------------------------------------------- compilation
    def replicate_seeds(self) -> Tuple[int, ...]:
        """The per-replicate scenario seeds, in canonical replicate order."""
        if self.seeds is not None:
            return self.seeds
        master = ensure_rng(self.seed)
        return tuple(derive_seed(master) for _ in range(self.num_seeds))

    def grid(self) -> List[Dict[str, Any]]:
        """Every grid point (axis-name to value), in canonical point order."""
        if not self.axes:
            return [{}]
        names = list(self.axes)
        return [
            dict(zip(names, values))
            for values in itertools.product(*(self.axes[name] for name in names))
        ]

    def compile(self) -> List[ShardSpec]:
        """Expand the spec into its canonical shard list (replicate-major)."""
        shards: List[ShardSpec] = []
        grid = self.grid()
        for replicate, seed in enumerate(self.replicate_seeds()):
            for point, params in enumerate(grid):
                shards.append(ShardSpec(index=len(shards), point=point,
                                        replicate=replicate, seed=seed,
                                        params=dict(params)))
        return shards

    @property
    def num_shards(self) -> int:
        """Total shard count (replicates times grid points)."""
        num_seeds = len(self.seeds) if self.seeds is not None else self.num_seeds
        return num_seeds * len(self.grid())

    # ------------------------------------------------------------- convenience
    def param(self, name: str, default: Any = None) -> Any:
        """A base parameter with a default (the experiment's own default)."""
        return self.base.get(name, default)

    def with_overrides(self, *, name: Optional[str] = None,
                       base: Optional[Dict[str, Any]] = None,
                       axes: Optional[Dict[str, Tuple[Any, ...]]] = None,
                       seeds: Optional[Tuple[int, ...]] = None,
                       num_seeds: Optional[int] = None) -> "CampaignSpec":
        """A copy with base params merged and axes/seeds replaced."""
        updates: Dict[str, Any] = {}
        if name is not None:
            updates["name"] = name
        if base:
            updates["base"] = {**self.base, **base}
        if axes:
            updates["axes"] = {**self.axes, **axes}
        if seeds is not None:
            updates["seeds"] = seeds
            updates["num_seeds"] = len(seeds)
        elif num_seeds is not None:
            updates["num_seeds"] = num_seeds
            updates["seeds"] = None
        return replace(self, **updates)
