"""Retry policy for campaign shard execution.

One :class:`RetryPolicy` is shared by every executor backend: the pool and
serial backends apply it in-process, and the file-queue coordinator persists
it into the queue (``queue/retry.json``) so detached workers apply the exact
same budget and backoff schedule.

Backoff is exponential with *deterministic* jitter: the jitter draw is seeded
from the shard's own seed and the attempt number via
:func:`repro.utils.rng.spawn_rng`, so two workers retrying the same shard
compute the same delay and a chaos test can assert the schedule exactly.
Retrying is safe because shards are pure functions of ``(spec, shard)`` — a
retried shard writes byte-compatible records, so the merged campaign result
is unaffected by how many attempts a shard needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import spawn_rng
from repro.utils.serde import JsonSerializable

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy(JsonSerializable):
    """How many times a failing shard is re-attempted, and how fast.

    ``max_attempts`` counts *executions*, not retries: the default of 3 means
    one initial attempt plus up to two retries.  A shard that fails
    ``max_attempts`` times is parked in the store's ``quarantine/`` directory
    (with its traceback) instead of failing the campaign; ``strict`` runs
    restore fail-fast.  ``max_attempts=1`` disables retrying entirely.
    """

    max_attempts: int = 3
    #: First-retry delay; attempt ``n`` waits ``base * factor**(n-1)``.
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay (before jitter).
    backoff_max_s: float = 10.0
    #: Jitter fraction: the delay is spread uniformly over ``+/- frac``.
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if not 0 <= self.jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")

    def backoff_s(self, seed: int, attempt: int) -> float:
        """The delay before retrying after failed attempt ``attempt``.

        Deterministic: the jitter generator is spawned from ``seed`` (use the
        shard's seed) with the attempt number as the stream, so the schedule
        is a pure function of ``(seed, attempt)`` on every host.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        base = min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** (attempt - 1))
        if base <= 0 or self.jitter_frac == 0:
            return base
        rng = spawn_rng(int(seed), stream=attempt)
        spread = self.jitter_frac * float(rng.uniform(-1.0, 1.0))
        return base * (1.0 + spread)

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` failed executions used up the budget."""
        return attempts >= self.max_attempts
