"""The ``python -m repro`` command line.

One entry point for the whole results pipeline:

* ``run`` — execute one serial experiment runner and print its table;
* ``campaign`` — run a sharded campaign (by experiment name or from a spec
  JSON file) on an executor backend — in-process, a local process pool, or
  file-queue workers — persisting to a result store;
* ``worker`` — a file-queue worker: claim shards from a campaign store on a
  shared filesystem, execute them, write records (run any number of these,
  on any host that mounts the store);
* ``resume`` — continue a stored campaign, skipping completed shards;
* ``report`` — print the merged results of a stored campaign;
* ``serve`` — stand up the real-time streaming decision service
  (:mod:`repro.serve`): named tenants, JSON-lines TCP + websocket endpoints,
  micro-batched ingest (verify a live stream with
  ``python -m repro.serve.smoke``);
* ``list-scenarios`` — the registered scenarios, campaign experiments, and
  serial runners.

Parameter overrides use ``key=value`` with JSON-literal values
(``--param num_packets=2 --axis client_id=1,2,3``), so anything a campaign
spec can express is reachable from the shell.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api import SCENARIOS
from repro.campaign.adapters import CAMPAIGNS, get_adapter
from repro.campaign.backends import ExecutorBackend, make_backend
from repro.campaign.engine import ProgressCallback, run_campaign
from repro.campaign.progress import CampaignProgress
from repro.campaign.retry import RetryPolicy
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, ShardRecord

__all__ = ["main", "serial_runners"]

#: Rows printed by ``run --profile``'s cumulative-time summary.
PROFILE_TOP_N = 15


def serial_runners() -> Dict[str, Callable[..., Any]]:
    """The serial experiment runners, by campaign-compatible name."""
    from repro import experiments
    from repro.experiments.attack_matrix import (
        run_cfo_drift_eval,
        run_reflector_eval,
        run_replay_eval,
        run_swarm_eval,
    )
    from repro.experiments.fence_eval import run_fence_evaluation
    from repro.experiments.mobility import run_mobility_tracking

    return {
        "replay_eval": run_replay_eval,
        "reflector_eval": run_reflector_eval,
        "swarm_eval": run_swarm_eval,
        "cfo_drift_eval": run_cfo_drift_eval,
        "figure5": experiments.run_figure5,
        "figure6": experiments.run_figure6,
        "figure7": experiments.run_figure7,
        "accuracy": experiments.evaluate_accuracy_claim,
        "roc": experiments.run_spoofing_roc,
        "spoofing_eval": experiments.run_spoofing_evaluation,
        "fence_eval": run_fence_evaluation,
        "mobility": run_mobility_tracking,
        "beamforming": experiments.run_beamforming_evaluation,
        "calibration_ablation": experiments.run_calibration_ablation,
        "estimator_comparison": experiments.run_estimator_comparison,
        "snr_sweep": experiments.run_snr_sweep,
        "packets_per_signature": experiments.run_packets_per_signature_sweep,
    }


# ------------------------------------------------------------------- parsing
def _parse_value(text: str) -> Any:
    """A CLI value: JSON literal when it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignments(pairs: Sequence[str], option: str) -> Dict[str, Any]:
    """Parse repeated ``key=value`` options."""
    values: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, text = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"{option} expects key=value, got {pair!r}")
        values[key] = _parse_value(text)
    return values


def _parse_axes(pairs: Sequence[str]) -> Dict[str, tuple]:
    """Parse repeated ``--axis name=v1,v2,...`` options."""
    axes: Dict[str, tuple] = {}
    for key, text in _parse_assignments(pairs, "--axis").items():
        if isinstance(text, str):
            values = tuple(_parse_value(part) for part in text.split(","))
        elif isinstance(text, list):
            values = tuple(text)
        else:
            values = (text,)
        axes[key] = values
    return axes


def _load_or_build_spec(args: argparse.Namespace) -> CampaignSpec:
    """The campaign spec: from a JSON file or an experiment's default grid.

    Only a ``.json`` path is treated as a spec file, so a stray local file
    that happens to share an experiment's name cannot shadow the registry.
    """
    target = args.experiment
    if target.endswith(".json"):
        try:
            spec = CampaignSpec.load_json(target)
        except FileNotFoundError:
            raise SystemExit(f"campaign spec file not found: {target}") from None
        except (TypeError, ValueError, KeyError) as error:
            raise SystemExit(
                f"cannot load campaign spec {target}: {error}") from error
    else:
        spec = get_adapter(target).default_spec()
    overrides: Dict[str, Any] = {}
    if args.param:
        overrides["base"] = _parse_assignments(args.param, "--param")
    if args.axis:
        overrides["axes"] = _parse_axes(args.axis)
    if args.seeds is not None:
        overrides["seeds"] = tuple(int(seed) for seed in args.seeds.split(","))
    elif args.num_seeds is not None:
        overrides["num_seeds"] = int(args.num_seeds)
    if args.name is not None:
        overrides["name"] = args.name
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


# ------------------------------------------------------------------ printing
def _print(text: str = "") -> None:
    print(text)


def _print_result(result: Any, heading: str) -> None:
    _print(heading)
    table = getattr(result, "as_table", None)
    if callable(table):
        _print(table())
    else:
        _print(result.to_json() if hasattr(result, "to_json")
               else json.dumps(result, indent=2))


def _progress(completed: int, total: int, record: ShardRecord) -> None:
    sys.stderr.write(
        f"[{completed}/{total}] shard {record.index} "
        f"(replicate {record.replicate}, point {record.point}) "
        f"done in {record.elapsed_s:.2f}s\n")


def _eta_progress(spec: CampaignSpec, completed_at_start: int,
                  total: int) -> ProgressCallback:
    """Campaign-level progress lines: completed/total, throughput, ETA."""
    tracker = CampaignProgress(spec.name, spec.experiment, total=total,
                               completed=completed_at_start)

    def callback(completed: int, total_shards: int, record: ShardRecord) -> None:
        tracker.total = total_shards
        tracker.record_completed(completed)
        sys.stderr.write(tracker.format_line() + "\n")

    return callback


def _choose_progress(spec: CampaignSpec,
                     args: argparse.Namespace) -> Optional[ProgressCallback]:
    if args.quiet:
        return None
    if getattr(args, "progress", False):
        completed = 0
        if args.out:
            completed = len(ResultStore(args.out).completed_indices())
        return _eta_progress(spec, completed, spec.num_shards)
    return _progress


def _retry_policy(args: argparse.Namespace) -> Optional[RetryPolicy]:
    """The --max-attempts override as a policy (None keeps the default)."""
    attempts = getattr(args, "max_attempts", None)
    if attempts is None:
        return None
    try:
        return RetryPolicy(max_attempts=attempts)
    except ValueError as error:
        raise SystemExit(f"--max-attempts: {error}") from error


def _build_backend(args: argparse.Namespace) -> Optional[ExecutorBackend]:
    """The explicit --backend choice (None defers to the workers heuristic)."""
    name = getattr(args, "backend", None)
    if name is None:
        return None
    try:
        return make_backend(name, workers=args.workers,
                            lease_timeout_s=args.lease_timeout,
                            retry=_retry_policy(args))
    except KeyError as error:
        raise SystemExit(
            str(error.args[0]) if error.args else str(error)) from error


def _finish_campaign(spec: CampaignSpec, args: argparse.Namespace) -> int:
    store = ResultStore(args.out) if args.out else None
    run = run_campaign(spec, workers=args.workers, store=store,
                       progress=_choose_progress(spec, args),
                       backend=_build_backend(args),
                       retry=_retry_policy(args),
                       strict=getattr(args, "strict", False))
    _print(f"campaign {spec.name!r} ({spec.experiment}): "
           f"{len(run.records)} shard(s), {run.executed} executed, "
           f"{len(run.results)} replicate(s)")
    if store is not None:
        _print(f"result store: {store.root}")
        if run.complete:
            _print(f"merged result: {store.merged_path}")
    if run.quarantined:
        _print(f"QUARANTINED: {len(run.quarantined)} shard(s) exhausted "
               "their retry budget; merged.json withheld")
        for entry in run.quarantined:
            where = (store.quarantine_path(entry.index) if store is not None
                     else "(in-memory)")
            _print(f"  shard {entry.index}: {entry.attempts} attempt(s) "
                   f"[{where}]")
        if store is not None:
            _print(f"re-attempt them with: python -m repro resume {store.root}")
        # Replicate numbering no longer lines up once replicates are
        # skipped; the partial results stay available programmatically.
        return 1
    for replicate, result in enumerate(run.results):
        seed = spec.replicate_seeds()[replicate]
        _print_result(result, f"--- replicate {replicate} (seed {seed}) ---")
    return 0


# ------------------------------------------------------------------ commands
def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    _print("scenarios (repro.api.SCENARIOS):")
    for name in SCENARIOS.names():
        _print(f"  {name}")
    _print("campaign experiments (python -m repro campaign <name>):")
    for name in CAMPAIGNS.names():
        _print(f"  {name}")
    _print("serial experiments (python -m repro run <name>):")
    for name in sorted(serial_runners()):
        _print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runners = serial_runners()
    if args.experiment not in runners:
        known = ", ".join(sorted(runners))
        raise SystemExit(f"unknown experiment {args.experiment!r}; known: {known}")
    kwargs = _parse_assignments(args.param or (), "--param")
    if args.seed is not None:
        kwargs["rng"] = int(args.seed)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = runners[args.experiment](**kwargs)
        finally:
            profiler.disable()
        profile_path = Path(args.profile)
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        _print(f"saved profile: {profile_path} "
               f"(inspect with: python -m pstats {profile_path})")
        _print(f"top {PROFILE_TOP_N} functions by cumulative time:")
        rows = sorted(stats.stats.items(), key=lambda item: item[1][3],
                      reverse=True)
        for (filename, lineno, function), row in rows[:PROFILE_TOP_N]:
            calls, _, _, cumulative = row[:4]
            _print(f"  {cumulative:9.4f}s  {calls:>8} calls  "
                   f"{filename}:{lineno}({function})")
    else:
        result = runners[args.experiment](**kwargs)
    _print_result(result, f"--- {args.experiment} ---")
    if args.json:
        path = Path(args.json)
        result.save_json(path)
        _print(f"saved JSON result: {path}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    return _finish_campaign(_load_or_build_spec(args), args)


def _cmd_resume(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    spec = store.require_spec()
    args.out = args.store
    return _finish_campaign(spec, args)


def _cmd_worker(args: argparse.Namespace) -> int:
    import os

    from repro.campaign.faults import ENV_FAULT_PLAN
    from repro.campaign.worker import EXIT_STARTUP_TIMEOUT, run_worker

    if args.fault_plan:
        # The env var is the activation mechanism (inherited by everything
        # the worker runs); the flag is its CLI spelling.
        os.environ[ENV_FAULT_PLAN] = args.fault_plan
    try:
        result = run_worker(args.queue, poll_s=args.poll,
                            max_shards=args.max_shards,
                            exit_when_empty=args.exit_when_empty,
                            startup_timeout_s=args.startup_timeout,
                            heartbeat_s=args.heartbeat,
                            worker_id=args.worker_id, quiet=args.quiet)
    except TimeoutError as error:
        # A typo'd --queue must not look like a successful drain.
        sys.stderr.write(f"worker: {error}\n")
        return EXIT_STARTUP_TIMEOUT
    return result.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, TenantConfig, run_service

    train = tuple(int(part) for part in args.train.split(",")) \
        if args.train else ()
    try:
        tenants = [TenantConfig.from_cli_arg(text, train=train)
                   for text in args.tenant]
    except (KeyError, ValueError, FileNotFoundError) as error:
        raise SystemExit(f"--tenant: {error}") from error
    config = ServeConfig(
        host=args.host,
        port=args.port,
        ws_port=args.ws_port,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        backlog_capacity=args.backlog,
        announce_path=Path(args.announce) if args.announce else None,
    )
    if not args.quiet:
        names = ", ".join(tenant.name for tenant in tenants)
        sys.stderr.write(f"serving tenant(s) {names} on {config.host}:"
                         f"{config.port or '<ephemeral>'}"
                         + (f" (ws {config.ws_port or '<ephemeral>'})"
                            if config.ws_port is not None else "")
                         + "\n")
        if config.announce_path is not None:
            sys.stderr.write(f"announce file: {config.announce_path}\n")
    run_service(tenants, config)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    spec = store.require_spec()
    merged = store.load_merged()
    if merged is None:
        completed = len(store.completed_indices())
        raise SystemExit(
            f"campaign {spec.name!r} has no merged result yet "
            f"({completed}/{spec.num_shards} shard(s) completed); "
            f"run: python -m repro resume {store.root}")
    adapter = get_adapter(spec.experiment)
    _print(f"campaign {merged.name!r} ({merged.experiment}): "
           f"{merged.num_shards} shard(s), seeds {list(merged.seeds)}")
    for replicate, data in enumerate(merged.results):
        result = adapter.result_type.from_dict(data)
        seed = merged.seeds[replicate]
        _print_result(result, f"--- replicate {replicate} (seed {seed}) ---")
    return 0


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``campaign`` and ``resume``."""
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count: pool processes, or spawned local "
                             "file-queue workers (0 = external workers only)")
    parser.add_argument("--backend", default=None, metavar="BACKEND",
                        help="executor backend: serial, pool, or file-queue "
                             "(default: serial for --workers 1, else pool)")
    parser.add_argument("--lease-timeout", type=float, default=60.0,
                        help="file-queue: seconds a claim may go without a "
                             "heartbeat before it is re-queued (default 60)")
    parser.add_argument("--max-attempts", type=int, default=None,
                        metavar="N",
                        help="executions allowed per shard before it is "
                             "quarantined (default 3; 1 disables retrying)")
    parser.add_argument("--strict", action="store_true",
                        help="fail the campaign when any shard exhausts its "
                             "retry budget, instead of quarantining it and "
                             "merging what completed")
    parser.add_argument("--progress", action="store_true",
                        help="campaign-level progress lines "
                             "(completed/total, throughput, ETA)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")


# --------------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SecureAngle reproduction: experiments, campaigns, reports.")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one serial experiment")
    run.add_argument("experiment", help="experiment name (see list-scenarios)")
    run.add_argument("--seed", type=int, default=None, help="scenario seed")
    run.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="experiment keyword override (JSON literal value)")
    run.add_argument("--json", metavar="PATH",
                     help="also save the result as JSON")
    run.add_argument("--profile", metavar="PATH", default=None,
                     help="profile the run with cProfile: dump stats to PATH "
                          "and print the top functions by cumulative time")
    run.set_defaults(handler=_cmd_run)

    campaign = commands.add_parser(
        "campaign", help="run a sharded multi-process campaign")
    campaign.add_argument("experiment",
                          help="campaign experiment name or spec JSON path")
    campaign.add_argument("--out", metavar="DIR", default=None,
                          help="result-store directory (enables resume)")
    campaign.add_argument("--param", action="append", metavar="KEY=VALUE",
                          help="base parameter override (JSON literal value)")
    campaign.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                          help="replace one parameter axis")
    campaign.add_argument("--seeds", default=None,
                          help="explicit replicate seeds, comma-separated")
    campaign.add_argument("--num-seeds", type=int, default=None,
                          help="derive this many replicate seeds from the master")
    campaign.add_argument("--name", default=None, help="campaign name override")
    _add_execution_options(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    resume = commands.add_parser(
        "resume", help="continue a stored campaign (skips completed shards)")
    resume.add_argument("store", help="result-store directory")
    _add_execution_options(resume)
    resume.set_defaults(handler=_cmd_resume)

    worker = commands.add_parser(
        "worker",
        help="file-queue worker: claim and execute shards from a campaign store",
        description="File-queue worker: claim and execute shards from a "
                    "campaign store. Exit codes: 0 queue drained cleanly; "
                    "3 the queue never became ready within --startup-timeout; "
                    "4 at least one shard exhausted its retry budget and was "
                    "quarantined by this worker.")
    worker.add_argument("--queue", required=True, metavar="DIR",
                        help="the campaign's result-store directory (its --out)")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between polls when idle (default 0.2)")
    worker.add_argument("--max-shards", type=int, default=None,
                        help="exit after executing this many shards")
    worker.add_argument("--exit-when-empty", action="store_true",
                        help="exit once the queue is ready and drained "
                             "(instead of waiting for more work)")
    worker.add_argument("--startup-timeout", type=float, default=60.0,
                        help="with --exit-when-empty, how long to wait for "
                             "the queue to appear (default 60s; expiry exits "
                             "with code 3)")
    worker.add_argument("--heartbeat", type=float, default=1.0,
                        metavar="SECONDS",
                        help="interval between lease-heartbeat touches while "
                             "executing a shard (default 1.0; keep well "
                             "under the coordinator's --lease-timeout)")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="identity recorded in quarantine entries and "
                             "matched by worker-addressed faults "
                             "(default: $REPRO_WORKER_ID or <host>-<pid>)")
    worker.add_argument("--fault-plan", default=None, metavar="PATH",
                        help="activate a deterministic fault-injection plan "
                             "(JSON; equivalent to setting $REPRO_FAULT_PLAN) "
                             "— chaos testing only")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-shard worker logs")
    worker.set_defaults(handler=_cmd_worker)

    report = commands.add_parser(
        "report", help="print the merged results of a stored campaign")
    report.add_argument("store", help="result-store directory")
    report.set_defaults(handler=_cmd_report)

    serve = commands.add_parser(
        "serve",
        help="run the real-time streaming decision service (repro.serve)",
        description="Stand up the streaming decision service: each --tenant "
                    "NAME=SCENARIO compiles a named deployment (scenario "
                    "registry name or a ScenarioSpec .json path), packets "
                    "are ingested as JSON-lines requests over TCP (and "
                    "optionally websocket), micro-batched through the "
                    "run_batch fast path, and decisions stream back live. "
                    "Verify a stream with: python -m repro.serve.smoke "
                    "--announce FILE")
    serve.add_argument("--tenant", action="append", required=True,
                       metavar="NAME=SCENARIO",
                       help="add a tenant (repeatable); SCENARIO is a "
                            "registered scenario name or a spec .json path")
    serve.add_argument("--train", default="", metavar="ID1,ID2,...",
                       help="client ids to train at startup (applies to "
                            "every tenant; default: none)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP JSON-lines port (0 = ephemeral; default 8765)")
    serve.add_argument("--ws-port", type=int, default=None, metavar="PORT",
                       help="also serve websocket on this port (0 = ephemeral; "
                            "default: no websocket endpoint)")
    serve.add_argument("--announce", default=None, metavar="PATH",
                       help="atomically write the bound addresses to this "
                            "JSON file once listening")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="micro-batch size cap (default 16)")
    serve.add_argument("--max-delay-ms", type=float, default=20.0,
                       help="micro-batching latency budget in milliseconds "
                            "(default 20)")
    serve.add_argument("--backlog", type=int, default=1024,
                       help="per-tenant event ring capacity (default 1024)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress startup logs")
    serve.set_defaults(handler=_cmd_serve)

    listing = commands.add_parser(
        "list-scenarios", help="list scenarios, campaigns, and experiments")
    listing.set_defaults(handler=_cmd_list_scenarios)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.handler(args)
