"""Parallel experiment campaigns: sharded multi-process Monte-Carlo sweeps.

Describe a sweep declaratively with :class:`CampaignSpec` (experiment name,
parameter axes, seed replicates), compile it into canonical
:class:`ShardSpec` units, and execute them with :func:`run_campaign` on a
pluggable executor backend — in-process (:class:`SerialBackend`), a local
process pool (:class:`ProcessPoolBackend`), or file-queue workers on any
hosts that share a filesystem (:class:`FileQueueBackend` plus
``python -m repro worker``) — each worker builds its own deployment and runs
the batched engine.  Per-shard seeds are fixed at compile time in canonical
order, so the merged result is bit-identical regardless of backend, worker
count, or scheduling; a :class:`ResultStore` makes runs resumable (atomic
durable per-shard records, skip-on-resume) and carries a ``progress.json``
heartbeat (completed/total shards, throughput, ETA).

Execution is fault-tolerant: failing shards are retried under a shared
:class:`RetryPolicy` (exponential, deterministically jittered backoff) and
parked in the store's quarantine with their tracebacks once the budget is
exhausted; file-queue workers heartbeat their leases so the coordinator
re-queues only dead workers' shards, never slow ones; and tail stragglers
are speculatively re-dispatched (duplicate records are byte-identical, so
whichever lands first wins).  Every recovery path is exercised
deterministically by the chaos suite via :class:`FaultPlan`
(:mod:`repro.campaign.faults`).

The paper's figure and evaluation experiments are registered in
:data:`CAMPAIGNS`; ``python -m repro`` drives everything from the command
line.

>>> from repro.campaign import get_adapter, run_campaign
>>> spec = get_adapter("figure5").default_spec(num_packets=2)
>>> run = run_campaign(spec, workers=4)
>>> run.result.mean_confidence_halfwidth_deg  # == the serial run's, exactly
"""

from repro.campaign.adapters import CAMPAIGNS, CampaignAdapter, get_adapter
from repro.campaign.backends import (
    BACKENDS,
    ExecutorBackend,
    FileQueueBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardFailure,
    make_backend,
    quarantine_summary,
)
from repro.campaign.engine import CampaignRun, execute_shard, run_campaign
from repro.campaign.faults import FaultInjector, FaultPlan, FaultSpec
from repro.campaign.progress import CampaignProgress
from repro.campaign.retry import RetryPolicy
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.campaign.store import (
    CampaignResult,
    QuarantineEntry,
    ResultStore,
    ShardRecord,
    StoreMismatchError,
)
from repro.campaign.worker import WorkerResult, run_worker

__all__ = [
    "BACKENDS",
    "CAMPAIGNS",
    "CampaignAdapter",
    "CampaignProgress",
    "CampaignResult",
    "CampaignRun",
    "CampaignSpec",
    "ExecutorBackend",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FileQueueBackend",
    "ProcessPoolBackend",
    "QuarantineEntry",
    "ResultStore",
    "RetryPolicy",
    "SerialBackend",
    "ShardFailure",
    "ShardRecord",
    "ShardSpec",
    "StoreMismatchError",
    "WorkerResult",
    "execute_shard",
    "get_adapter",
    "make_backend",
    "quarantine_summary",
    "run_campaign",
    "run_worker",
]
