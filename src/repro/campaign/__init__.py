"""Parallel experiment campaigns: sharded multi-process Monte-Carlo sweeps.

Describe a sweep declaratively with :class:`CampaignSpec` (experiment name,
parameter axes, seed replicates), compile it into canonical
:class:`ShardSpec` units, and execute them with :func:`run_campaign` across a
process pool — each worker builds its own deployment and runs the batched
engine.  Per-shard seeds are fixed at compile time in canonical order, so the
merged result is bit-identical regardless of worker count or scheduling; a
:class:`ResultStore` makes runs resumable (atomic per-shard records,
skip-on-resume).

The paper's figure and evaluation experiments are registered in
:data:`CAMPAIGNS`; ``python -m repro`` drives everything from the command
line.

>>> from repro.campaign import get_adapter, run_campaign
>>> spec = get_adapter("figure5").default_spec(num_packets=2)
>>> run = run_campaign(spec, workers=4)
>>> run.result.mean_confidence_halfwidth_deg  # == the serial run's, exactly
"""

from repro.campaign.adapters import CAMPAIGNS, CampaignAdapter, get_adapter
from repro.campaign.engine import CampaignRun, execute_shard, run_campaign
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.campaign.store import (
    CampaignResult,
    ResultStore,
    ShardRecord,
    StoreMismatchError,
)

__all__ = [
    "CAMPAIGNS",
    "CampaignAdapter",
    "CampaignResult",
    "CampaignRun",
    "CampaignSpec",
    "ResultStore",
    "ShardRecord",
    "ShardSpec",
    "StoreMismatchError",
    "execute_shard",
    "get_adapter",
    "run_campaign",
]
