"""Deterministic fault injection for campaign chaos testing.

Every recovery path in the campaign machinery — lease re-queue after a crash,
retry with backoff, quarantine after the budget, heartbeat staleness,
straggler re-dispatch — exists because real fleets fail.  None of them can be
trusted unless CI can *drive* them, with real subprocess workers, on every
push.  This module makes failure a first-class, reproducible input:

* a :class:`FaultPlan` is a JSON document describing which faults to inject
  where (addressed by shard index and/or worker id), built by hand or sampled
  deterministically via :meth:`FaultPlan.sample` (seeded through
  :func:`repro.utils.rng.derive_seed`, like everything else in the project);
* workers activate a plan through the ``REPRO_FAULT_PLAN`` environment
  variable (or the ``--fault-plan`` CLI flag), so chaos tests exercise the
  exact production code path in real worker processes;
* a :class:`FaultInjector` evaluates the plan at the worker's injection
  points.  Firing counts are claimed through ``O_EXCL`` marker files in a
  shared state directory next to the plan, so "crash once, then succeed"
  works across the process boundary the crash itself creates.

Fault kinds:

``transient``
    Raise :class:`TransientFaultError` from shard execution (retried by the
    :class:`~repro.campaign.retry.RetryPolicy` until the budget runs out).
``hang``
    Sleep ``delay_s`` (deterministically jittered) before executing the
    shard — a slow-but-alive worker; its heartbeats must keep the lease.
``delay-heartbeat``
    Suppress the worker's heartbeat for ``delay_s`` seconds — alive but
    silent; the coordinator should treat it as dead and re-queue.
``crash-before-record``
    ``os._exit`` after executing the shard but before its record is written
    (all work lost; the lease must expire and re-queue).
``crash-mid-write``
    Write a torn, non-atomic partial record artifact and ``os._exit`` —
    the kill -9 that the tmp + ``os.replace`` idiom must make harmless.

The crash kinds are honoured by the file-queue worker only (crashing a
process-pool child would just break the pool); ``transient`` and ``hang``
fire inside :func:`~repro.campaign.engine.execute_shard` and therefore cover
every backend.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.utils.rng import derive_seed, ensure_rng
from repro.utils.serde import JsonSerializable

__all__ = [
    "CRASH_KINDS",
    "ENV_FAULT_PLAN",
    "ENV_WORKER_ID",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "TransientFaultError",
]

#: Environment variable naming the fault-plan JSON file to activate.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"
#: Environment variable carrying the worker id (set by ``run_worker`` so
#: nested execution code can match worker-addressed faults).
ENV_WORKER_ID = "REPRO_WORKER_ID"

KIND_TRANSIENT = "transient"
KIND_HANG = "hang"
KIND_DELAY_HEARTBEAT = "delay-heartbeat"
KIND_CRASH_BEFORE_RECORD = "crash-before-record"
KIND_CRASH_MID_WRITE = "crash-mid-write"

#: Every recognised fault kind.
FAULT_KINDS: Tuple[str, ...] = (
    KIND_TRANSIENT, KIND_HANG, KIND_DELAY_HEARTBEAT,
    KIND_CRASH_BEFORE_RECORD, KIND_CRASH_MID_WRITE,
)
#: Kinds that terminate the worker process (file-queue workers only).
CRASH_KINDS: Tuple[str, ...] = (KIND_CRASH_BEFORE_RECORD, KIND_CRASH_MID_WRITE)

#: Exit codes used by the injected crashes (distinct from the worker's own
#: exit codes so a chaos log reads unambiguously).
CRASH_EXIT_BEFORE_RECORD = 70
CRASH_EXIT_MID_WRITE = 71


class TransientFaultError(RuntimeError):
    """The injected transient failure (retryable by design)."""


@dataclass(frozen=True)
class FaultSpec(JsonSerializable):
    """One fault to inject.

    ``shard``/``worker`` address where it fires (``None`` matches any);
    ``times`` bounds how often it fires across *all* processes sharing the
    plan's state directory; ``delay_s`` parameterises the hang / heartbeat
    kinds; ``seed`` drives the deterministic delay jitter.
    """

    kind: str
    shard: Optional[int] = None
    worker: Optional[str] = None
    times: int = 1
    delay_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {known}")
        if self.times < 1:
            raise ValueError("times must be at least 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    def matches(self, shard_index: int, worker_id: Optional[str]) -> bool:
        """Does this fault address ``(shard_index, worker_id)``?"""
        if self.shard is not None and self.shard != shard_index:
            return False
        if self.worker is not None and self.worker != worker_id:
            return False
        return True

    def jittered_delay_s(self) -> float:
        """``delay_s`` stretched deterministically into [1.0x, 1.25x].

        Only ever lengthens the delay, so a chaos test that needs "slower
        than the lease timeout" can reason about the lower bound exactly.
        """
        if self.delay_s == 0:
            return 0.0
        rng = ensure_rng(self.seed)
        return self.delay_s * (1.0 + 0.25 * float(rng.uniform(0.0, 1.0)))


@dataclass(frozen=True)
class FaultPlan(JsonSerializable):
    """A set of faults plus the master seed they were sampled from."""

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def sample(cls, num_shards: int,
               kinds: Tuple[str, ...] = (KIND_TRANSIENT,
                                         KIND_CRASH_BEFORE_RECORD,
                                         KIND_CRASH_MID_WRITE, KIND_HANG),
               fraction: float = 0.25, seed: int = 0, times: int = 1,
               delay_s: float = 1.0) -> "FaultPlan":
        """A deterministic plan hitting ``fraction`` of the shard indices.

        The faulted shard indices are drawn without replacement from a
        generator seeded with ``seed``; kinds rotate over the chosen shards
        and each fault's jitter seed is derived canonically via
        :func:`~repro.utils.rng.derive_seed` — so the same ``(num_shards,
        kinds, fraction, seed)`` always yields the same chaos, on any host.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        count = min(num_shards, max(1, math.ceil(fraction * num_shards)))
        rng = ensure_rng(seed)
        chosen = sorted(int(index) for index in
                        rng.choice(num_shards, size=count, replace=False))
        faults = tuple(
            FaultSpec(kind=kinds[position % len(kinds)], shard=index,
                      times=times, delay_s=delay_s, seed=derive_seed(rng))
            for position, index in enumerate(chosen))
        return cls(seed=seed, faults=faults)

    def faulted_shards(self) -> Tuple[int, ...]:
        """The shard indices this plan addresses (ascending, unique)."""
        return tuple(sorted({fault.shard for fault in self.faults
                             if fault.shard is not None}))


def default_worker_id() -> str:
    """The ambient worker id: ``$REPRO_WORKER_ID`` or ``<host>-<pid>``."""
    ambient = os.environ.get(ENV_WORKER_ID)
    if ambient:
        return ambient
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at a worker's injection points.

    Firing slots are claimed with ``O_CREAT | O_EXCL`` marker files under
    ``state_dir`` — the only primitive that still counts correctly when the
    fault's whole point is to kill the process right after it fires.  The
    state directory defaults to ``<plan-path>.state`` so every process
    reading the same plan shares the same budget.
    """

    def __init__(self, plan: FaultPlan, state_dir: Path,
                 worker_id: Optional[str] = None) -> None:
        self.plan = plan
        self.state_dir = Path(state_dir)
        self.worker_id = worker_id if worker_id is not None else \
            os.environ.get(ENV_WORKER_ID)

    @classmethod
    def from_env(cls, worker_id: Optional[str] = None
                 ) -> Optional["FaultInjector"]:
        """The active injector, or ``None`` when no plan is configured.

        A plan path that does not load is a loud error — a chaos run whose
        faults silently never fire would pass for the wrong reason.
        """
        path = os.environ.get(ENV_FAULT_PLAN)
        if not path:
            return None
        plan_path = Path(path)
        plan = FaultPlan.load_json(plan_path)
        return cls(plan, plan_path.with_name(plan_path.name + ".state"),
                   worker_id=worker_id)

    # ------------------------------------------------------- injection points
    def on_execute(self, shard_index: int) -> None:
        """Shard-execution faults: hang first, then a transient failure."""
        for position, fault in self._matching(shard_index, KIND_HANG):
            if self._claim(position, fault):
                time.sleep(fault.jittered_delay_s())
        for position, fault in self._matching(shard_index, KIND_TRANSIENT):
            if self._claim(position, fault):
                raise TransientFaultError(
                    f"injected transient fault #{position} on shard "
                    f"{shard_index}")

    def crash_kind(self, shard_index: int) -> Optional[str]:
        """The crash to perform after executing ``shard_index``, if any."""
        for position, fault in self._matching(shard_index, *CRASH_KINDS):
            if self._claim(position, fault):
                return fault.kind
        return None

    def heartbeat_delay_s(self, shard_index: int) -> float:
        """Seconds the worker's heartbeat must stay silent for this shard."""
        delay = 0.0
        for position, fault in self._matching(shard_index,
                                              KIND_DELAY_HEARTBEAT):
            if self._claim(position, fault):
                delay = max(delay, fault.jittered_delay_s())
        return delay

    # --------------------------------------------------------------- internals
    def _matching(self, shard_index: int, *kinds: str
                  ) -> Iterator[Tuple[int, FaultSpec]]:
        for position, fault in enumerate(self.plan.faults):
            if fault.kind in kinds and fault.matches(shard_index,
                                                     self.worker_id):
                yield position, fault

    def _claim(self, position: int, fault: FaultSpec) -> bool:
        """Claim one of the fault's ``times`` firing slots (cross-process)."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(fault.times):
            marker = self.state_dir / f"fault-{position:03d}.fired-{slot:03d}"
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(handle)
            return True
        return False
