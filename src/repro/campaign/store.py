"""Resumable on-disk campaign result store.

One directory per campaign run:

* ``campaign.json`` — the :class:`~repro.campaign.spec.CampaignSpec`;
* ``shards/shard-00042.json`` — one :class:`ShardRecord` per completed shard,
  written atomically (temp file + fsync + ``os.replace`` + directory fsync)
  so a killed run — or a crashed *host*, which matters once file-queue
  workers share the store over a network filesystem — never leaves a
  half-written or vanishing record behind;
* ``progress.json`` — the engine's campaign-progress heartbeat (completed /
  total shards, throughput, ETA); informational only, never merged;
* ``attempts/shard-00042.json`` — per-shard failed-attempt counts (and the
  last traceback) written by whichever process holds the shard, so the retry
  budget survives worker crashes and re-queues;
* ``quarantine/shard-00042.json`` — one :class:`QuarantineEntry` per shard
  that exhausted its :class:`~repro.campaign.retry.RetryPolicy` budget: the
  shard's spec, attempt count, and full traceback.  Quarantined shards do not
  fail the campaign (unless ``strict``); a later ``resume`` clears the
  quarantine and re-attempts them with a fresh budget;
* ``merged.json`` — the merged :class:`CampaignResult` once every shard is in
  (withheld while any shard sits in quarantine, so a partial campaign can
  never masquerade as the bit-identical artifact).

Resuming is skip-on-record: the engine re-plans the shard list from the spec,
loads whatever records already exist, validates them against the plan (a spec
edit invalidates stale records loudly rather than silently merging mixed
results), and only executes the missing shards.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.utils.serde import JsonSerializable

__all__ = ["CampaignResult", "QuarantineEntry", "ResultStore", "ShardRecord",
           "StoreMismatchError", "fsync_directory", "write_atomic"]


class StoreMismatchError(RuntimeError):
    """A store's spec or records disagree with the campaign being run."""


@dataclass(frozen=True)
class ShardRecord(JsonSerializable):
    """One completed shard: its identity plus the adapter's result payload."""

    index: int
    point: int
    replicate: int
    seed: int
    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: The adapter's shard result, lowered to plain JSON primitives.
    result: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds the shard took (informational; never merged).
    elapsed_s: float = 0.0

    def matches(self, shard: ShardSpec) -> bool:
        """True when this record belongs to ``shard`` of the current plan."""
        return (self.index == shard.index and self.point == shard.point
                and self.replicate == shard.replicate
                and self.seed == shard.seed and self.params == shard.params)


@dataclass(frozen=True)
class QuarantineEntry(JsonSerializable):
    """One shard parked after exhausting its retry budget.

    Carries everything an operator needs to diagnose and re-run the shard:
    the shard's spec (as plain JSON), how many attempts were burned, the last
    traceback, and which worker gave up on it.
    """

    index: int
    attempts: int
    error: str
    worker: Optional[str] = None
    shard: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CampaignResult(JsonSerializable):
    """The merged campaign artifact (what ``merged.json`` holds).

    ``results`` carries one merged experiment result per seed replicate, as
    plain dictionaries; revive them with the adapter's ``result_type`` (the
    engine's :class:`~repro.campaign.engine.CampaignRun` keeps the typed
    forms).  Deliberately excludes timing so the merged document is
    bit-identical across worker counts, scheduling, and resumes.
    """

    name: str
    experiment: str
    seeds: Tuple[int, ...]
    num_shards: int
    results: Tuple[Dict[str, Any], ...]


def fsync_directory(path: Path) -> None:
    """Flush a directory's entry table to disk (best effort).

    ``os.replace`` makes a write atomic but not durable: until the directory
    entry itself is synced, a host crash can lose the whole rename.  Platforms
    that cannot open directories (Windows) simply skip the sync.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: Path, text: str, durable: bool = True) -> Path:
    """Write ``text`` to ``path`` atomically (same-directory temp file).

    ``durable`` writes additionally fsync the file before the rename and the
    directory after it, so the artifact survives a host crash.  This is the
    one write idiom the campaign package uses for everything a reader might
    observe live: records, quarantine entries, attempt counters, heartbeat
    touches, speculative task files.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(dir=path.parent,
                                         prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as fh:
            fh.write(text)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(temp_name, path)
        if durable:
            fsync_directory(path.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise
    return path


class ResultStore:
    """Directory-backed persistence for one campaign run."""

    SPEC_FILE = "campaign.json"
    MERGED_FILE = "merged.json"
    PROGRESS_FILE = "progress.json"
    SHARD_DIR = "shards"
    QUARANTINE_DIR = "quarantine"
    ATTEMPTS_DIR = "attempts"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.shard_dir = self.root / self.SHARD_DIR
        self.quarantine_dir = self.root / self.QUARANTINE_DIR
        self.attempts_dir = self.root / self.ATTEMPTS_DIR

    # ------------------------------------------------------------------ paths
    @property
    def spec_path(self) -> Path:
        return self.root / self.SPEC_FILE

    @property
    def merged_path(self) -> Path:
        return self.root / self.MERGED_FILE

    @property
    def progress_path(self) -> Path:
        return self.root / self.PROGRESS_FILE

    def shard_path(self, index: int) -> Path:
        return self.shard_dir / f"shard-{index:05d}.json"

    def quarantine_path(self, index: int) -> Path:
        return self.quarantine_dir / f"shard-{index:05d}.json"

    def attempts_path(self, index: int) -> Path:
        return self.attempts_dir / f"shard-{index:05d}.json"

    # ---------------------------------------------------------------- writing
    def _write_atomic(self, path: Path, text: str, durable: bool = True) -> Path:
        """Atomic (and, by default, durable) write — see :func:`write_atomic`.

        The progress heartbeat opts out of durability: it is rewritten every
        shard and losing it costs nothing.
        """
        return write_atomic(path, text, durable=durable)

    def save_spec(self, spec: CampaignSpec) -> None:
        """Persist the spec, validating against any spec already stored."""
        existing = self.load_spec()
        if existing is not None:
            if existing != spec:
                raise StoreMismatchError(
                    f"store {self.root} already holds campaign "
                    f"{existing.name!r} with a different spec; use a fresh "
                    "directory (or resume with the stored spec)")
            return
        self._write_atomic(self.spec_path, spec.to_json() + "\n")

    def save_record(self, record: ShardRecord) -> Path:
        """Atomically persist one completed shard."""
        return self._write_atomic(self.shard_path(record.index),
                                  record.to_json() + "\n")

    def save_merged(self, result: CampaignResult) -> Path:
        """Atomically persist the merged campaign artifact."""
        return self._write_atomic(self.merged_path, result.to_json() + "\n")

    def save_progress(self, snapshot: Dict[str, Any]) -> Path:
        """Persist the campaign-progress heartbeat (non-durable by design)."""
        return self._write_atomic(self.progress_path,
                                  json.dumps(snapshot, indent=2) + "\n",
                                  durable=False)

    def save_quarantine(self, entry: QuarantineEntry) -> Path:
        """Durably park one shard that exhausted its retry budget."""
        return self._write_atomic(self.quarantine_path(entry.index),
                                  entry.to_json() + "\n")

    def clear_quarantine(self) -> None:
        """Drop every quarantine entry (a resume re-attempts the shards)."""
        shutil.rmtree(self.quarantine_dir, ignore_errors=True)

    def bump_attempts(self, index: int, error: str) -> int:
        """Record one more failed attempt for a shard; returns the new count.

        Only the process holding the shard's lease (or the in-process
        backend) writes a given shard's counter, so read-modify-write is
        race-free; the write itself is atomic so a crash mid-bump leaves the
        previous count, never a torn file.
        """
        attempts = self.load_attempts(index) + 1
        self._write_atomic(
            self.attempts_path(index),
            json.dumps({"index": index, "attempts": attempts, "error": error},
                       indent=2) + "\n")
        return attempts

    def clear_attempts(self) -> None:
        """Reset every per-shard attempt counter (fresh budget on resume)."""
        shutil.rmtree(self.attempts_dir, ignore_errors=True)

    # ---------------------------------------------------------------- reading
    def load_spec(self) -> Optional[CampaignSpec]:
        """The stored spec, or ``None`` for a fresh directory."""
        if not self.spec_path.exists():
            return None
        return CampaignSpec.load_json(self.spec_path)

    def require_spec(self) -> CampaignSpec:
        """The stored spec; raises when the directory holds no campaign."""
        spec = self.load_spec()
        if spec is None:
            raise FileNotFoundError(
                f"{self.root} holds no campaign (missing {self.SPEC_FILE})")
        return spec

    def load_records(self) -> Dict[int, ShardRecord]:
        """All completed shard records, keyed by shard index."""
        return {index: self.load_record(index) for index in self.record_indices()}

    def load_record(self, index: int) -> ShardRecord:
        """One completed shard record by index."""
        return ShardRecord.load_json(self.shard_path(index))

    def load_progress(self) -> Optional[Dict[str, Any]]:
        """The last progress heartbeat, or ``None`` when never written.

        Torn-file-safe: the heartbeat is rewritten constantly (and the store
        may sit on a network filesystem whose readers can observe partial
        content), so a half-visible document reads as "no heartbeat yet"
        instead of crashing a ``--progress`` follower mid-rewrite.
        """
        from repro.campaign.progress import CampaignProgress

        return CampaignProgress.load(self.progress_path)

    def load_quarantine_entry(self, index: int) -> QuarantineEntry:
        """One quarantined shard's entry by index."""
        return QuarantineEntry.load_json(self.quarantine_path(index))

    def load_quarantine(self) -> Dict[int, QuarantineEntry]:
        """All quarantined shards, keyed by shard index."""
        return {index: self.load_quarantine_entry(index)
                for index in self.quarantined_indices()}

    def load_attempts(self, index: int) -> int:
        """Failed-attempt count for a shard (0 when never failed / torn)."""
        try:
            data = json.loads(
                self.attempts_path(index).read_text(encoding="utf-8"))
            return int(data["attempts"])
        except (OSError, ValueError, TypeError, KeyError,
                json.JSONDecodeError):
            return 0

    def attempt_counts(self) -> Dict[int, int]:
        """Every shard's failed-attempt count, keyed by shard index."""
        return {index: self.load_attempts(index)
                for index in self._indices_in(self.attempts_dir)}

    @staticmethod
    def _indices_in(directory: Path) -> Tuple[int, ...]:
        """Shard indices named by ``shard-*.json`` entries of a directory."""
        if not directory.exists():
            return ()
        indices = []
        for path in directory.glob("shard-*.json"):
            try:
                indices.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return tuple(sorted(indices))

    def record_indices(self) -> Tuple[int, ...]:
        """Indices of persisted shard records without parsing their payloads.

        The file-queue coordinator polls this every tick, so it must stay a
        directory listing — reading record *contents* is deferred to
        :meth:`load_record` for only the indices that are new.
        """
        return self._indices_in(self.shard_dir)

    def quarantined_indices(self) -> Tuple[int, ...]:
        """Indices of quarantined shards (a directory listing, poll-cheap)."""
        return self._indices_in(self.quarantine_dir)

    def load_merged(self) -> Optional[CampaignResult]:
        """The merged artifact, or ``None`` when not yet written."""
        if not self.merged_path.exists():
            return None
        return CampaignResult.load_json(self.merged_path)

    def completed_indices(self) -> Tuple[int, ...]:
        """Indices of shards with a persisted record, ascending."""
        return self.record_indices()
