"""Pluggable campaign executor backends.

The engine plans a campaign (compile shards, load resumable records, merge);
*how* the pending shards get executed is a backend decision:

* :class:`SerialBackend` — in-process, in order.  No pickling, no
  subprocesses: the backend to debug a shard under.
* :class:`ProcessPoolBackend` — a local ``ProcessPoolExecutor``; completed
  shards land (and persist) before the first failure propagates.
* :class:`FileQueueBackend` — scatter/gather over any shared filesystem.
  The coordinator enqueues one task file per pending shard under the result
  store; independent worker processes (``python -m repro worker --queue DIR``,
  on this host or any host that mounts the store) claim tasks via atomic
  rename, execute them, and write records into the shared
  :class:`~repro.campaign.store.ResultStore`.

Fault tolerance is uniform across backends:

* every backend applies the same :class:`~repro.campaign.retry.RetryPolicy`
  — a failing shard is re-attempted with exponential, deterministically
  jittered backoff, its attempt count persisted in the store's ``attempts/``
  directory, and a shard that exhausts the budget is *parked* (handed to the
  engine's ``park`` callback, which quarantines it) instead of failing the
  whole campaign;
* file-queue workers heartbeat their leases (``leases/<task>.heartbeat``),
  so the coordinator re-queues a shard only when the *heartbeat* goes stale
  — a slow-but-alive worker keeps its lease for as long as it keeps
  beating, while a dead worker's shard returns to the queue after
  ``lease_timeout_s``;
* near the campaign tail the file-queue coordinator re-dispatches
  stragglers: when few shards remain and one has been running far longer
  than the completed-shard median, its task is speculatively re-enqueued and
  whichever record lands first wins (records are bit-identical, so the
  duplicate is harmless).

Every backend feeds the same ``land`` callback and the merge consumes
JSON-canonicalised records in shard-index order, so the merged campaign
result is bit-identical whichever backend (and however many workers,
wherever they run, however many retries and re-dispatches it took) executed
the shards.
"""

from __future__ import annotations

import abc
import contextlib
import os
import shutil
import statistics
import subprocess
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Union

from repro.api.registry import Registry
from repro.campaign.retry import RetryPolicy
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.campaign.store import (
    QuarantineEntry,
    ResultStore,
    ShardRecord,
    fsync_directory,
    write_atomic,
)

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "FileQueue",
    "FileQueueBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShardFailure",
    "make_backend",
    "quarantine_summary",
]

#: Landing callback the engine hands to a backend: ``land(record)`` registers
#: a completed shard (and persists it unless ``persisted`` says the record is
#: already in the store, as file-queue workers write their own records).
LandCallback = Callable[..., None]

#: Parking callback: ``park(entry)`` registers a shard that exhausted its
#: retry budget (``persisted=True`` when the entry is already quarantined in
#: the store, as file-queue workers quarantine their own shards).  Backends
#: invoked without one keep the historical fail-fast behaviour.
ParkCallback = Callable[..., None]


class ShardFailure(RuntimeError):
    """One or more shards failed to execute."""


def quarantine_summary(entries: Dict[int, QuarantineEntry],
                       store: Optional[ResultStore]) -> str:
    """One aggregated report covering *every* parked shard.

    Lists each failed shard's index, attempt count, terminal error line, and
    quarantine-entry path (so nothing hides behind "first failure wins"),
    then appends the first shard's full traceback for immediate diagnosis.
    """
    lines = [f"{len(entries)} shard(s) exhausted their retry budget:"]
    for index in sorted(entries):
        entry = entries[index]
        where = (str(store.quarantine_path(index)) if store is not None
                 else "(in-memory)")
        error_lines = entry.error.strip().splitlines()
        last = error_lines[-1] if error_lines else "unknown error"
        lines.append(f"  shard {index}: {entry.attempts} attempt(s), "
                     f"{last} [{where}]")
    first = entries[min(entries)]
    lines.append(f"first failed shard ({min(entries)}) traceback:")
    lines.append(first.error.rstrip())
    return "\n".join(lines)


def _attempt_counter(store: Optional[ResultStore]) -> Callable[[int, str], int]:
    """Per-shard attempt bumping: store-backed when available, else local."""
    if store is not None:
        return store.bump_attempts
    counts: Dict[int, int] = {}

    def bump(index: int, error: str) -> int:
        counts[index] = counts.get(index, 0) + 1
        return counts[index]

    return bump


def _run_with_retry(spec: CampaignSpec, shard: ShardSpec, retry: RetryPolicy,
                    bump: Callable[[int, str], int],
                    park: Optional[ParkCallback],
                    worker: Optional[str] = None) -> Optional[ShardRecord]:
    """Execute one shard in-process, retrying under ``retry``'s budget.

    Returns the record, or ``None`` after parking the exhausted shard.  With
    no ``park`` callback the exhausted failure propagates unchanged — the
    historical fail-fast behaviour for direct backend callers.
    """
    from repro.campaign.engine import execute_shard

    while True:
        try:
            return execute_shard(spec, shard)
        except Exception:
            trace = traceback.format_exc()
            attempts = bump(shard.index, trace)
            if retry.exhausted(attempts):
                if park is None:
                    raise
                park(QuarantineEntry(index=shard.index, attempts=attempts,
                                     error=trace, worker=worker,
                                     shard=shard.to_dict()))
                return None
            time.sleep(retry.backoff_s(shard.seed, attempts))


class ExecutorBackend(abc.ABC):
    """How a campaign's pending shards get executed."""

    #: Registry name (also what ``--backend`` accepts on the CLI).
    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore],
                park: Optional[ParkCallback] = None) -> None:
        """Execute ``pending`` shards, calling ``land`` for each record.

        ``land`` may be called in any completion order; the engine re-orders
        records canonically before merging.  Implementations must land every
        successful shard before propagating the first failure, so completed
        work is never thrown away.  ``park`` receives shards that exhausted
        the retry budget; when omitted, such shards fail fast instead.
        """


class SerialBackend(ExecutorBackend):
    """Execute shards in-process, in canonical order (the debug backend)."""

    name = "serial"

    def __init__(self, retry: Optional[RetryPolicy] = None) -> None:
        self.retry = retry

    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore],
                park: Optional[ParkCallback] = None) -> None:
        retry = self.retry if self.retry is not None else RetryPolicy()
        bump = _attempt_counter(store)
        for shard in pending:
            record = _run_with_retry(spec, shard, retry, bump, park,
                                     worker=self.name)
            if record is not None:
                land(record)


class ProcessPoolBackend(ExecutorBackend):
    """Execute shards on a local ``ProcessPoolExecutor``."""

    name = "pool"

    def __init__(self, workers: int = 2,
                 retry: Optional[RetryPolicy] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.retry = retry

    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore],
                park: Optional[ParkCallback] = None) -> None:
        from repro.campaign.engine import _shard_task

        retry = self.retry if self.retry is not None else RetryPolicy()
        bump = _attempt_counter(store)
        # One worker (or one shard) gains nothing from a pool; run in-process.
        if self.workers == 1 or len(pending) <= 1:
            for shard in pending:
                record = _run_with_retry(spec, shard, retry, bump, park,
                                         worker=self.name)
                if record is not None:
                    land(record)
            return
        spec_data = spec.to_dict()
        wave: List[ShardSpec] = list(pending)
        with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))) as pool:
            # Retry in waves: every shard of the current wave is submitted,
            # every successful shard lands (persisting when a store is
            # attached) before anything propagates, and the failures whose
            # budget allows it form the next wave after their backoff.
            while wave:
                futures = {pool.submit(_shard_task, spec_data, shard.to_dict()):
                           shard for shard in wave}
                retries: List[ShardSpec] = []
                backoff = 0.0
                failure: Optional[BaseException] = None
                for future in as_completed(futures):
                    shard = futures[future]
                    try:
                        record = ShardRecord.from_dict(future.result())
                    except BaseException as error:
                        trace = "".join(traceback.format_exception(
                            type(error), error, error.__traceback__))
                        attempts = bump(shard.index, trace)
                        if not retry.exhausted(attempts):
                            retries.append(shard)
                            backoff = max(backoff,
                                          retry.backoff_s(shard.seed, attempts))
                        elif park is not None:
                            park(QuarantineEntry(
                                index=shard.index, attempts=attempts,
                                error=trace, worker=self.name,
                                shard=shard.to_dict()))
                        elif failure is None:
                            failure = error
                        continue
                    land(record)
                if failure is not None:
                    raise failure
                if retries and backoff > 0:
                    time.sleep(backoff)
                wave = retries


class FileQueue:
    """The on-disk task queue of a file-queue campaign.

    Lives inside the result store (``<store>/queue``) so one shared directory
    carries the whole protocol:

    * ``tasks/task-00042.json`` — a pending shard (its ``ShardSpec`` JSON); a
      task whose mtime lies in the *future* is deferred — a retry waiting out
      its backoff — and is skipped by :meth:`claim` until the time arrives;
    * ``leases/task-00042.json`` — a shard some worker has claimed; the
      claim is the atomic ``os.rename`` from ``tasks/`` (exactly one worker
      can win it), and the lease file's mtime is the claim time;
    * ``leases/task-00042.heartbeat`` — the claiming worker's liveness
      beacon, atomically refreshed every ``--heartbeat`` seconds while the
      shard executes.  The coordinator re-queues a lease only when *both*
      the lease and its heartbeat are stale, so a slow-but-alive worker is
      never preempted;
    * ``retry.json`` — the coordinator's :class:`RetryPolicy`, persisted
      before the queue opens so detached workers apply the same budget;
    * ``ready`` — marker written after every task is enqueued, so workers
      that start before the coordinator never see a half-built queue.

    Shard *failures* are not queue state: workers persist attempt counts and
    quarantine entries in the :class:`~repro.campaign.store.ResultStore`
    (surviving both worker and coordinator crashes), and re-queue their own
    failed shard with a backoff-deferred task file while budget remains.
    """

    QUEUE_DIR = "queue"
    RETRY_FILE = "retry.json"

    def __init__(self, store_root: Union[str, Path]) -> None:
        self.root = Path(store_root) / self.QUEUE_DIR
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.ready_marker = self.root / "ready"
        self.retry_path = self.root / self.RETRY_FILE

    # ------------------------------------------------------------- coordinator
    def build(self, shards: Sequence[ShardSpec],
              retry: Optional[RetryPolicy] = None) -> None:
        """(Re)build the queue with one task per shard, then open it."""
        if self.root.exists():
            shutil.rmtree(self.root)
        for directory in (self.tasks_dir, self.leases_dir):
            directory.mkdir(parents=True, exist_ok=True)
        for shard in shards:
            # Queue protocol file, not a store record: workers only read
            # tasks after the ready marker lands, and build() rebuilds the
            # whole queue from scratch, so a torn task file cannot survive.
            self._task_path(self.tasks_dir, shard.index).write_text(  # repro-lint: disable=atomic-write
                shard.to_json() + "\n", encoding="utf-8")
        # The retry policy ships with the queue (also pre-ready, so workers
        # never observe it torn); workers fall back to the default when the
        # file is absent (a queue built by an older coordinator).
        self.retry_path.write_text(  # repro-lint: disable=atomic-write
            (retry if retry is not None else RetryPolicy()).to_json() + "\n",
            encoding="utf-8")
        fsync_directory(self.tasks_dir)
        # Single-block marker written after every task is in place; a torn
        # marker just means "not ready yet" and the coordinator rebuilds.
        self.ready_marker.write_text("ready\n", encoding="utf-8")  # repro-lint: disable=atomic-write
        fsync_directory(self.root)

    def requeue_expired(self, lease_timeout_s: float,
                        done: Set[int]) -> List[int]:
        """Return dead-worker leases to the task queue (crash recovery).

        A lease whose shard is still unaccounted for and whose freshest
        liveness signal — the lease's claim time or its heartbeat, whichever
        is newer — is older than ``lease_timeout_s`` means the worker died
        (or lost the plot) mid-shard; the task goes back to ``tasks/`` for
        any live worker to claim.  A heartbeating worker therefore keeps its
        lease indefinitely, however slow the shard.  Leases for ``done``
        shards (recorded or quarantined) are simply cleared.
        """
        requeued: List[int] = []
        now = time.time()
        for lease in self._entries(self.leases_dir):
            index = self._task_index(lease)
            if index is None:
                continue
            heartbeat = self.heartbeat_path(lease)
            if index in done:
                self._unlink(lease)
                self._unlink(heartbeat)
                continue
            try:
                fresh = lease.stat().st_mtime
            except OSError:  # the worker just finished or got requeued
                continue
            with contextlib.suppress(OSError):
                fresh = max(fresh, heartbeat.stat().st_mtime)
            if now - fresh < lease_timeout_s:
                continue
            try:
                os.rename(lease, self._task_path(self.tasks_dir, index))
            except OSError:
                continue
            self._unlink(heartbeat)
            requeued.append(index)
        return requeued

    def speculate(self, shard: ShardSpec) -> None:
        """Re-enqueue a *leased* shard's task (straggler re-dispatch).

        The straggler keeps its lease and keeps running; another worker can
        claim the duplicate task and race it.  Records are bit-identical, so
        whichever lands first wins and the loser's write is a no-op.
        """
        write_atomic(self._task_path(self.tasks_dir, shard.index),
                     shard.to_json() + "\n")

    def retire(self, index: int) -> None:
        """Drop every queue artifact of a finished (or quarantined) shard."""
        lease = self._task_path(self.leases_dir, index)
        self._unlink(self._task_path(self.tasks_dir, index))
        self._unlink(lease)
        self._unlink(self.heartbeat_path(lease))

    def leases(self) -> List[Path]:
        """The currently claimed lease files (heartbeats excluded)."""
        return self._entries(self.leases_dir)

    def destroy(self) -> None:
        """Remove the queue directory (after a fully-landed campaign)."""
        shutil.rmtree(self.root, ignore_errors=True)

    # ------------------------------------------------------------------ worker
    @property
    def ready(self) -> bool:
        """True once the coordinator has finished enqueueing tasks."""
        return self.ready_marker.exists()

    def load_retry(self) -> RetryPolicy:
        """The queue's retry policy (the default for pre-policy queues)."""
        try:
            return RetryPolicy.load_json(self.retry_path)
        except (OSError, ValueError):
            return RetryPolicy()

    def claim(self) -> Optional[Path]:
        """Claim one pending task via atomic rename; ``None`` when empty.

        The returned path is the caller's lease file: it holds the shard
        spec, and its existence (with a fresh mtime, kept alive by
        :meth:`beat`) is what keeps the coordinator from re-queueing the
        shard.  Tasks deferred into the future by retry backoff are skipped
        until their time arrives.
        """
        now = time.time()
        for task in self._entries(self.tasks_dir):
            try:
                if task.stat().st_mtime > now:
                    continue  # a retry still waiting out its backoff
            except OSError:  # claimed (or retired) under us
                continue
            lease = self.leases_dir / task.name
            try:
                os.rename(task, lease)
            except OSError:  # another worker won the rename
                continue
            # Start the lease clock now: the rename preserved the *task*
            # file's mtime (its enqueue time), which would make any claim
            # late in a long campaign look instantly expired.
            with contextlib.suppress(OSError):
                os.utime(lease)
            # A previous holder's heartbeat must not vouch for us.
            self._unlink(self.heartbeat_path(lease))
            return lease
        return None

    def beat(self, lease: Path) -> None:
        """Refresh the lease's heartbeat (atomic; liveness is the mtime)."""
        with contextlib.suppress(OSError):
            write_atomic(self.heartbeat_path(lease), f"{time.time():.3f}\n",
                         durable=False)

    def release(self, lease: Path) -> None:
        """Drop a lease after its record landed (missing is fine)."""
        self._unlink(lease)
        self._unlink(self.heartbeat_path(lease))

    def requeue_with_backoff(self, lease: Path, delay_s: float) -> None:
        """Return a failed lease to the queue, deferred by ``delay_s``.

        The shard's task file is rewritten atomically with its mtime pushed
        ``delay_s`` into the future, which :meth:`claim` honours as
        "not claimable yet" — backoff without making any worker sleep.  The
        task is written before the lease is dropped, so a crash in between
        leaves both (harmless: the claim rename simply replaces the stale
        lease) rather than neither.
        """
        try:
            text = lease.read_text(encoding="utf-8")
        except OSError:  # the coordinator re-queued it under us
            return
        task = self.tasks_dir / lease.name
        write_atomic(task, text)
        if delay_s > 0:
            due = time.time() + delay_s
            with contextlib.suppress(OSError):
                os.utime(task, (due, due))
        self._unlink(lease)
        self._unlink(self.heartbeat_path(lease))

    @property
    def empty(self) -> bool:
        """True when no task is pending or claimed."""
        return (not self._entries(self.tasks_dir)
                and not self._entries(self.leases_dir))

    @property
    def has_pending_tasks(self) -> bool:
        """True while unclaimed tasks exist (claimed leases do not count).

        Backoff-deferred tasks count: they will become claimable without any
        coordinator action, so an ``--exit-when-empty`` worker must not exit
        while one exists.
        """
        return bool(self._entries(self.tasks_dir))

    # --------------------------------------------------------------- internals
    @staticmethod
    def heartbeat_path(lease: Path) -> Path:
        """The heartbeat beacon beside a lease (or task) file."""
        return lease.with_suffix(".heartbeat")

    @staticmethod
    def _task_path(directory: Path, index: int) -> Path:
        return directory / f"task-{index:05d}.json"

    @staticmethod
    def _task_index(path: Path) -> Optional[int]:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return None

    @staticmethod
    def _entries(directory: Path) -> List[Path]:
        # The suffix filter keeps heartbeat beacons (task-00042.heartbeat)
        # out of the task/lease listings.
        try:
            return sorted(path for path in directory.iterdir()
                          if path.name.startswith("task-")
                          and path.suffix == ".json")
        except OSError:
            return []

    @staticmethod
    def _unlink(path: Path) -> None:
        with contextlib.suppress(OSError):
            os.unlink(path)


class FileQueueBackend(ExecutorBackend):
    """Scatter shards to file-queue workers over a shared filesystem.

    ``workers`` local worker processes are spawned for convenience (``0``
    means the operator runs every worker externally — other terminals, other
    hosts).  The coordinator itself executes nothing: it enqueues tasks,
    polls the store for landed records and quarantined shards, re-queues
    leases whose heartbeat went stale, speculatively re-dispatches stragglers
    near the tail, and keeps the spawned worker population alive until the
    campaign drains.
    """

    name = "file-queue"

    def __init__(self, workers: int = 0, lease_timeout_s: float = 60.0,
                 poll_s: float = 0.2, timeout_s: Optional[float] = None,
                 keep_queue: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 heartbeat_s: Optional[float] = None,
                 speculate_factor: float = 3.0,
                 speculate_tail_frac: float = 0.1,
                 speculate_min_records: int = 3) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if heartbeat_s is None:
            # Several beats per lease timeout, without busy-writing.
            heartbeat_s = max(0.05, min(5.0, lease_timeout_s / 4.0))
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if speculate_factor <= 0:
            raise ValueError("speculate_factor must be positive")
        if not 0 < speculate_tail_frac <= 1:
            raise ValueError("speculate_tail_frac must be in (0, 1]")
        if speculate_min_records < 1:
            raise ValueError("speculate_min_records must be at least 1")
        self.workers = workers
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.keep_queue = keep_queue
        self.retry = retry
        self.heartbeat_s = heartbeat_s
        self.speculate_factor = speculate_factor
        self.speculate_tail_frac = speculate_tail_frac
        self.speculate_min_records = speculate_min_records

    # ---------------------------------------------------------------- spawning
    def _spawn_worker(self, store: ResultStore, ordinal: int) -> subprocess.Popen:
        log_path = FileQueue(store.root).root / f"worker-{ordinal}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        command = [sys.executable, "-m", "repro", "worker",
                   "--queue", str(store.root), "--exit-when-empty",
                   "--poll", str(self.poll_s),
                   "--heartbeat", str(self.heartbeat_s)]
        with open(log_path, "ab") as log:
            return subprocess.Popen(command, stdout=log, stderr=log,
                                    stdin=subprocess.DEVNULL)

    # ------------------------------------------------------------- speculation
    def _respeculate(self, queue: FileQueue,
                     by_index: Dict[int, ShardSpec], missing: Set[int],
                     elapsed: List[float], total: int,
                     speculated: Set[int]) -> None:
        """Re-dispatch tail stragglers running far beyond the median.

        Only in the campaign tail (at most ``speculate_tail_frac`` of the
        shards still missing), only with enough completed shards for the
        median to mean something, and at most once per shard — speculation
        trades a duplicate execution for tail latency, and an unbounded
        version would stampede the queue.
        """
        if len(missing) > max(1, int(self.speculate_tail_frac * total)):
            return
        if len(elapsed) < self.speculate_min_records:
            return
        median = statistics.median(elapsed)
        if median <= 0:
            return
        threshold = self.speculate_factor * median
        now = time.time()
        for lease in queue.leases():
            index = queue._task_index(lease)
            if index is None or index not in missing or index in speculated:
                continue
            try:
                runtime = now - lease.stat().st_mtime
            except OSError:
                continue
            if runtime <= threshold:
                continue
            shard = by_index.get(index)
            if shard is None:
                continue
            if queue._task_path(queue.tasks_dir, index).exists():
                continue  # already back in the queue (requeue or retry)
            queue.speculate(shard)
            speculated.add(index)

    # --------------------------------------------------------------- execution
    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore],
                park: Optional[ParkCallback] = None) -> None:
        if store is None:
            raise ValueError(
                "the file-queue backend needs a result store: workers "
                "communicate through it (pass store=/--out)")
        retry = self.retry if self.retry is not None else RetryPolicy()
        queue = FileQueue(store.root)
        queue.build(pending, retry=retry)
        by_index = {shard.index: shard for shard in pending}
        total = len(pending)
        missing: Set[int] = set(by_index)
        quarantined: Set[int] = set()
        speculated: Set[int] = set()
        elapsed: List[float] = []
        procs: List[subprocess.Popen] = []
        spawned = 0
        deadline = (time.monotonic() + self.timeout_s
                    if self.timeout_s is not None else None)
        try:
            for _ in range(self.workers):
                procs.append(self._spawn_worker(store, spawned))
                spawned += 1
            while missing:
                # One directory listing per tick (it may be a network
                # filesystem); land newly persisted records from it.
                recorded = set(store.record_indices())
                for index in sorted(recorded & missing):
                    record = store.load_record(index)
                    land(record, persisted=True)
                    elapsed.append(record.elapsed_s)
                    missing.discard(index)
                    queue.retire(index)
                # Workers park shards that exhausted the retry budget in the
                # store's quarantine; stop waiting for those shards (the
                # engine decides whether quarantine fails the run).
                for index in sorted(set(store.quarantined_indices()) & missing):
                    if park is not None:
                        park(store.load_quarantine_entry(index),
                             persisted=True)
                    missing.discard(index)
                    quarantined.add(index)
                    queue.retire(index)
                if not missing:
                    break
                queue.requeue_expired(self.lease_timeout_s,
                                      done=recorded | quarantined)
                self._respeculate(queue, by_index, missing, elapsed, total,
                                  speculated)
                # Keep the spawned population at strength while *unclaimed*
                # tasks exist (a crashed worker's requeued shards must never
                # wait on an operator).  Leases alone spawn nothing: spawned
                # workers exit-when-empty, so a worker started during the
                # campaign tail would only churn interpreter startups.
                if self.workers:
                    procs = [proc for proc in procs if proc.poll() is None]
                    while len(procs) < self.workers and queue.has_pending_tasks:
                        procs.append(self._spawn_worker(store, spawned))
                        spawned += 1
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"file-queue campaign timed out with {len(missing)} "
                        f"shard(s) outstanding (no worker progress within "
                        f"{self.timeout_s:.0f}s?)")
                time.sleep(self.poll_s)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        if park is None and quarantined:
            # Direct callers without a park callback keep fail-fast
            # semantics; the queue survives for diagnosis.
            entries = {index: store.load_quarantine_entry(index)
                       for index in sorted(quarantined)}
            raise ShardFailure(quarantine_summary(entries, store))
        if not self.keep_queue:
            queue.destroy()


#: Backend factories by CLI name (did-you-mean errors on miss).
BACKENDS: Registry[Callable[..., ExecutorBackend]] = Registry("executor backend")
BACKENDS.register("serial",
                  lambda workers=1, retry=None, **_: SerialBackend(retry=retry))
BACKENDS.register("pool",
                  lambda workers=2, retry=None, **_:
                      ProcessPoolBackend(workers=workers, retry=retry),
                  aliases=("process-pool", "processpool"))
BACKENDS.register(
    "file-queue",
    lambda workers=0, lease_timeout_s=60.0, poll_s=0.2, timeout_s=None,
           retry=None, heartbeat_s=None, **_:
        FileQueueBackend(workers=workers, lease_timeout_s=lease_timeout_s,
                         poll_s=poll_s, timeout_s=timeout_s, retry=retry,
                         heartbeat_s=heartbeat_s),
    aliases=("filequeue", "fq"))


def make_backend(name: str, **options: Any) -> ExecutorBackend:
    """Build a backend by CLI name (``serial``/``pool``/``file-queue``)."""
    return BACKENDS.get(name)(**options)
