"""Pluggable campaign executor backends.

The engine plans a campaign (compile shards, load resumable records, merge);
*how* the pending shards get executed is a backend decision:

* :class:`SerialBackend` — in-process, in order.  No pickling, no
  subprocesses: the backend to debug a shard under.
* :class:`ProcessPoolBackend` — a local ``ProcessPoolExecutor``; completed
  shards land (and persist) before the first failure propagates.
* :class:`FileQueueBackend` — scatter/gather over any shared filesystem.
  The coordinator enqueues one task file per pending shard under the result
  store; independent worker processes (``python -m repro worker --queue DIR``,
  on this host or any host that mounts the store) claim tasks via atomic
  rename, execute them, and write records into the shared
  :class:`~repro.campaign.store.ResultStore`.  The coordinator polls the
  store, re-queues tasks whose worker lease expired without producing a
  record (crash recovery), and raises after the queue drains if any shard
  failed.

Every backend feeds the same ``land`` callback and the merge consumes
JSON-canonicalised records in shard-index order, so the merged campaign
result is bit-identical whichever backend (and however many workers,
wherever they run) executed the shards.
"""

from __future__ import annotations

import abc
import contextlib
import os
import shutil
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Union

from repro.api.registry import Registry
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.campaign.store import ResultStore, ShardRecord, fsync_directory

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "FileQueue",
    "FileQueueBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShardFailure",
    "make_backend",
]

#: Landing callback the engine hands to a backend: ``land(record)`` registers
#: a completed shard (and persists it unless ``persisted`` says the record is
#: already in the store, as file-queue workers write their own records).
LandCallback = Callable[..., None]


class ShardFailure(RuntimeError):
    """One or more shards failed to execute."""


class ExecutorBackend(abc.ABC):
    """How a campaign's pending shards get executed."""

    #: Registry name (also what ``--backend`` accepts on the CLI).
    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore]) -> None:
        """Execute ``pending`` shards, calling ``land`` for each record.

        ``land`` may be called in any completion order; the engine re-orders
        records canonically before merging.  Implementations must land every
        successful shard before propagating the first failure, so completed
        work is never thrown away.
        """


class SerialBackend(ExecutorBackend):
    """Execute shards in-process, in canonical order (the debug backend)."""

    name = "serial"

    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore]) -> None:
        from repro.campaign.engine import execute_shard

        for shard in pending:
            land(execute_shard(spec, shard))


class ProcessPoolBackend(ExecutorBackend):
    """Execute shards on a local ``ProcessPoolExecutor``."""

    name = "pool"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers

    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore]) -> None:
        from repro.campaign.engine import _shard_task, execute_shard

        # One worker (or one shard) gains nothing from a pool; run in-process.
        if self.workers == 1 or len(pending) <= 1:
            for shard in pending:
                land(execute_shard(spec, shard))
            return
        spec_data = spec.to_dict()
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            futures = [pool.submit(_shard_task, spec_data, shard.to_dict())
                       for shard in pending]
            # Land every successful shard (persisting it when a store is
            # attached) before propagating the first failure, so one bad
            # shard never throws away the other workers' finished work.
            failure: Optional[BaseException] = None
            for future in as_completed(futures):
                try:
                    record = ShardRecord.from_dict(future.result())
                except BaseException as error:
                    if failure is None:
                        failure = error
                    continue
                land(record)
            if failure is not None:
                raise failure


class FileQueue:
    """The on-disk task queue of a file-queue campaign.

    Lives inside the result store (``<store>/queue``) so one shared directory
    carries the whole protocol:

    * ``tasks/task-00042.json`` — a pending shard (its ``ShardSpec`` JSON);
    * ``leases/task-00042.json`` — a shard some worker has claimed; the
      claim is the atomic ``os.rename`` from ``tasks/`` (exactly one worker
      can win it), and the lease file's mtime is the lease clock;
    * ``failed/task-00042.json`` — a shard whose execution raised (the file
      holds the traceback text);
    * ``ready`` — marker written after every task is enqueued, so workers
      that start before the coordinator never see a half-built queue.
    """

    QUEUE_DIR = "queue"

    def __init__(self, store_root: Union[str, Path]) -> None:
        self.root = Path(store_root) / self.QUEUE_DIR
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.failed_dir = self.root / "failed"
        self.ready_marker = self.root / "ready"

    # ------------------------------------------------------------- coordinator
    def build(self, shards: Sequence[ShardSpec]) -> None:
        """(Re)build the queue with one task per shard, then open it."""
        if self.root.exists():
            shutil.rmtree(self.root)
        for directory in (self.tasks_dir, self.leases_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)
        for shard in shards:
            # Queue protocol file, not a store record: workers only read
            # tasks after the ready marker lands, and build() rebuilds the
            # whole queue from scratch, so a torn task file cannot survive.
            self._task_path(self.tasks_dir, shard.index).write_text(  # repro-lint: disable=atomic-write
                shard.to_json() + "\n", encoding="utf-8")
        fsync_directory(self.tasks_dir)
        # Single-block marker written after every task is in place; a torn
        # marker just means "not ready yet" and the coordinator rebuilds.
        self.ready_marker.write_text("ready\n", encoding="utf-8")  # repro-lint: disable=atomic-write
        fsync_directory(self.root)

    def requeue_expired(self, lease_timeout_s: float,
                        recorded: Set[int]) -> List[int]:
        """Return orphaned leases to the task queue (crash recovery).

        A lease older than ``lease_timeout_s`` whose shard still has no
        record means the worker died (or hung) mid-shard; the task goes back
        to ``tasks/`` for any live worker to claim.  Leases whose record
        already exists are simply cleared.
        """
        requeued: List[int] = []
        now = time.time()
        for lease in self._entries(self.leases_dir):
            index = self._task_index(lease)
            if index is None:
                continue
            if index in recorded:
                self._unlink(lease)
                continue
            try:
                age = now - lease.stat().st_mtime
            except OSError:  # the worker just finished or got requeued
                continue
            if age < lease_timeout_s:
                continue
            try:
                os.rename(lease, self._task_path(self.tasks_dir, index))
                requeued.append(index)
            except OSError:
                continue
        return requeued

    def failures(self) -> Dict[int, str]:
        """Failed shard indices mapped to their recorded error text."""
        failures: Dict[int, str] = {}
        for path in self._entries(self.failed_dir):
            index = self._task_index(path)
            if index is None:
                continue
            try:
                failures[index] = path.read_text(encoding="utf-8")
            except OSError:
                continue
        return failures

    def destroy(self) -> None:
        """Remove the queue directory (after a fully-landed campaign)."""
        shutil.rmtree(self.root, ignore_errors=True)

    # ------------------------------------------------------------------ worker
    @property
    def ready(self) -> bool:
        """True once the coordinator has finished enqueueing tasks."""
        return self.ready_marker.exists()

    def claim(self) -> Optional[Path]:
        """Claim one pending task via atomic rename; ``None`` when empty.

        The returned path is the caller's lease file: it holds the shard
        spec, and its existence (with a fresh mtime) is what keeps the
        coordinator from re-queueing the shard.
        """
        for task in self._entries(self.tasks_dir):
            lease = self.leases_dir / task.name
            try:
                os.rename(task, lease)
            except OSError:  # another worker won the rename
                continue
            # Start the lease clock now: the rename preserved the *task*
            # file's mtime (its enqueue time), which would make any claim
            # late in a long campaign look instantly expired.
            with contextlib.suppress(OSError):
                os.utime(lease)
            return lease
        return None

    def release(self, lease: Path) -> None:
        """Drop a lease after its record landed (missing is fine)."""
        self._unlink(lease)

    def record_failure(self, lease: Path, error: str) -> None:
        """Move a lease to ``failed/`` with the error text (terminal state)."""
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        failed = self.failed_dir / lease.name
        with contextlib.suppress(OSError):
            # Diagnostic traceback for a terminally failed shard; the
            # failure signal is the file's *existence*, so a torn body only
            # truncates the message, never corrupts campaign state.
            failed.write_text(error, encoding="utf-8")  # repro-lint: disable=atomic-write
        self._unlink(lease)

    @property
    def empty(self) -> bool:
        """True when no task is pending or claimed."""
        return not self._entries(self.tasks_dir) and not self._entries(self.leases_dir)

    @property
    def has_pending_tasks(self) -> bool:
        """True while unclaimed tasks exist (claimed leases do not count)."""
        return bool(self._entries(self.tasks_dir))

    # --------------------------------------------------------------- internals
    @staticmethod
    def _task_path(directory: Path, index: int) -> Path:
        return directory / f"task-{index:05d}.json"

    @staticmethod
    def _task_index(path: Path) -> Optional[int]:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return None

    @staticmethod
    def _entries(directory: Path) -> List[Path]:
        try:
            return sorted(path for path in directory.iterdir()
                          if path.name.startswith("task-"))
        except OSError:
            return []

    @staticmethod
    def _unlink(path: Path) -> None:
        with contextlib.suppress(OSError):
            os.unlink(path)


class FileQueueBackend(ExecutorBackend):
    """Scatter shards to file-queue workers over a shared filesystem.

    ``workers`` local worker processes are spawned for convenience (``0``
    means the operator runs every worker externally — other terminals, other
    hosts).  The coordinator itself executes nothing: it enqueues tasks,
    polls the store for landed records, re-queues expired leases, and keeps
    the spawned worker population alive until the campaign drains.
    """

    name = "file-queue"

    def __init__(self, workers: int = 0, lease_timeout_s: float = 60.0,
                 poll_s: float = 0.2, timeout_s: Optional[float] = None,
                 keep_queue: bool = False) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        self.workers = workers
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.keep_queue = keep_queue

    # ---------------------------------------------------------------- spawning
    def _spawn_worker(self, store: ResultStore, ordinal: int) -> subprocess.Popen:
        log_path = FileQueue(store.root).root / f"worker-{ordinal}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        command = [sys.executable, "-m", "repro", "worker",
                   "--queue", str(store.root), "--exit-when-empty",
                   "--poll", str(self.poll_s)]
        with open(log_path, "ab") as log:
            return subprocess.Popen(command, stdout=log, stderr=log,
                                    stdin=subprocess.DEVNULL)

    # --------------------------------------------------------------- execution
    def execute(self, spec: CampaignSpec, pending: Sequence[ShardSpec],
                land: LandCallback, store: Optional[ResultStore]) -> None:
        if store is None:
            raise ValueError(
                "the file-queue backend needs a result store: workers "
                "communicate through it (pass store=/--out)")
        queue = FileQueue(store.root)
        queue.build(pending)
        missing: Set[int] = {shard.index for shard in pending}
        procs: List[subprocess.Popen] = []
        spawned = 0
        deadline = (time.monotonic() + self.timeout_s
                    if self.timeout_s is not None else None)
        try:
            for _ in range(self.workers):
                procs.append(self._spawn_worker(store, spawned))
                spawned += 1
            while missing:
                # One directory listing per tick (it may be a network
                # filesystem); land newly persisted records from it.
                recorded = set(store.record_indices())
                for index in sorted(recorded & missing):
                    land(store.load_record(index), persisted=True)
                    missing.discard(index)
                if not missing:
                    break
                # A failure marker for a still-missing shard is terminal:
                # the worker moved the task out of circulation, so waiting
                # longer cannot produce a record.
                failures = queue.failures()
                terminal = sorted(set(failures) & missing)
                if terminal:
                    raise ShardFailure(
                        f"{len(terminal)} shard(s) failed under the file-queue "
                        f"backend (first: shard {terminal[0]}):\n"
                        + failures[terminal[0]])
                queue.requeue_expired(self.lease_timeout_s, recorded=recorded)
                # Keep the spawned population at strength while *unclaimed*
                # tasks exist (a crashed worker's requeued shards must never
                # wait on an operator).  Leases alone spawn nothing: spawned
                # workers exit-when-empty, so a worker started during the
                # campaign tail would only churn interpreter startups.
                if self.workers:
                    procs = [proc for proc in procs if proc.poll() is None]
                    while len(procs) < self.workers and queue.has_pending_tasks:
                        procs.append(self._spawn_worker(store, spawned))
                        spawned += 1
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"file-queue campaign timed out with {len(missing)} "
                        f"shard(s) outstanding (no worker progress within "
                        f"{self.timeout_s:.0f}s?)")
                time.sleep(self.poll_s)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        if not self.keep_queue:
            queue.destroy()


#: Backend factories by CLI name (did-you-mean errors on miss).
BACKENDS: Registry[Callable[..., ExecutorBackend]] = Registry("executor backend")
BACKENDS.register("serial", lambda workers=1, **_: SerialBackend())
BACKENDS.register("pool", lambda workers=2, **_: ProcessPoolBackend(workers=workers),
                  aliases=("process-pool", "processpool"))
BACKENDS.register(
    "file-queue",
    lambda workers=0, lease_timeout_s=60.0, poll_s=0.2, timeout_s=None, **_:
        FileQueueBackend(workers=workers, lease_timeout_s=lease_timeout_s,
                         poll_s=poll_s, timeout_s=timeout_s),
    aliases=("filequeue", "fq"))


def make_backend(name: str, **options: Any) -> ExecutorBackend:
    """Build a backend by CLI name (``serial``/``pool``/``file-queue``)."""
    return BACKENDS.get(name)(**options)
