"""Sharded campaign execution over pluggable executor backends.

``run_campaign`` compiles a :class:`~repro.campaign.spec.CampaignSpec` into
its canonical shard list, hands the pending shards to an
:class:`~repro.campaign.backends.ExecutorBackend` — in-process serial, a
local process pool, or file-queue workers scattered across hosts — and
reduces the records into one merged experiment result per seed replicate.

Determinism contract: a shard is a pure function of ``(spec, shard)`` (its
seed was fixed at compile time, in canonical order), every record is
canonicalised through the JSON serde before merging (so in-process, pickled,
and disk-loaded records are indistinguishable), and merging consumes records
in shard-index order.  The merged result is therefore bit-identical for any
backend, worker count, scheduling order, or resume history.

With a :class:`~repro.campaign.store.ResultStore` attached, each completed
shard is persisted atomically (and durably) as it lands, already-persisted
shards are skipped on resume, and a ``progress.json`` heartbeat tracks
completed/total shards, throughput, and ETA — so a killed campaign continues
where it stopped and a long one can be watched from any host that sees the
store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.adapters import CampaignAdapter, get_adapter
from repro.campaign.backends import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardFailure,
    quarantine_summary,
)
from repro.campaign.faults import FaultInjector
from repro.campaign.progress import CampaignProgress
from repro.campaign.retry import RetryPolicy
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.campaign.store import (
    CampaignResult,
    QuarantineEntry,
    ResultStore,
    ShardRecord,
    StoreMismatchError,
)
from repro.utils.serde import from_jsonable, to_jsonable

__all__ = ["CampaignRun", "execute_shard", "run_campaign"]

#: Progress callback: ``(completed_shards, total_shards, record)``.
ProgressCallback = Callable[[int, int, ShardRecord], None]


@dataclass(frozen=True)
class CampaignRun:
    """The in-memory outcome of one campaign execution."""

    spec: CampaignSpec
    #: One record per shard, in canonical shard-index order.
    records: Tuple[ShardRecord, ...]
    #: One merged experiment result per seed replicate (typed dataclasses).
    #: With quarantined shards, only the replicates whose every shard landed
    #: are merged — a partial replicate would silently change its result.
    results: Tuple[Any, ...]
    #: How many shards were actually executed (the rest came from the store).
    executed: int
    #: Shards parked after exhausting the retry budget (empty on a clean run).
    quarantined: Tuple[QuarantineEntry, ...] = ()

    @property
    def result(self) -> Any:
        """The merged result of the first (often only) replicate."""
        return self.results[0]

    @property
    def complete(self) -> bool:
        """True when every shard landed (nothing quarantined)."""
        return not self.quarantined

    def campaign_result(self) -> CampaignResult:
        """The merged artifact in its persistable form."""
        return CampaignResult(
            name=self.spec.name,
            experiment=self.spec.experiment,
            seeds=self.spec.replicate_seeds(),
            num_shards=len(self.records),
            results=tuple(to_jsonable(result) for result in self.results),
        )


def execute_shard(spec: CampaignSpec, shard: ShardSpec) -> ShardRecord:
    """Run one shard and wrap its payload in a :class:`ShardRecord`.

    This is the chaos seam shared by *every* backend: when a fault plan is
    active (``$REPRO_FAULT_PLAN``), injected hangs and transient failures
    fire here — before the adapter runs — so serial, pool, and file-queue
    executions all exercise the same retry machinery.
    """
    injector = FaultInjector.from_env()
    if injector is not None:
        injector.on_execute(shard.index)
    adapter = get_adapter(spec.experiment)
    start = time.perf_counter()
    payload = adapter.run_shard(spec, shard)
    return ShardRecord(
        index=shard.index,
        point=shard.point,
        replicate=shard.replicate,
        seed=shard.seed,
        experiment=spec.experiment,
        params=dict(shard.params),
        result=to_jsonable(payload),
        elapsed_s=time.perf_counter() - start,
    )


def _shard_task(spec_data: Dict[str, Any], shard_data: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point (everything crosses as JSON primitives)."""
    spec = CampaignSpec.from_dict(spec_data)
    shard = ShardSpec.from_dict(shard_data)
    return execute_shard(spec, shard).to_dict()


def default_backend(workers: int,
                    retry: Optional[RetryPolicy] = None) -> ExecutorBackend:
    """The historical worker-count behaviour as a backend choice."""
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if workers == 1:
        return SerialBackend(retry=retry)
    return ProcessPoolBackend(workers, retry=retry)


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 store: Optional[ResultStore] = None,
                 progress: Optional[ProgressCallback] = None,
                 backend: Optional[ExecutorBackend] = None,
                 retry: Optional[RetryPolicy] = None,
                 strict: bool = False) -> CampaignRun:
    """Execute a campaign and merge its shards into experiment results.

    Parameters
    ----------
    spec:
        The campaign to run.
    workers:
        Process count when no explicit ``backend`` is given; ``1`` executes
        in-process (:class:`~repro.campaign.backends.SerialBackend`), more
        uses a local :class:`~repro.campaign.backends.ProcessPoolBackend`.
    store:
        Optional on-disk store.  Completed shards are persisted atomically as
        they land; shards already persisted (from an earlier, possibly
        killed, run of the same spec) are not recomputed; a ``progress.json``
        heartbeat tracks completion and ETA.
    progress:
        Optional callback invoked after every completed shard.
    backend:
        Explicit executor backend; overrides the ``workers`` heuristic.  The
        merged result is bit-identical whichever backend runs the shards.
    retry:
        Retry budget/backoff for failing shards when no explicit ``backend``
        is given (an explicit backend carries its own policy).
    strict:
        Fail the run (one aggregated :class:`ShardFailure` listing *every*
        parked shard) when any shard exhausts its retry budget.  The default
        parks such shards in the store's quarantine, merges the complete
        replicates, withholds ``merged.json``, and returns normally with
        :attr:`CampaignRun.quarantined` populated — so one poison shard
        cannot throw away a night of fleet work.
    """
    if backend is None:
        backend = default_backend(workers, retry=retry)
    adapter = get_adapter(spec.experiment)
    # An axis the shard runner does not understand would silently multiply
    # shards and desynchronise the serial-slice arithmetic; fail instead.
    adapter.validate_axes(spec)
    shards = spec.compile()

    records: Dict[int, ShardRecord] = {}
    if store is not None:
        store.save_spec(spec)
        by_index = {shard.index: shard for shard in shards}
        for index, record in store.load_records().items():
            shard = by_index.get(index)
            if shard is None or not record.matches(shard):
                raise StoreMismatchError(
                    f"stored shard {index} does not match the campaign plan "
                    f"(stale store at {store.root}); use a fresh directory")
            records[index] = record

    pending = [shard for shard in shards if shard.index not in records]
    completed = len(records)
    total = len(shards)
    tracker = CampaignProgress(spec.name, spec.experiment, total=total,
                               completed=completed)
    if store is not None:
        store.save_progress(tracker.snapshot())

    def _land(record: ShardRecord, persisted: bool = False) -> None:
        nonlocal completed
        records[record.index] = record
        completed += 1
        if store is not None and not persisted:
            store.save_record(record)
        tracker.record_completed(completed)
        if store is not None:
            store.save_progress(tracker.snapshot())
        if progress is not None:
            progress(completed, total, record)

    parked: Dict[int, QuarantineEntry] = {}

    def _park(entry: QuarantineEntry, persisted: bool = False) -> None:
        parked[entry.index] = entry
        if store is not None and not persisted:
            store.save_quarantine(entry)

    if pending:
        if store is not None:
            # A fresh execution (including a resume) re-attempts previously
            # quarantined shards with a fresh budget.
            store.clear_quarantine()
            store.clear_attempts()
        backend.execute(spec, pending, _land, store, _park)

    if parked and strict:
        raise ShardFailure(quarantine_summary(parked, store))

    executed = len(pending) - len(parked)
    ordered = [records[shard.index] for shard in shards
               if shard.index in records]
    results = _merge(adapter, spec, ordered,
                     complete_only=bool(parked), shards=shards)
    run = CampaignRun(spec=spec, records=tuple(ordered), results=results,
                      executed=executed,
                      quarantined=tuple(parked[index]
                                        for index in sorted(parked)))
    if store is not None:
        # merged.json is the bit-identity artifact; a quarantined campaign
        # must never masquerade as it.
        if not parked:
            store.save_merged(run.campaign_result())
        store.save_progress(tracker.snapshot())
    return run


def _merge(adapter: CampaignAdapter, spec: CampaignSpec,
           ordered: List[ShardRecord], complete_only: bool = False,
           shards: Optional[List[ShardSpec]] = None) -> Tuple[Any, ...]:
    """Reduce records into one typed result per replicate.

    Every payload is revived from its JSON form — including records that
    never left the parent process — so the merge input is canonical no
    matter where a shard ran.  With ``complete_only`` (a quarantined run),
    replicates missing any of their planned shards are skipped entirely:
    merging a partial replicate would silently change its result.
    """
    planned: Dict[int, int] = {}
    if complete_only and shards is not None:
        for shard in shards:
            planned[shard.replicate] = planned.get(shard.replicate, 0) + 1
    by_replicate: Dict[int, List[ShardRecord]] = {}
    for record in ordered:
        by_replicate.setdefault(record.replicate, []).append(record)
    results = []
    for replicate in sorted(by_replicate):
        replicate_records = sorted(by_replicate[replicate],
                                   key=lambda record: record.point)
        if complete_only and len(replicate_records) < planned.get(replicate, 0):
            continue
        payloads = [from_jsonable(adapter.shard_type, record.result)
                    for record in replicate_records]
        results.append(adapter.merge(spec, payloads))
    return tuple(results)
