"""Campaign-level progress accounting: completed/total, throughput, ETA.

One :class:`CampaignProgress` instance tracks a single campaign execution.
The engine updates it as shards land and, when a result store is attached,
persists each snapshot as the store's ``progress.json`` heartbeat — so an
operator (or a monitoring script) can watch a long campaign converge from any
host that sees the shared store, including file-queue runs whose workers are
scattered across machines.  The CLI's ``--progress`` flag renders the same
snapshots as one-line updates.

Throughput and ETA are computed from the shards *executed this run*: shards
that were resumed from the store completed at some earlier time and would
poison the rate estimate.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["CampaignProgress", "format_duration"]


def format_duration(seconds: Optional[float]) -> str:
    """A compact human rendering of a duration (``None``/infinite -> ``?``)."""
    if seconds is None or seconds != seconds or seconds == float("inf"):
        return "?"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class CampaignProgress:
    """Progress/ETA accounting for one campaign execution."""

    def __init__(self, name: str, experiment: str, total: int,
                 completed: int = 0) -> None:
        if total < 0 or completed < 0 or completed > total:
            raise ValueError("progress counters out of range")
        self.name = name
        self.experiment = experiment
        self.total = total
        #: Shards with a record (resumed ones included).
        self.completed = completed
        #: Shards executed by this run (drives throughput/ETA).
        self.executed = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------ loading
    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional[Dict[str, Any]]:
        """Read a ``progress.json`` heartbeat, tolerating torn files.

        The heartbeat is rewritten every shard; a ``--progress`` follower (or
        any store reader on a network filesystem) can catch it mid-rewrite.
        A missing, vanished, or half-visible document reads as ``None`` —
        "no heartbeat yet" — and the follower simply retries next poll.
        """
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(data, dict):
            return None
        return data

    # ------------------------------------------------------------------ updates
    def record_completed(self, completed: Optional[int] = None) -> None:
        """Count one more landed shard (or jump to an absolute count)."""
        if completed is None:
            self.completed += 1
        else:
            self.completed = int(completed)
        self.executed += 1

    # ------------------------------------------------------------------ derived
    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds since this run started."""
        return time.perf_counter() - self._started

    @property
    def remaining(self) -> int:
        """Shards still without a record."""
        return self.total - self.completed

    @property
    def throughput_shards_per_s(self) -> float:
        """Execution rate of this run (0.0 until the first shard lands)."""
        elapsed = self.elapsed_s
        if self.executed == 0 or elapsed <= 0:
            return 0.0
        return self.executed / elapsed

    @property
    def eta_s(self) -> Optional[float]:
        """Estimated seconds until the last shard lands (``None`` if unknown)."""
        if self.remaining == 0:
            return 0.0
        rate = self.throughput_shards_per_s
        if rate <= 0:
            return None
        return self.remaining / rate

    @property
    def done(self) -> bool:
        """True once every shard has a record."""
        return self.completed >= self.total

    # ----------------------------------------------------------------- output
    def snapshot(self) -> Dict[str, Any]:
        """The heartbeat document (what ``progress.json`` holds)."""
        eta = self.eta_s
        return {
            "name": self.name,
            "experiment": self.experiment,
            "total_shards": self.total,
            "completed_shards": self.completed,
            "executed_this_run": self.executed,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_shards_per_s": round(self.throughput_shards_per_s, 4),
            "eta_s": None if eta is None else round(eta, 3),
            "done": self.done,
            "updated_unix": time.time(),
        }

    def format_line(self) -> str:
        """One-line rendering for the CLI's ``--progress`` mode."""
        percent = 100.0 * self.completed / self.total if self.total else 100.0
        return (f"[{self.completed}/{self.total}] {percent:5.1f}% | "
                f"{self.throughput_shards_per_s:.2f} shard/s | "
                f"ETA {format_duration(self.eta_s)}")
