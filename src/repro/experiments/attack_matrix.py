"""The extended attack-family evaluation (the scenario diversity engine).

One experiment, parameterised by scenario, measuring every attack family of
:mod:`repro.attacks.families` against the trained SecureAngle detector: a
legitimate client trains its certified signature, then each attacker of the
scenario replays/mirrors/swarms/drifts the victim's address and the
evaluation counts detections.  The wiring deliberately mirrors
:mod:`repro.experiments.spoofing_eval` (same victim, same packet epochs, the
same one-AP stream layout) so the two evaluations are directly comparable —
but it drives captures through the attacker seams: ``transmit_position`` per
packet (swarms), waveform shaping (replay, CFO), and path shaping
(reflectors).

Each family is exposed as its own campaign experiment (``replay_eval``,
``reflector_eval``, ``swarm_eval``, ``cfo_drift_eval``) so the campaign
conformance gate covers all four; they share this module's runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import SCENARIOS, Deployment
from repro.api.spec import ScenarioSpec
from repro.attacks.attacker import Attacker
from repro.attacks.spoofing_attack import SpoofingAttack
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.spoofing import SpoofingVerdict
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.mac.address import MacAddress
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.serde import JsonSerializable

#: Defaults shared by the serial runners and the campaign adapters (kept
#: equal to the spoofing evaluation's, for comparability).
DEFAULT_VICTIM_CLIENT = 5
DEFAULT_TRAINING_PACKETS = 10
DEFAULT_TEST_PACKETS = 20

#: The scenario presets this experiment runs (canonical registry names).
ATTACK_MATRIX_SCENARIOS = ("replay", "reflector", "swarm", "cfo_drift")


@dataclass(frozen=True)
class AttackOutcome(JsonSerializable):
    """Detection statistics for one attacker of the scenario."""

    attacker_name: str
    attack_type: str
    attacker_position: Point
    detection_rate: float
    mean_similarity: float


@dataclass(frozen=True)
class AttackMatrixResult(JsonSerializable):
    """Results of one attack-family evaluation."""

    scenario: str
    victim_client_id: int
    false_alarm_rate: float
    attackers: List[AttackOutcome]

    @property
    def mean_detection_rate(self) -> float:
        """Mean detection rate across the scenario's attackers."""
        return float(np.mean([outcome.detection_rate
                              for outcome in self.attackers]))

    def as_table(self) -> str:
        """Text rendering of the per-attacker outcomes."""
        rows = [("legitimate client (false alarms)", "-", "-",
                 self.false_alarm_rate, "-")]
        rows.extend(
            (outcome.attacker_name, outcome.attack_type,
             f"({outcome.attacker_position.x:.1f}, {outcome.attacker_position.y:.1f})",
             outcome.detection_rate, outcome.mean_similarity)
            for outcome in self.attackers
        )
        return format_table(
            ["transmitter", "attack", "position", "flag rate", "mean similarity"],
            rows,
        )


def _resolve_scenario(scenario: str,
                      estimator_config: Optional[EstimatorConfig],
                      seed: int = 42) -> ScenarioSpec:
    builder = SCENARIOS.get(scenario)
    return builder(estimator=estimator_config, seed=seed)


def run_attack_matrix(scenario: str,
                      victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                      num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                      num_test_packets: int = DEFAULT_TEST_PACKETS,
                      estimator_config: Optional[EstimatorConfig] = None,
                      rng: RngLike = 42) -> AttackMatrixResult:
    """Run one attack-family scenario against the trained detector."""
    if num_training_packets < 1 or num_test_packets < 1:
        raise ValueError("training and test packet counts must be positive")
    canonical = SCENARIOS.canonical(scenario)
    generator = ensure_rng(rng)
    deployment = Deployment(_resolve_scenario(canonical, estimator_config),
                            rng=generator)

    # Same address-draw order as the spoofing evaluation: AP from stream 2,
    # victim from stream 3, attacker addresses lazily from stream 4.
    ap_address = MacAddress.random(spawn_rng(generator, 2))
    victim_address = MacAddress.random(spawn_rng(generator, 3))

    false_alarms = _train_and_track(deployment, victim_address,
                                    victim_client_id, num_training_packets,
                                    num_test_packets)

    outcomes = [
        _attacker_outcome(deployment, attacker, victim_address, ap_address,
                          num_test_packets)
        for attacker in deployment.attackers.values()
    ]
    return AttackMatrixResult(
        scenario=canonical,
        victim_client_id=victim_client_id,
        false_alarm_rate=false_alarms / num_test_packets,
        attackers=outcomes,
    )


def _train_and_track(deployment: Deployment, victim_address: MacAddress,
                     victim_client_id: int, num_training_packets: int,
                     num_test_packets: int) -> int:
    """Train the certified signature, then stream the victim's later packets.

    Returns the false-alarm count.  Mutates the AP's detector/tracker state
    exactly as the serial evaluation does — campaign shards replay this
    before measuring their attacker.
    """
    simulator = deployment.simulator()
    ap = deployment.ap()

    training_captures = [
        simulator.capture_from_client(victim_client_id, elapsed_s=index * 0.5,
                                      timestamp_s=index * 0.5)
        for index in range(num_training_packets)
    ]
    ap.train_client(victim_address, training_captures)

    false_alarms = 0
    probe_captures = [
        simulator.capture_from_client(victim_client_id,
                                      elapsed_s=60.0 + index * 5.0,
                                      timestamp_s=60.0 + index * 5.0)
        for index in range(num_test_packets)
    ]
    probe_observations = ap.signatures_from_captures(probe_captures)
    for capture, observation in zip(probe_captures, probe_observations):
        check = ap.detector.check(victim_address, observation)
        if check.verdict is SpoofingVerdict.SPOOFED:
            false_alarms += 1
        else:
            ap.tracker.observe(victim_address, observation, capture.timestamp_s)
    return false_alarms


def _attacker_outcome(deployment: Deployment, attacker: Attacker,
                      victim_address: MacAddress, ap_address: MacAddress,
                      num_test_packets: int) -> AttackOutcome:
    """Measure one attacker (consumes its captures; resets the detector).

    Unlike the spoofing evaluation's inner loop, captures go through the
    attacker seams: the transmit position is asked per packet (swarm members
    rotate) and waveform/path shaping is applied by the simulator.
    """
    simulator = deployment.simulator()
    ap = deployment.ap()
    attack = SpoofingAttack(attacker=attacker, victim_address=victim_address,
                            ap_address=ap_address, num_frames=num_test_packets)
    detections = 0
    similarities: List[float] = []
    attack_captures = [
        simulator.capture_from_position(
            attacker.transmit_position(index),
            elapsed_s=200.0 + index * 5.0,
            timestamp_s=200.0 + index * 5.0,
            attacker=attacker, tx_power_dbm=attacker.tx_power_dbm)
        for index, _frame in enumerate(attack.iter_frames())
    ]
    attack_observations = ap.signatures_from_captures(attack_captures)
    for _capture, observation in zip(attack_captures, attack_observations):
        check = ap.detector.check(victim_address, observation)
        similarities.append(check.similarity)
        if check.verdict is SpoofingVerdict.SPOOFED:
            detections += 1
    ap.detector.reset(victim_address)
    return AttackOutcome(
        attacker_name=attacker.name,
        attack_type=type(attacker).__name__,
        attacker_position=attacker.position,
        detection_rate=detections / num_test_packets,
        mean_similarity=float(np.mean(similarities)),
    )


# ------------------------------------------------------------------- campaign
@dataclass(frozen=True)
class AttackMatrixShard(JsonSerializable):
    """One attack-matrix shard: the legitimate client or one attacker."""

    role: str
    false_alarm_rate: Optional[float] = None
    outcome: Optional[AttackOutcome] = None

    def __post_init__(self) -> None:
        if self.role not in ("legitimate", "attacker"):
            raise ValueError(f"unknown attack-matrix shard role {self.role!r}")


def attack_matrix_campaign(scenario: str,
                           victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                           num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                           num_test_packets: int = DEFAULT_TEST_PACKETS,
                           seed: int = 42,
                           name: Optional[str] = None) -> CampaignSpec:
    """One attack-family evaluation as a campaign: a shard per transmitter.

    Point 0 measures the legitimate client's false alarms; the following
    points measure the scenario's attackers in declaration order — the
    serial evaluation's capture order, so each shard fast-forwards to its
    own slice after replaying the training and tracking prefix.
    """
    canonical = SCENARIOS.canonical(scenario)
    spec = _resolve_scenario(canonical, None)
    populations = [{"role": "legitimate"}]
    populations.extend(
        {"role": "attacker", "attacker_index": index,
         "attacker": attacker_spec.effective_name()}
        for index, attacker_spec in enumerate(spec.attackers))
    return CampaignSpec(
        name=name if name is not None else f"{canonical}-eval",
        experiment=f"{canonical}_eval",
        seeds=(int(seed),),
        base={"scenario": canonical,
              "victim_client_id": int(victim_client_id),
              "num_training_packets": int(num_training_packets),
              "num_test_packets": int(num_test_packets)},
        axes={"population": tuple(populations)},
    )


def run_attack_matrix_shard(spec: CampaignSpec,
                            shard: ShardSpec) -> AttackMatrixShard:
    """One attack-matrix shard (legitimate client or one attacker)."""
    scenario = SCENARIOS.canonical(str(spec.param("scenario", "replay")))
    num_training = int(spec.param("num_training_packets", DEFAULT_TRAINING_PACKETS))
    num_test = int(spec.param("num_test_packets", DEFAULT_TEST_PACKETS))
    victim_client = int(spec.param("victim_client_id", DEFAULT_VICTIM_CLIENT))
    generator = ensure_rng(shard.seed)
    deployment = Deployment(
        _resolve_scenario(scenario, estimator_from_params(spec.base)),
        rng=generator)
    ap_address = MacAddress.random(spawn_rng(generator, 2))
    victim_address = MacAddress.random(spawn_rng(generator, 3))

    false_alarms = _train_and_track(deployment, victim_address, victim_client,
                                    num_training, num_test)
    population = shard.params["population"]
    if population["role"] == "legitimate":
        return AttackMatrixShard(role="legitimate",
                                 false_alarm_rate=false_alarms / num_test)

    attackers = list(deployment.attackers.values())
    attacker_index = int(population["attacker_index"])
    if shard.point > 1:
        # The serial loop resets the victim's mismatch streak after each
        # attacker, so every attacker but the first starts from a clean one.
        deployment.ap().detector.reset(victim_address)
    # Fast-forward past the prior attackers' capture slices.  Shaping
    # attackers (replay, CFO) spawn the extra waveform substream, so the
    # skip width depends on each prior attacker's class — a flat
    # ``(point - 1) * num_test`` skip would desynchronise the generator.
    simulator = deployment.simulator()
    for prior in attackers[:attacker_index]:
        simulator.skip_captures(
            num_test, spawns_per_capture=5 if prior.shapes_waveform else 4)
    outcome = _attacker_outcome(deployment, attackers[attacker_index],
                                victim_address, ap_address, num_test)
    return AttackMatrixShard(role="attacker", outcome=outcome)


def merge_attack_matrix(spec: CampaignSpec,
                        records: Sequence[AttackMatrixShard]) -> AttackMatrixResult:
    """Reduce the per-transmitter shards into the serial evaluation."""
    legitimate = [record for record in records if record.role == "legitimate"]
    if len(legitimate) != 1:
        raise ValueError(
            "an attack-matrix campaign needs exactly one legitimate shard")
    return AttackMatrixResult(
        scenario=SCENARIOS.canonical(str(spec.param("scenario", "replay"))),
        victim_client_id=int(spec.param("victim_client_id",
                                        DEFAULT_VICTIM_CLIENT)),
        false_alarm_rate=legitimate[0].false_alarm_rate,
        attackers=[record.outcome for record in records
                   if record.role == "attacker"],
    )


# ------------------------------------------------- per-family campaign wiring
# The campaign registry, the CLI, and the conformance gate all key on the
# experiment name, so each family gets thin named wrappers over the shared
# runner.  (The wrappers — not functools.partial — keep the signatures
# introspectable and the registry entries picklable for process backends.)
def replay_eval_campaign(**kwargs: object) -> CampaignSpec:
    """The replay evaluation's default campaign spec."""
    return attack_matrix_campaign("replay", **kwargs)  # type: ignore[arg-type]


def reflector_eval_campaign(**kwargs: object) -> CampaignSpec:
    """The reflector evaluation's default campaign spec."""
    return attack_matrix_campaign("reflector", **kwargs)  # type: ignore[arg-type]


def swarm_eval_campaign(**kwargs: object) -> CampaignSpec:
    """The swarm evaluation's default campaign spec."""
    return attack_matrix_campaign("swarm", **kwargs)  # type: ignore[arg-type]


def cfo_drift_eval_campaign(**kwargs: object) -> CampaignSpec:
    """The CFO-drift evaluation's default campaign spec."""
    return attack_matrix_campaign("cfo_drift", **kwargs)  # type: ignore[arg-type]


def run_replay_eval(**kwargs: object) -> AttackMatrixResult:
    """Serial replay evaluation (campaign-conformance reference)."""
    return run_attack_matrix("replay", **kwargs)  # type: ignore[arg-type]


def run_reflector_eval(**kwargs: object) -> AttackMatrixResult:
    """Serial reflector evaluation (campaign-conformance reference)."""
    return run_attack_matrix("reflector", **kwargs)  # type: ignore[arg-type]


def run_swarm_eval(**kwargs: object) -> AttackMatrixResult:
    """Serial swarm evaluation (campaign-conformance reference)."""
    return run_attack_matrix("swarm", **kwargs)  # type: ignore[arg-type]


def run_cfo_drift_eval(**kwargs: object) -> AttackMatrixResult:
    """Serial CFO-drift evaluation (campaign-conformance reference)."""
    return run_attack_matrix("cfo_drift", **kwargs)  # type: ignore[arg-type]
