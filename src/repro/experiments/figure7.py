"""Figure 7: pseudospectrum resolution versus number of antennas.

The paper processes the *same* packet from client 12 (the one partially
blocked by the cement pillar, with strong multipath) with 2, 4, 6 and 8
antennas of the linear arrangement, and shows that more antennas give sharper
peaks, separate the direct path from reflections, and land closer to the true
bearing.

``run_figure7`` reproduces that: one capture is simulated with the full
8-antenna linear array, the first 2/4/6/8 antenna rows are selected (which is
exactly what ignoring trailing radio chains does on the prototype), and MUSIC
is run on each subarray.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.aoa.batch import BatchAoAEstimator
from repro.aoa.estimator import EstimatorConfig
from repro.aoa.spectrum import Pseudospectrum
from repro.api import Deployment, single_ap_scenario
from repro.arrays.geometry import UniformLinearArray
from repro.arrays.subarray import subarray_samples
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.experiments.reporting import format_table
from repro.hardware.capture import Capture
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable

#: The antenna counts Figure 7 compares.
DEFAULT_ANTENNA_COUNTS = (2, 4, 6, 8)

#: The paper uses client 12 (blocked by the pillar, strong multipath).
DEFAULT_CLIENT = 12

#: Packets the sweep medians over (shared by serial runner and campaign).
DEFAULT_NUM_PACKETS = 3


@dataclass(frozen=True)
class AntennaCountRow(JsonSerializable):
    """Result of processing the capture with one antenna count."""

    num_antennas: int
    spectrum: Pseudospectrum
    bearing_deg: float
    bearing_error_deg: float
    num_peaks: int


@dataclass(frozen=True)
class Figure7Result(JsonSerializable):
    """The full antenna-count sweep for one capture."""

    client_id: int
    expected_bearing_deg: float
    rows: List[AntennaCountRow]

    @property
    def errors_by_antenna_count(self) -> Dict[int, float]:
        """Bearing error keyed by antenna count."""
        return {row.num_antennas: row.bearing_error_deg for row in self.rows}

    @property
    def peaks_by_antenna_count(self) -> Dict[int, int]:
        """Number of resolved peaks keyed by antenna count."""
        return {row.num_antennas: row.num_peaks for row in self.rows}

    def as_table(self) -> str:
        """Text rendering of the sweep."""
        return format_table(
            ["antennas", "bearing (deg)", "error (deg)", "resolved peaks"],
            [(row.num_antennas, row.bearing_deg, row.bearing_error_deg, row.num_peaks)
             for row in self.rows],
        )


def run_figure7(client_id: int = DEFAULT_CLIENT,
                antenna_counts: Sequence[int] = DEFAULT_ANTENNA_COUNTS,
                num_packets: int = DEFAULT_NUM_PACKETS,
                rng: RngLike = 42) -> Figure7Result:
    """Reproduce Figure 7: the same packet processed with growing subarrays.

    Each of ``num_packets`` captures is processed with every antenna count (so
    the per-count comparison always uses the same packet, as in the paper);
    the reported bearing error per antenna count is the median over the
    packets, which keeps the sweep representative rather than hostage to one
    fading realisation.  The returned pseudospectra are those of the first
    packet.
    """
    counts = sorted(set(int(count) for count in antenna_counts))
    if not counts or counts[0] < 2:
        raise ValueError("antenna counts must be at least 2")
    if counts[-1] > 8:
        raise ValueError("the prototype array has at most 8 antennas")
    if num_packets < 1:
        raise ValueError("num_packets must be at least 1")
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="figure7"), rng=rng)
    simulator = deployment.simulator()
    full_array = deployment.ap().array
    calibration = deployment.ap().calibration
    expected = simulator.expected_client_bearing(client_id)

    captures = [calibration.apply(simulator.capture_from_client(client_id, elapsed_s=i * 0.5))
                for i in range(num_packets)]

    rows: List[AntennaCountRow] = []
    for count in counts:
        rows.append(_antenna_count_row(captures, count, full_array.spacing, expected))
    return Figure7Result(client_id=client_id, expected_bearing_deg=float(expected), rows=rows)


def _antenna_count_row(captures: Sequence[Capture], count: int,
                       spacing_m: float, expected: float) -> AntennaCountRow:
    """Process the shared captures with the first ``count`` antenna rows."""
    array = UniformLinearArray(num_elements=count, spacing_m=spacing_m)
    engine = BatchAoAEstimator(array, EstimatorConfig(
        source_count_method="gap", max_sources=min(3, count - 1),
        forward_backward=True, loading_factor=1e-6))
    estimates = engine.process_samples_batch([
        subarray_samples(capture.samples, num_elements=count) for capture in captures
    ])
    errors: List[float] = []
    bearings: List[float] = []
    peak_counts: List[int] = []
    first_spectrum: Pseudospectrum = estimates[0].pseudospectrum
    for estimate in estimates:
        spectrum = estimate.pseudospectrum
        peaks = spectrum.peak_bearings(min_relative_height=0.1, min_separation_deg=8.0)
        bearing = peaks[0] if peaks else spectrum.peak_bearing()
        bearings.append(float(bearing))
        errors.append(float(abs(bearing - expected)))
        peak_counts.append(len(peaks))
    median_index = int(np.argsort(errors)[len(errors) // 2])
    return AntennaCountRow(
        num_antennas=count,
        spectrum=first_spectrum,
        bearing_deg=bearings[median_index],
        bearing_error_deg=float(np.median(errors)),
        num_peaks=int(np.max(peak_counts)),
    )


# ------------------------------------------------------------------- campaign
def figure7_campaign(client_id: int = DEFAULT_CLIENT,
                     antenna_counts: Sequence[int] = DEFAULT_ANTENNA_COUNTS,
                     num_packets: int = DEFAULT_NUM_PACKETS,
                     seed: int = 42,
                     name: str = "figure7") -> CampaignSpec:
    """Figure 7 as a campaign: one shard per antenna count.

    Every shard re-simulates the same shared captures from the same seed (the
    paper compares antenna counts on the *same* packet), so the per-count rows
    are bit-identical to the serial sweep.
    """
    counts = sorted(set(int(count) for count in antenna_counts))
    if not counts or counts[0] < 2:
        raise ValueError("antenna counts must be at least 2")
    if counts[-1] > 8:
        raise ValueError("the prototype array has at most 8 antennas")
    return CampaignSpec(
        name=name,
        experiment="figure7",
        seeds=(int(seed),),
        base={"client_id": int(client_id), "num_packets": int(num_packets)},
        axes={"num_antennas": tuple(counts)},
    )


def _figure7_captures(spec: CampaignSpec, seed: int):
    """The shared captures every Figure 7 shard processes (seed-exact)."""
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="figure7"), rng=seed)
    simulator = deployment.simulator()
    calibration = deployment.ap().calibration
    client_id = int(spec.param("client_id", DEFAULT_CLIENT))
    num_packets = int(spec.param("num_packets", DEFAULT_NUM_PACKETS))
    captures = [calibration.apply(simulator.capture_from_client(client_id, elapsed_s=i * 0.5))
                for i in range(num_packets)]
    expected = simulator.expected_client_bearing(client_id)
    return captures, deployment.ap().array.spacing, float(expected)


def run_figure7_shard(spec: CampaignSpec, shard: ShardSpec) -> AntennaCountRow:
    """One Figure 7 campaign shard: the shared captures at one antenna count."""
    captures, spacing_m, expected = _figure7_captures(spec, shard.seed)
    return _antenna_count_row(captures, int(shard.params["num_antennas"]),
                              spacing_m, expected)


def merge_figure7(spec: CampaignSpec,
                  rows: Sequence[AntennaCountRow]) -> Figure7Result:
    """Reduce one replicate's shard rows into the serial result.

    The expected bearing is pure geometry (environment and array layout, no
    randomness), so the merge recomputes it from a bare simulator instead of
    compiling — and calibrating — a whole deployment.
    """
    from repro.api import ENVIRONMENTS
    from repro.api.spec import ArraySpec
    from repro.testbed.scenario import TestbedSimulator

    client_id = int(spec.param("client_id", DEFAULT_CLIENT))
    simulator = TestbedSimulator(ENVIRONMENTS.get("figure4")(),
                                 ArraySpec(geometry="linear",
                                           num_elements=8).build(), rng=0)
    expected = simulator.expected_client_bearing(client_id)
    return Figure7Result(client_id=client_id,
                         expected_bearing_deg=float(expected), rows=list(rows))
