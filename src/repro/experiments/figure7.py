"""Figure 7: pseudospectrum resolution versus number of antennas.

The paper processes the *same* packet from client 12 (the one partially
blocked by the cement pillar, with strong multipath) with 2, 4, 6 and 8
antennas of the linear arrangement, and shows that more antennas give sharper
peaks, separate the direct path from reflections, and land closer to the true
bearing.

``run_figure7`` reproduces that: one capture is simulated with the full
8-antenna linear array, the first 2/4/6/8 antenna rows are selected (which is
exactly what ignoring trailing radio chains does on the prototype), and MUSIC
is run on each subarray.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.aoa.batch import BatchAoAEstimator
from repro.aoa.estimator import EstimatorConfig
from repro.aoa.spectrum import Pseudospectrum
from repro.api import Deployment, single_ap_scenario
from repro.arrays.geometry import UniformLinearArray
from repro.arrays.subarray import subarray_samples
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable

#: The antenna counts Figure 7 compares.
DEFAULT_ANTENNA_COUNTS = (2, 4, 6, 8)

#: The paper uses client 12 (blocked by the pillar, strong multipath).
DEFAULT_CLIENT = 12


@dataclass(frozen=True)
class AntennaCountRow(JsonSerializable):
    """Result of processing the capture with one antenna count."""

    num_antennas: int
    spectrum: Pseudospectrum
    bearing_deg: float
    bearing_error_deg: float
    num_peaks: int


@dataclass(frozen=True)
class Figure7Result(JsonSerializable):
    """The full antenna-count sweep for one capture."""

    client_id: int
    expected_bearing_deg: float
    rows: List[AntennaCountRow]

    @property
    def errors_by_antenna_count(self) -> Dict[int, float]:
        """Bearing error keyed by antenna count."""
        return {row.num_antennas: row.bearing_error_deg for row in self.rows}

    @property
    def peaks_by_antenna_count(self) -> Dict[int, int]:
        """Number of resolved peaks keyed by antenna count."""
        return {row.num_antennas: row.num_peaks for row in self.rows}

    def as_table(self) -> str:
        """Text rendering of the sweep."""
        return format_table(
            ["antennas", "bearing (deg)", "error (deg)", "resolved peaks"],
            [(row.num_antennas, row.bearing_deg, row.bearing_error_deg, row.num_peaks)
             for row in self.rows],
        )


def run_figure7(client_id: int = DEFAULT_CLIENT,
                antenna_counts: Sequence[int] = DEFAULT_ANTENNA_COUNTS,
                num_packets: int = 3,
                rng: RngLike = 42) -> Figure7Result:
    """Reproduce Figure 7: the same packet processed with growing subarrays.

    Each of ``num_packets`` captures is processed with every antenna count (so
    the per-count comparison always uses the same packet, as in the paper);
    the reported bearing error per antenna count is the median over the
    packets, which keeps the sweep representative rather than hostage to one
    fading realisation.  The returned pseudospectra are those of the first
    packet.
    """
    counts = sorted(set(int(count) for count in antenna_counts))
    if not counts or counts[0] < 2:
        raise ValueError("antenna counts must be at least 2")
    if counts[-1] > 8:
        raise ValueError("the prototype array has at most 8 antennas")
    if num_packets < 1:
        raise ValueError("num_packets must be at least 1")
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="figure7"), rng=rng)
    simulator = deployment.simulator()
    full_array = deployment.ap().array
    calibration = deployment.ap().calibration
    expected = simulator.expected_client_bearing(client_id)

    captures = [calibration.apply(simulator.capture_from_client(client_id, elapsed_s=i * 0.5))
                for i in range(num_packets)]

    rows: List[AntennaCountRow] = []
    for count in counts:
        array = UniformLinearArray(num_elements=count, spacing_m=full_array.spacing)
        engine = BatchAoAEstimator(array, EstimatorConfig(
            source_count_method="gap", max_sources=min(3, count - 1),
            forward_backward=True, loading_factor=1e-6))
        estimates = engine.process_samples_batch([
            subarray_samples(capture.samples, num_elements=count) for capture in captures
        ])
        errors: List[float] = []
        bearings: List[float] = []
        peak_counts: List[int] = []
        first_spectrum: Pseudospectrum = estimates[0].pseudospectrum
        for estimate in estimates:
            spectrum = estimate.pseudospectrum
            peaks = spectrum.peak_bearings(min_relative_height=0.1, min_separation_deg=8.0)
            bearing = peaks[0] if peaks else spectrum.peak_bearing()
            bearings.append(float(bearing))
            errors.append(float(abs(bearing - expected)))
            peak_counts.append(len(peaks))
        median_index = int(np.argsort(errors)[len(errors) // 2])
        rows.append(AntennaCountRow(
            num_antennas=count,
            spectrum=first_spectrum,
            bearing_deg=bearings[median_index],
            bearing_error_deg=float(np.median(errors)),
            num_peaks=int(np.max(peak_counts)),
        ))
    return Figure7Result(client_id=client_id, expected_bearing_deg=float(expected), rows=rows)
