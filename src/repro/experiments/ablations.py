"""Ablations of the design choices DESIGN.md calls out.

* **Calibration on/off** (Section 2.2): without removing the per-chain phase
  offsets the inter-antenna phase comparison is meaningless and bearings are
  essentially random.
* **Estimator comparison** (Section 2.1 and Equation 1): the two-antenna phase
  method versus the Bartlett and Capon beamformers versus MUSIC.
* **SNR sweep**: bearing error as the transmit power (and hence SNR) drops.
* **Packets-per-signature sweep**: how much averaging multiple packets into a
  signature buys for spoofing discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.aoa.estimator import AoAEstimator, EstimatorConfig
from repro.api import AOA_METHODS, Deployment, single_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec
from repro.core.metrics import signature_similarity
from repro.core.signature import AoASignature
from repro.experiments.reporting import format_table
from repro.utils.angles import angular_difference
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runners and the campaign adapters.
DEFAULT_CALIBRATION_CLIENTS = (1, 3, 5, 7, 9)
DEFAULT_COMPARISON_CLIENTS = (13, 14, 17, 18, 19, 20)
DEFAULT_PACKETS_PER_CLIENT = 3
DEFAULT_TX_POWERS_DBM = (-80.0, -70.0, -60.0, -45.0, -25.0, 0.0, 15.0)
DEFAULT_SNR_CLIENTS = (1, 5, 9)
DEFAULT_TRAINING_SIZES = (1, 2, 5, 10)
DEFAULT_PPS_VICTIM_CLIENT = 5
DEFAULT_PPS_ATTACKER_CLIENT = 9
DEFAULT_PPS_PROBE_PACKETS = 5


# --------------------------------------------------------------------------- E7
@dataclass(frozen=True)
class CalibrationAblation(JsonSerializable):
    """Median bearing error with and without phase calibration."""

    median_error_calibrated_deg: float
    median_error_uncalibrated_deg: float

    def as_table(self) -> str:
        return format_table(
            ["pipeline", "median bearing error (deg)"],
            [("calibrated", self.median_error_calibrated_deg),
             ("uncalibrated", self.median_error_uncalibrated_deg)],
        )


def run_calibration_ablation(client_ids: Sequence[int] = DEFAULT_CALIBRATION_CLIENTS,
                             packets_per_client: int = DEFAULT_PACKETS_PER_CLIENT,
                             rng: RngLike = 42) -> CalibrationAblation:
    """Measure bearing error with the calibration step enabled and disabled."""
    deployment = Deployment(single_ap_scenario(name="calibration-ablation"), rng=rng)
    uncalibrated_estimator = AoAEstimator(deployment.ap().array,
                                          EstimatorConfig(require_calibrated=False))

    calibrated_errors: List[float] = []
    uncalibrated_errors: List[float] = []
    for client_id in client_ids:
        calibrated, uncalibrated = _calibration_errors(
            deployment, uncalibrated_estimator, client_id, packets_per_client)
        calibrated_errors.extend(calibrated)
        uncalibrated_errors.extend(uncalibrated)
    return CalibrationAblation(
        median_error_calibrated_deg=float(np.median(calibrated_errors)),
        median_error_uncalibrated_deg=float(np.median(uncalibrated_errors)),
    )


def _calibration_errors(deployment: Deployment,
                        uncalibrated_estimator: AoAEstimator, client_id: int,
                        packets_per_client: int):
    """One client's calibrated/uncalibrated bearing errors."""
    simulator = deployment.simulator()
    calibrated_ap = deployment.ap()
    expected = simulator.expected_client_bearing(client_id)
    calibrated_errors: List[float] = []
    uncalibrated_errors: List[float] = []
    for index in range(packets_per_client):
        capture = simulator.capture_from_client(client_id, elapsed_s=index * 0.5)
        with_cal = calibrated_ap.analyze(capture)
        without_cal = uncalibrated_estimator.process(capture)
        calibrated_errors.append(float(angular_difference(with_cal.bearing_deg, expected)))
        uncalibrated_errors.append(float(angular_difference(without_cal.bearing_deg, expected)))
    return calibrated_errors, uncalibrated_errors


@dataclass(frozen=True)
class CalibrationShard(JsonSerializable):
    """One calibration-ablation shard: a single client's error lists."""

    client_id: int
    calibrated_errors_deg: List[float]
    uncalibrated_errors_deg: List[float]


def calibration_ablation_campaign(client_ids: Sequence[int] = DEFAULT_CALIBRATION_CLIENTS,
                                  packets_per_client: int = DEFAULT_PACKETS_PER_CLIENT,
                                  seed: int = 42,
                                  name: str = "calibration-ablation") -> CampaignSpec:
    """The calibration ablation as a campaign: one shard per client."""
    return CampaignSpec(
        name=name,
        experiment="calibration_ablation",
        seeds=(int(seed),),
        base={"packets_per_client": int(packets_per_client)},
        axes={"client_id": tuple(int(client) for client in client_ids)},
    )


def run_calibration_shard(spec: CampaignSpec, shard: ShardSpec) -> CalibrationShard:
    """One calibration-ablation shard (a single client's packets)."""
    packets_per_client = int(spec.param("packets_per_client",
                                        DEFAULT_PACKETS_PER_CLIENT))
    deployment = Deployment(single_ap_scenario(name="calibration-ablation"),
                            rng=shard.seed)
    uncalibrated_estimator = AoAEstimator(deployment.ap().array,
                                          EstimatorConfig(require_calibrated=False))
    deployment.simulator().skip_captures(shard.point * packets_per_client)
    client_id = int(shard.params["client_id"])
    calibrated, uncalibrated = _calibration_errors(
        deployment, uncalibrated_estimator, client_id, packets_per_client)
    return CalibrationShard(client_id=client_id,
                            calibrated_errors_deg=calibrated,
                            uncalibrated_errors_deg=uncalibrated)


def merge_calibration(spec: CampaignSpec,
                      records: Sequence[CalibrationShard]) -> CalibrationAblation:
    """Reduce per-client error lists into the serial medians."""
    calibrated = [error for record in records
                  for error in record.calibrated_errors_deg]
    uncalibrated = [error for record in records
                    for error in record.uncalibrated_errors_deg]
    return CalibrationAblation(
        median_error_calibrated_deg=float(np.median(calibrated)),
        median_error_uncalibrated_deg=float(np.median(uncalibrated)),
    )


# --------------------------------------------------------------------------- E8
@dataclass(frozen=True)
class EstimatorComparison(JsonSerializable):
    """Median bearing error per estimation method."""

    median_error_by_method_deg: Dict[str, float]

    def as_table(self) -> str:
        return format_table(
            ["method", "median bearing error (deg)"],
            sorted(self.median_error_by_method_deg.items()),
        )


def run_estimator_comparison(client_ids: Sequence[int] = DEFAULT_COMPARISON_CLIENTS,
                             packets_per_client: int = DEFAULT_PACKETS_PER_CLIENT,
                             rng: RngLike = 42) -> EstimatorComparison:
    """Compare Equation 1, Bartlett, Capon, and MUSIC on the linear array.

    Uses the linear-arrangement clients so the two-antenna phase method
    (which reports broadside angles) is directly comparable.
    """
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="estimator-comparison"), rng=rng)
    estimators = _comparison_estimators(deployment)

    errors: Dict[str, List[float]] = {name: [] for name in estimators}
    errors["two-antenna (eq. 1)"] = []
    for client_id in client_ids:
        for name, values in _comparison_errors(deployment, estimators,
                                               client_id, packets_per_client).items():
            errors[name].extend(values)
    return EstimatorComparison(
        median_error_by_method_deg={name: float(np.median(values))
                                    for name, values in errors.items()},
    )


def _comparison_estimators(deployment: Deployment):
    """The named estimator bank the comparison runs (linear array)."""
    array = deployment.ap().array
    return {
        name: AoAEstimator(array, AOA_METHODS.get(name).estimator_config())
        for name in ("music", "capon", "bartlett")
    }


def _comparison_errors(deployment: Deployment, estimators,
                       client_id: int, packets_per_client: int) -> Dict[str, List[float]]:
    """One client's per-method bearing errors (consumes its packets)."""
    simulator = deployment.simulator()
    array = deployment.ap().array
    calibration = deployment.ap().calibration
    two_antenna = AOA_METHODS.get("phase_interferometry")
    expected = simulator.expected_client_bearing(client_id)
    errors: Dict[str, List[float]] = {name: [] for name in estimators}
    errors["two-antenna (eq. 1)"] = []
    for index in range(packets_per_client):
        capture = simulator.capture_from_client(client_id, elapsed_s=index * 0.5)
        calibrated = calibration.apply(capture)
        for name, estimator in estimators.items():
            estimate = estimator.process(calibrated)
            errors[name].append(float(angular_difference(estimate.bearing_deg, expected)))
        bearing = two_antenna.bearings(calibrated.samples, array)[0]
        errors["two-antenna (eq. 1)"].append(float(angular_difference(bearing, expected)))
    return errors


@dataclass(frozen=True)
class EstimatorComparisonShard(JsonSerializable):
    """One estimator-comparison shard: a single client's per-method errors."""

    client_id: int
    errors_by_method_deg: Dict[str, List[float]]


def estimator_comparison_campaign(client_ids: Sequence[int] = DEFAULT_COMPARISON_CLIENTS,
                                  packets_per_client: int = DEFAULT_PACKETS_PER_CLIENT,
                                  seed: int = 42,
                                  name: str = "estimator-comparison") -> CampaignSpec:
    """The estimator comparison as a campaign: one shard per client."""
    return CampaignSpec(
        name=name,
        experiment="estimator_comparison",
        seeds=(int(seed),),
        base={"packets_per_client": int(packets_per_client)},
        axes={"client_id": tuple(int(client) for client in client_ids)},
    )


def run_estimator_comparison_shard(spec: CampaignSpec,
                                   shard: ShardSpec) -> EstimatorComparisonShard:
    """One estimator-comparison shard (a single client's packets)."""
    packets_per_client = int(spec.param("packets_per_client",
                                        DEFAULT_PACKETS_PER_CLIENT))
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="estimator-comparison"),
        rng=shard.seed)
    estimators = _comparison_estimators(deployment)
    deployment.simulator().skip_captures(shard.point * packets_per_client)
    client_id = int(shard.params["client_id"])
    return EstimatorComparisonShard(
        client_id=client_id,
        errors_by_method_deg=_comparison_errors(deployment, estimators,
                                                client_id, packets_per_client),
    )


def merge_estimator_comparison(spec: CampaignSpec,
                               records: Sequence[EstimatorComparisonShard]) -> EstimatorComparison:
    """Reduce per-client per-method errors into the serial medians."""
    errors: Dict[str, List[float]] = {}
    for record in records:
        for name, values in record.errors_by_method_deg.items():
            errors.setdefault(name, []).extend(values)
    return EstimatorComparison(
        median_error_by_method_deg={name: float(np.median(values))
                                    for name, values in errors.items()},
    )


# --------------------------------------------------------------------------- E9
@dataclass(frozen=True)
class SnrSweep(JsonSerializable):
    """Median bearing error versus transmit power."""

    median_error_by_tx_power_deg: Dict[float, float]

    def as_table(self) -> str:
        return format_table(
            ["tx power (dBm)", "median bearing error (deg)"],
            sorted(self.median_error_by_tx_power_deg.items()),
        )


def run_snr_sweep(tx_powers_dbm: Sequence[float] = DEFAULT_TX_POWERS_DBM,
                  client_ids: Sequence[int] = DEFAULT_SNR_CLIENTS,
                  packets_per_point: int = DEFAULT_PACKETS_PER_CLIENT,
                  rng: RngLike = 42) -> SnrSweep:
    """Bearing error as the transmit power (and hence SNR at the AP) is reduced."""
    deployment = Deployment(single_ap_scenario(name="snr-sweep"), rng=rng)

    results: Dict[float, float] = {}
    for tx_power in tx_powers_dbm:
        results[float(tx_power)] = _snr_point_error(deployment, float(tx_power),
                                                    client_ids, packets_per_point)
    return SnrSweep(median_error_by_tx_power_deg=results)


def _snr_point_error(deployment: Deployment, tx_power: float,
                     client_ids: Sequence[int], packets_per_point: int) -> float:
    """Median bearing error at one transmit power (consumes its packets)."""
    simulator = deployment.simulator()
    ap = deployment.ap()
    errors: List[float] = []
    for client_id in client_ids:
        expected = simulator.expected_client_bearing(client_id)
        for index in range(packets_per_point):
            capture = simulator.capture_from_client(
                client_id, tx_power_dbm=float(tx_power), elapsed_s=index * 0.5)
            estimate = ap.analyze(capture)
            errors.append(float(angular_difference(estimate.bearing_deg, expected)))
    return float(np.median(errors))


@dataclass(frozen=True)
class SnrShard(JsonSerializable):
    """One SNR-sweep shard: the median error at a single transmit power."""

    tx_power_dbm: float
    median_error_deg: float


def snr_sweep_campaign(tx_powers_dbm: Sequence[float] = DEFAULT_TX_POWERS_DBM,
                       client_ids: Sequence[int] = DEFAULT_SNR_CLIENTS,
                       packets_per_point: int = DEFAULT_PACKETS_PER_CLIENT,
                       seed: int = 42,
                       name: str = "snr-sweep") -> CampaignSpec:
    """The SNR sweep as a campaign: one shard per transmit power."""
    return CampaignSpec(
        name=name,
        experiment="snr_sweep",
        seeds=(int(seed),),
        base={"client_ids": [int(client) for client in client_ids],
              "packets_per_point": int(packets_per_point)},
        axes={"tx_power_dbm": tuple(float(power) for power in tx_powers_dbm)},
    )


def run_snr_shard(spec: CampaignSpec, shard: ShardSpec) -> SnrShard:
    """One SNR-sweep shard (a single transmit power's packets)."""
    client_ids = [int(client) for client in
                  spec.param("client_ids", list(DEFAULT_SNR_CLIENTS))]
    packets_per_point = int(spec.param("packets_per_point", DEFAULT_PACKETS_PER_CLIENT))
    deployment = Deployment(single_ap_scenario(name="snr-sweep"), rng=shard.seed)
    deployment.simulator().skip_captures(
        shard.point * len(client_ids) * packets_per_point)
    tx_power = float(shard.params["tx_power_dbm"])
    return SnrShard(
        tx_power_dbm=tx_power,
        median_error_deg=_snr_point_error(deployment, tx_power, client_ids,
                                          packets_per_point),
    )


def merge_snr_sweep(spec: CampaignSpec, records: Sequence[SnrShard]) -> SnrSweep:
    """Reduce per-power medians into the serial sweep result."""
    return SnrSweep(median_error_by_tx_power_deg={
        record.tx_power_dbm: record.median_error_deg for record in records
    })


# -------------------------------------------------------------------------- E9b
@dataclass(frozen=True)
class PacketsPerSignatureSweep(JsonSerializable):
    """Separation between legitimate and attacker similarity versus training size."""

    legitimate_similarity_by_packets: Dict[int, float]
    attacker_similarity_by_packets: Dict[int, float]

    def separation(self, num_packets: int) -> float:
        """Similarity gap (legitimate minus attacker) for a training size."""
        return (self.legitimate_similarity_by_packets[num_packets]
                - self.attacker_similarity_by_packets[num_packets])

    def as_table(self) -> str:
        rows = []
        for packets in sorted(self.legitimate_similarity_by_packets):
            rows.append((packets,
                         self.legitimate_similarity_by_packets[packets],
                         self.attacker_similarity_by_packets[packets],
                         self.separation(packets)))
        return format_table(
            ["training packets", "legit similarity", "attacker similarity", "separation"],
            rows,
        )


def run_packets_per_signature_sweep(training_sizes: Sequence[int] = DEFAULT_TRAINING_SIZES,
                                    victim_client_id: int = DEFAULT_PPS_VICTIM_CLIENT,
                                    attacker_client_id: int = DEFAULT_PPS_ATTACKER_CLIENT,
                                    num_probe_packets: int = DEFAULT_PPS_PROBE_PACKETS,
                                    rng: RngLike = 42) -> PacketsPerSignatureSweep:
    """How training-set size affects legitimate/attacker signature separation."""
    generator = ensure_rng(rng)
    deployment = Deployment(single_ap_scenario(name="packets-per-signature",
                                               rng_stream=1), rng=generator)

    legitimate: Dict[int, float] = {}
    attacker: Dict[int, float] = {}
    for training_size in training_sizes:
        legit, adversary = _training_size_similarity(
            deployment, int(training_size), victim_client_id,
            attacker_client_id, num_probe_packets)
        legitimate[int(training_size)] = legit
        attacker[int(training_size)] = adversary
    return PacketsPerSignatureSweep(
        legitimate_similarity_by_packets=legitimate,
        attacker_similarity_by_packets=attacker,
    )


def _training_size_similarity(deployment: Deployment, training_size: int,
                              victim_client_id: int, attacker_client_id: int,
                              num_probe_packets: int):
    """One training size's (legitimate, attacker) mean similarities."""
    if training_size < 1:
        raise ValueError("training sizes must be positive")
    simulator = deployment.simulator()
    ap = deployment.ap()

    def signature_of(client_id: int, elapsed_s: float) -> AoASignature:
        capture = simulator.capture_from_client(client_id, elapsed_s=elapsed_s)
        estimate = ap.analyze(capture)
        return AoASignature.from_pseudospectrum(estimate.pseudospectrum, captured_at_s=elapsed_s)

    trained = signature_of(victim_client_id, 0.0)
    for index in range(1, training_size):
        trained = trained.merged_with(signature_of(victim_client_id, index * 0.5),
                                      weight=1.0 / (index + 1))
    legit_similarities = []
    attacker_similarities = []
    for probe in range(num_probe_packets):
        elapsed = 30.0 + probe * 2.0
        legit_similarities.append(signature_similarity(
            trained, signature_of(victim_client_id, elapsed)))
        attacker_similarities.append(signature_similarity(
            trained, signature_of(attacker_client_id, elapsed)))
    return float(np.mean(legit_similarities)), float(np.mean(attacker_similarities))


@dataclass(frozen=True)
class PacketsPerSignatureShard(JsonSerializable):
    """One packets-per-signature shard: similarities at one training size."""

    training_size: int
    legitimate_similarity: float
    attacker_similarity: float


def packets_per_signature_campaign(training_sizes: Sequence[int] = DEFAULT_TRAINING_SIZES,
                                   victim_client_id: int = DEFAULT_PPS_VICTIM_CLIENT,
                                   attacker_client_id: int = DEFAULT_PPS_ATTACKER_CLIENT,
                                   num_probe_packets: int = DEFAULT_PPS_PROBE_PACKETS,
                                   seed: int = 42,
                                   name: str = "packets-per-signature") -> CampaignSpec:
    """The packets-per-signature sweep as a campaign: one shard per size."""
    return CampaignSpec(
        name=name,
        experiment="packets_per_signature",
        seeds=(int(seed),),
        base={"victim_client_id": int(victim_client_id),
              "attacker_client_id": int(attacker_client_id),
              "num_probe_packets": int(num_probe_packets)},
        axes={"training_size": tuple(int(size) for size in training_sizes)},
    )


def run_packets_per_signature_shard(spec: CampaignSpec,
                                    shard: ShardSpec) -> PacketsPerSignatureShard:
    """One packets-per-signature shard (a single training size)."""
    num_probe = int(spec.param("num_probe_packets", DEFAULT_PPS_PROBE_PACKETS))
    training_size = int(shard.params["training_size"])
    sizes = [int(size) for size in spec.axes["training_size"]]
    deployment = Deployment(single_ap_scenario(name="packets-per-signature",
                                               rng_stream=1), rng=shard.seed)
    # Each earlier training size consumed its training packets plus two
    # probe captures (legitimate + attacker) per probe round.
    deployment.simulator().skip_captures(
        sum(size + 2 * num_probe for size in sizes[:shard.point]))
    legit, adversary = _training_size_similarity(
        deployment, training_size,
        int(spec.param("victim_client_id", DEFAULT_PPS_VICTIM_CLIENT)),
        int(spec.param("attacker_client_id", DEFAULT_PPS_ATTACKER_CLIENT)), num_probe)
    return PacketsPerSignatureShard(training_size=training_size,
                                    legitimate_similarity=legit,
                                    attacker_similarity=adversary)


def merge_packets_per_signature(
        spec: CampaignSpec,
        records: Sequence[PacketsPerSignatureShard]) -> PacketsPerSignatureSweep:
    """Reduce per-size similarities into the serial sweep result."""
    return PacketsPerSignatureSweep(
        legitimate_similarity_by_packets={
            record.training_size: record.legitimate_similarity for record in records},
        attacker_similarity_by_packets={
            record.training_size: record.attacker_similarity for record in records},
    )
