"""Ablations of the design choices DESIGN.md calls out.

* **Calibration on/off** (Section 2.2): without removing the per-chain phase
  offsets the inter-antenna phase comparison is meaningless and bearings are
  essentially random.
* **Estimator comparison** (Section 2.1 and Equation 1): the two-antenna phase
  method versus the Bartlett and Capon beamformers versus MUSIC.
* **SNR sweep**: bearing error as the transmit power (and hence SNR) drops.
* **Packets-per-signature sweep**: how much averaging multiple packets into a
  signature buys for spoofing discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.aoa.estimator import AoAEstimator, EstimatorConfig
from repro.api import AOA_METHODS, Deployment, single_ap_scenario
from repro.core.metrics import signature_similarity
from repro.core.signature import AoASignature
from repro.experiments.reporting import format_table
from repro.utils.angles import angular_difference
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


# --------------------------------------------------------------------------- E7
@dataclass(frozen=True)
class CalibrationAblation(JsonSerializable):
    """Median bearing error with and without phase calibration."""

    median_error_calibrated_deg: float
    median_error_uncalibrated_deg: float

    def as_table(self) -> str:
        return format_table(
            ["pipeline", "median bearing error (deg)"],
            [("calibrated", self.median_error_calibrated_deg),
             ("uncalibrated", self.median_error_uncalibrated_deg)],
        )


def run_calibration_ablation(client_ids: Sequence[int] = (1, 3, 5, 7, 9),
                             packets_per_client: int = 3,
                             rng: RngLike = 42) -> CalibrationAblation:
    """Measure bearing error with the calibration step enabled and disabled."""
    deployment = Deployment(single_ap_scenario(name="calibration-ablation"), rng=rng)
    simulator = deployment.simulator()
    calibrated_ap = deployment.ap()
    uncalibrated_estimator = AoAEstimator(calibrated_ap.array,
                                          EstimatorConfig(require_calibrated=False))

    calibrated_errors: List[float] = []
    uncalibrated_errors: List[float] = []
    for client_id in client_ids:
        expected = simulator.expected_client_bearing(client_id)
        for index in range(packets_per_client):
            capture = simulator.capture_from_client(client_id, elapsed_s=index * 0.5)
            with_cal = calibrated_ap.analyze(capture)
            without_cal = uncalibrated_estimator.process(capture)
            calibrated_errors.append(float(angular_difference(with_cal.bearing_deg, expected)))
            uncalibrated_errors.append(float(angular_difference(without_cal.bearing_deg, expected)))
    return CalibrationAblation(
        median_error_calibrated_deg=float(np.median(calibrated_errors)),
        median_error_uncalibrated_deg=float(np.median(uncalibrated_errors)),
    )


# --------------------------------------------------------------------------- E8
@dataclass(frozen=True)
class EstimatorComparison(JsonSerializable):
    """Median bearing error per estimation method."""

    median_error_by_method_deg: Dict[str, float]

    def as_table(self) -> str:
        return format_table(
            ["method", "median bearing error (deg)"],
            sorted(self.median_error_by_method_deg.items()),
        )


def run_estimator_comparison(client_ids: Sequence[int] = (13, 14, 17, 18, 19, 20),
                             packets_per_client: int = 3,
                             rng: RngLike = 42) -> EstimatorComparison:
    """Compare Equation 1, Bartlett, Capon, and MUSIC on the linear array.

    Uses the linear-arrangement clients so the two-antenna phase method
    (which reports broadside angles) is directly comparable.
    """
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, name="estimator-comparison"), rng=rng)
    simulator = deployment.simulator()
    array = deployment.ap().array
    calibration = deployment.ap().calibration
    estimators = {
        name: AoAEstimator(array, AOA_METHODS.get(name).estimator_config())
        for name in ("music", "capon", "bartlett")
    }
    two_antenna = AOA_METHODS.get("phase_interferometry")

    errors: Dict[str, List[float]] = {name: [] for name in estimators}
    errors["two-antenna (eq. 1)"] = []
    for client_id in client_ids:
        expected = simulator.expected_client_bearing(client_id)
        for index in range(packets_per_client):
            capture = simulator.capture_from_client(client_id, elapsed_s=index * 0.5)
            calibrated = calibration.apply(capture)
            for name, estimator in estimators.items():
                estimate = estimator.process(calibrated)
                errors[name].append(float(angular_difference(estimate.bearing_deg, expected)))
            bearing = two_antenna.bearings(calibrated.samples, array)[0]
            errors["two-antenna (eq. 1)"].append(float(angular_difference(bearing, expected)))
    return EstimatorComparison(
        median_error_by_method_deg={name: float(np.median(values))
                                    for name, values in errors.items()},
    )


# --------------------------------------------------------------------------- E9
@dataclass(frozen=True)
class SnrSweep(JsonSerializable):
    """Median bearing error versus transmit power."""

    median_error_by_tx_power_deg: Dict[float, float]

    def as_table(self) -> str:
        return format_table(
            ["tx power (dBm)", "median bearing error (deg)"],
            sorted(self.median_error_by_tx_power_deg.items()),
        )


def run_snr_sweep(tx_powers_dbm: Sequence[float] = (-80.0, -70.0, -60.0, -45.0, -25.0, 0.0, 15.0),
                  client_ids: Sequence[int] = (1, 5, 9),
                  packets_per_point: int = 3,
                  rng: RngLike = 42) -> SnrSweep:
    """Bearing error as the transmit power (and hence SNR at the AP) is reduced."""
    deployment = Deployment(single_ap_scenario(name="snr-sweep"), rng=rng)
    simulator = deployment.simulator()
    ap = deployment.ap()

    results: Dict[float, float] = {}
    for tx_power in tx_powers_dbm:
        errors: List[float] = []
        for client_id in client_ids:
            expected = simulator.expected_client_bearing(client_id)
            for index in range(packets_per_point):
                capture = simulator.capture_from_client(
                    client_id, tx_power_dbm=float(tx_power), elapsed_s=index * 0.5)
                estimate = ap.analyze(capture)
                errors.append(float(angular_difference(estimate.bearing_deg, expected)))
        results[float(tx_power)] = float(np.median(errors))
    return SnrSweep(median_error_by_tx_power_deg=results)


# -------------------------------------------------------------------------- E9b
@dataclass(frozen=True)
class PacketsPerSignatureSweep(JsonSerializable):
    """Separation between legitimate and attacker similarity versus training size."""

    legitimate_similarity_by_packets: Dict[int, float]
    attacker_similarity_by_packets: Dict[int, float]

    def separation(self, num_packets: int) -> float:
        """Similarity gap (legitimate minus attacker) for a training size."""
        return (self.legitimate_similarity_by_packets[num_packets]
                - self.attacker_similarity_by_packets[num_packets])

    def as_table(self) -> str:
        rows = []
        for packets in sorted(self.legitimate_similarity_by_packets):
            rows.append((packets,
                         self.legitimate_similarity_by_packets[packets],
                         self.attacker_similarity_by_packets[packets],
                         self.separation(packets)))
        return format_table(
            ["training packets", "legit similarity", "attacker similarity", "separation"],
            rows,
        )


def run_packets_per_signature_sweep(training_sizes: Sequence[int] = (1, 2, 5, 10),
                                    victim_client_id: int = 5,
                                    attacker_client_id: int = 9,
                                    num_probe_packets: int = 5,
                                    rng: RngLike = 42) -> PacketsPerSignatureSweep:
    """How training-set size affects legitimate/attacker signature separation."""
    generator = ensure_rng(rng)
    deployment = Deployment(single_ap_scenario(name="packets-per-signature",
                                               rng_stream=1), rng=generator)
    simulator = deployment.simulator()
    ap = deployment.ap()

    def signature_of(client_id: int, elapsed_s: float) -> AoASignature:
        capture = simulator.capture_from_client(client_id, elapsed_s=elapsed_s)
        estimate = ap.analyze(capture)
        return AoASignature.from_pseudospectrum(estimate.pseudospectrum, captured_at_s=elapsed_s)

    legitimate: Dict[int, float] = {}
    attacker: Dict[int, float] = {}
    for training_size in training_sizes:
        if training_size < 1:
            raise ValueError("training sizes must be positive")
        trained = signature_of(victim_client_id, 0.0)
        for index in range(1, training_size):
            trained = trained.merged_with(signature_of(victim_client_id, index * 0.5),
                                          weight=1.0 / (index + 1))
        legit_similarities = []
        attacker_similarities = []
        for probe in range(num_probe_packets):
            elapsed = 30.0 + probe * 2.0
            legit_similarities.append(signature_similarity(
                trained, signature_of(victim_client_id, elapsed)))
            attacker_similarities.append(signature_similarity(
                trained, signature_of(attacker_client_id, elapsed)))
        legitimate[int(training_size)] = float(np.mean(legit_similarities))
        attacker[int(training_size)] = float(np.mean(attacker_similarities))
    return PacketsPerSignatureSweep(
        legitimate_similarity_by_packets=legitimate,
        attacker_similarity_by_packets=attacker,
    )
