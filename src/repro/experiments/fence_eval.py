"""The virtual-fence evaluation (Section 2.3.1).

Two SecureAngle access points with circular arrays are placed in the building;
each computes the direct-path bearing of every transmitter from its own
captures, the controller triangulates the transmitter and checks it against
the building boundary.  The evaluation covers three populations:

* the twenty legitimate indoor clients (should be admitted),
* transmitters at outdoor positions just outside the building (should be
  dropped), and
* a directional-antenna attacker outdoors aiming at one of the APs — the
  strong attacker of the threat model.

The metrics are the admit rate for insiders, the drop rate for outsiders, and
the localisation error for the indoor clients (whose ground-truth positions
are known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, fence_scenario
from repro.core.fence import FenceDecision
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class FenceCase(JsonSerializable):
    """One transmitter's outcome."""

    label: str
    true_position: Point
    truly_inside: bool
    decision: FenceDecision
    admitted: bool
    localization_error_m: Optional[float]


@dataclass(frozen=True)
class FenceEvaluation(JsonSerializable):
    """Outcomes for every transmitter in the evaluation."""

    cases: List[FenceCase]

    @property
    def insider_admit_rate(self) -> float:
        """Fraction of genuinely-inside transmitters that were admitted."""
        insiders = [case for case in self.cases if case.truly_inside]
        if not insiders:
            return float("nan")
        return float(np.mean([case.admitted for case in insiders]))

    @property
    def outsider_drop_rate(self) -> float:
        """Fraction of genuinely-outside transmitters that were dropped."""
        outsiders = [case for case in self.cases if not case.truly_inside]
        if not outsiders:
            return float("nan")
        return float(np.mean([not case.admitted for case in outsiders]))

    @property
    def median_localization_error_m(self) -> float:
        """Median localisation error over the transmitters with known positions."""
        errors = [case.localization_error_m for case in self.cases
                  if case.localization_error_m is not None]
        if not errors:
            return float("nan")
        return float(np.median(errors))

    def as_table(self) -> str:
        """Text rendering of the per-transmitter outcomes."""
        return format_table(
            ["transmitter", "truly inside", "decision", "admitted", "loc error (m)"],
            [
                (case.label, case.truly_inside, case.decision.value, case.admitted,
                 "-" if case.localization_error_m is None else case.localization_error_m)
                for case in self.cases
            ],
        )


def run_fence_evaluation(packets_per_transmitter: int = 3,
                         margin_m: float = 1.0,
                         estimator_config: Optional[EstimatorConfig] = None,
                         rng: RngLike = 42) -> FenceEvaluation:
    """Run the two-AP virtual-fence evaluation on the simulated testbed."""
    if packets_per_transmitter < 1:
        raise ValueError("packets_per_transmitter must be at least 1")
    generator = ensure_rng(rng)
    # Three APs, per Section 2.3.1's "more than two access points", plus the
    # fence and the strong attacker — all declared by the fence scenario spec.
    deployment = Deployment(fence_scenario(estimator=estimator_config,
                                           margin_m=margin_m), rng=generator)
    environment = deployment.environment
    simulators = deployment.simulators
    controller = deployment.controller

    cases: List[FenceCase] = []

    def evaluate(label: str, position: Point, attacker=None) -> None:
        votes: List[FenceDecision] = []
        errors: List[float] = []
        for packet_index in range(packets_per_transmitter):
            captures = {
                name: simulator.capture_from_position(
                    position, elapsed_s=packet_index * 0.5, attacker=attacker)
                for name, simulator in simulators.items()
            }
            check = controller.fence_check(captures)
            votes.append(check.decision)
            if check.location is not None and check.decision is not FenceDecision.INDETERMINATE:
                errors.append(check.location.position.distance_to(position))
        # Majority vote across the packets of one transmitter.
        admits = sum(1 for vote in votes if vote is FenceDecision.INSIDE)
        final = FenceDecision.INSIDE if admits > len(votes) / 2 else (
            FenceDecision.OUTSIDE if any(v is FenceDecision.OUTSIDE for v in votes)
            else FenceDecision.INDETERMINATE)
        truly_inside = environment.is_inside_building(position)
        cases.append(FenceCase(
            label=label,
            true_position=position,
            truly_inside=truly_inside,
            decision=final,
            admitted=final is FenceDecision.INSIDE,
            localization_error_m=float(np.median(errors)) if errors else None,
        ))

    for client_id in environment.client_ids:
        evaluate(f"client-{client_id}", environment.client_position(client_id))
    for label, position in environment.outdoor_positions.items():
        evaluate(f"outdoor-{label}", position)
    # The strong attacker: outdoors with a directional antenna aimed at the main AP.
    attacker = deployment.attackers["directional-attacker"]
    evaluate("directional-attacker", attacker.position, attacker=attacker)

    return FenceEvaluation(cases=cases)
