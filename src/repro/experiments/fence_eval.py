"""The virtual-fence evaluation (Section 2.3.1).

Two SecureAngle access points with circular arrays are placed in the building;
each computes the direct-path bearing of every transmitter from its own
captures, the controller triangulates the transmitter and checks it against
the building boundary.  The evaluation covers three populations:

* the twenty legitimate indoor clients (should be admitted),
* transmitters at outdoor positions just outside the building (should be
  dropped), and
* a directional-antenna attacker outdoors aiming at one of the APs — the
  strong attacker of the threat model.

The metrics are the admit rate for insiders, the drop rate for outsiders, and
the localisation error for the indoor clients (whose ground-truth positions
are known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, fence_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.fence import FenceDecision
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runner and the campaign adapter.
DEFAULT_PACKETS_PER_TRANSMITTER = 3
DEFAULT_MARGIN_M = 1.0
#: The fence scenario's strong attacker (declared by ``fence_scenario``).
ATTACKER_NAME = "directional-attacker"


@dataclass(frozen=True)
class FenceCase(JsonSerializable):
    """One transmitter's outcome."""

    label: str
    true_position: Point
    truly_inside: bool
    decision: FenceDecision
    admitted: bool
    localization_error_m: Optional[float]


@dataclass(frozen=True)
class FenceEvaluation(JsonSerializable):
    """Outcomes for every transmitter in the evaluation."""

    cases: List[FenceCase]

    @property
    def insider_admit_rate(self) -> float:
        """Fraction of genuinely-inside transmitters that were admitted."""
        insiders = [case for case in self.cases if case.truly_inside]
        if not insiders:
            return float("nan")
        return float(np.mean([case.admitted for case in insiders]))

    @property
    def outsider_drop_rate(self) -> float:
        """Fraction of genuinely-outside transmitters that were dropped."""
        outsiders = [case for case in self.cases if not case.truly_inside]
        if not outsiders:
            return float("nan")
        return float(np.mean([not case.admitted for case in outsiders]))

    @property
    def median_localization_error_m(self) -> float:
        """Median localisation error over the transmitters with known positions."""
        errors = [case.localization_error_m for case in self.cases
                  if case.localization_error_m is not None]
        if not errors:
            return float("nan")
        return float(np.median(errors))

    def as_table(self) -> str:
        """Text rendering of the per-transmitter outcomes."""
        return format_table(
            ["transmitter", "truly inside", "decision", "admitted", "loc error (m)"],
            [
                (case.label, case.truly_inside, case.decision.value, case.admitted,
                 "-" if case.localization_error_m is None else case.localization_error_m)
                for case in self.cases
            ],
        )


def _transmitter_population(environment,
                            client_ids: Optional[Sequence[int]] = None,
                            outdoor_labels: Optional[Sequence[str]] = None,
                            include_attacker: bool = True) -> List[Dict[str, Any]]:
    """The evaluation's transmitters, in the serial runner's capture order.

    Each descriptor is a plain JSON-able dictionary so the same list can be a
    campaign axis: the indoor clients, then the outdoor probe positions, then
    (optionally) the strong directional attacker.
    """
    transmitters: List[Dict[str, Any]] = []
    if client_ids is None:
        client_ids = environment.client_ids
    for client_id in client_ids:
        transmitters.append({"kind": "client", "client_id": int(client_id)})
    if outdoor_labels is None:
        outdoor_labels = list(environment.outdoor_positions)
    for label in outdoor_labels:
        transmitters.append({"kind": "outdoor", "label": str(label)})
    if include_attacker:
        transmitters.append({"kind": "attacker", "name": ATTACKER_NAME})
    return transmitters


def _evaluate_transmitter(deployment: Deployment, transmitter: Dict[str, Any],
                          packets_per_transmitter: int) -> FenceCase:
    """One transmitter's fence outcome (consumes ``packets_per_transmitter``
    captures per AP simulator)."""
    environment = deployment.environment
    kind = str(transmitter["kind"])
    attacker = None
    if kind == "client":
        client_id = int(transmitter["client_id"])
        label = f"client-{client_id}"
        position = environment.client_position(client_id)
    elif kind == "outdoor":
        outdoor = str(transmitter["label"])
        label = f"outdoor-{outdoor}"
        position = environment.outdoor_positions[outdoor]
    elif kind == "attacker":
        # The strong attacker: outdoors, directional antenna aimed at the
        # main AP.  Building it draws only from the deployment's attacker
        # address stream, never from the capture streams.
        attacker = deployment.attackers[str(transmitter["name"])]
        label = attacker.name
        position = attacker.position
    else:
        raise ValueError(f"unknown fence transmitter kind {kind!r}")

    controller = deployment.controller
    votes: List[FenceDecision] = []
    errors: List[float] = []
    for packet_index in range(packets_per_transmitter):
        captures = {
            name: simulator.capture_from_position(
                position, elapsed_s=packet_index * 0.5, attacker=attacker)
            for name, simulator in deployment.simulators.items()
        }
        check = controller.fence_check(captures)
        votes.append(check.decision)
        if check.location is not None and check.decision is not FenceDecision.INDETERMINATE:
            errors.append(check.location.position.distance_to(position))
    # Majority vote across the packets of one transmitter.
    admits = sum(1 for vote in votes if vote is FenceDecision.INSIDE)
    final = FenceDecision.INSIDE if admits > len(votes) / 2 else (
        FenceDecision.OUTSIDE if any(v is FenceDecision.OUTSIDE for v in votes)
        else FenceDecision.INDETERMINATE)
    truly_inside = environment.is_inside_building(position)
    return FenceCase(
        label=label,
        true_position=position,
        truly_inside=truly_inside,
        decision=final,
        admitted=final is FenceDecision.INSIDE,
        localization_error_m=float(np.median(errors)) if errors else None,
    )


def run_fence_evaluation(packets_per_transmitter: int = DEFAULT_PACKETS_PER_TRANSMITTER,
                         margin_m: float = DEFAULT_MARGIN_M,
                         estimator_config: Optional[EstimatorConfig] = None,
                         client_ids: Optional[Sequence[int]] = None,
                         outdoor_labels: Optional[Sequence[str]] = None,
                         include_attacker: bool = True,
                         rng: RngLike = 42) -> FenceEvaluation:
    """Run the multi-AP virtual-fence evaluation on the simulated testbed.

    ``client_ids``/``outdoor_labels``/``include_attacker`` restrict the
    transmitter population (defaults cover everything, as the paper does).
    """
    if packets_per_transmitter < 1:
        raise ValueError("packets_per_transmitter must be at least 1")
    generator = ensure_rng(rng)
    # Three APs, per Section 2.3.1's "more than two access points", plus the
    # fence and the strong attacker — all declared by the fence scenario spec.
    deployment = Deployment(fence_scenario(estimator=estimator_config,
                                           margin_m=margin_m), rng=generator)
    transmitters = _transmitter_population(
        deployment.environment, client_ids=client_ids,
        outdoor_labels=outdoor_labels, include_attacker=include_attacker)
    cases = [
        _evaluate_transmitter(deployment, transmitter, packets_per_transmitter)
        for transmitter in transmitters
    ]
    return FenceEvaluation(cases=cases)


# ------------------------------------------------------------------- campaign
def fence_eval_campaign(packets_per_transmitter: int = DEFAULT_PACKETS_PER_TRANSMITTER,
                        margin_m: float = DEFAULT_MARGIN_M,
                        client_ids: Optional[Sequence[int]] = None,
                        outdoor_labels: Optional[Sequence[str]] = None,
                        include_attacker: bool = True,
                        seed: int = 42,
                        name: str = "fence_eval") -> CampaignSpec:
    """The fence evaluation as a campaign: one shard per transmitter.

    The lone replicate reproduces :func:`run_fence_evaluation` bit-for-bit:
    each shard rebuilds the fence deployment from the same seed,
    fast-forwards every AP simulator past the earlier transmitters' packets,
    and evaluates its own transmitter exactly as the serial loop would.
    """
    from repro.api import ENVIRONMENTS

    environment = ENVIRONMENTS.get("figure4")()
    transmitters = _transmitter_population(
        environment, client_ids=client_ids, outdoor_labels=outdoor_labels,
        include_attacker=include_attacker)
    return CampaignSpec(
        name=name,
        experiment="fence_eval",
        seeds=(int(seed),),
        base={"packets_per_transmitter": int(packets_per_transmitter),
              "margin_m": float(margin_m)},
        axes={"transmitter": tuple(transmitters)},
    )


def run_fence_shard(spec: CampaignSpec, shard: ShardSpec) -> FenceCase:
    """One fence-evaluation campaign shard: a single transmitter's case."""
    packets = int(spec.param("packets_per_transmitter",
                             DEFAULT_PACKETS_PER_TRANSMITTER))
    deployment = Deployment(
        fence_scenario(estimator=estimator_from_params(spec.base),
                       margin_m=float(spec.param("margin_m", DEFAULT_MARGIN_M))),
        rng=shard.seed)
    # Jump every AP's simulator to this transmitter's slice of the serial
    # capture sequence (each transmitter consumes ``packets`` captures per AP).
    for simulator in deployment.simulators.values():
        simulator.skip_captures(shard.point * packets)
    return _evaluate_transmitter(deployment, dict(shard.params["transmitter"]),
                                 packets_per_transmitter=packets)


def merge_fence_eval(spec: CampaignSpec,
                     cases: Sequence[FenceCase]) -> FenceEvaluation:
    """Reduce one replicate's shard cases into the serial result dataclass."""
    return FenceEvaluation(cases=list(cases))
