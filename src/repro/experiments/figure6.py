"""Figure 6: stability of AoA signatures over time.

The paper records pseudospectra of the same client 0, 1, 10, 100 and 1000
seconds, one hour, and one day after a reference packet (linear antenna
arrangement), for three representative clients: one in another room nearby
(client 2), one close to the AP (client 5), and one far from it (client 10).
The observation is that the direct-path peak stays put while the weaker
reflection peaks wander.

``run_figure6`` reproduces that: it simulates the same client at the same
logarithmically spaced intervals (the environment-dynamics model perturbs
reflections more the longer the elapsed time), collects the pseudospectra,
and summarises the drift of the direct-path peak versus the secondary peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.aoa.estimator import EstimatorConfig
from repro.aoa.spectrum import Pseudospectrum
from repro.api import Deployment, single_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.metrics import peak_set_distance_deg, spectral_correlation
from repro.core.signature import signatures_from_pseudospectra
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable

#: The time offsets (seconds) of the paper's Figure 6, including one hour and one day.
DEFAULT_TIME_OFFSETS_S = (0.0, 1.0, 10.0, 100.0, 1000.0, 3600.0, 86400.0)

#: The paper's three representative clients: another room / near / far.
DEFAULT_CLIENTS = (2, 5, 10)


@dataclass(frozen=True)
class ClientStability(JsonSerializable):
    """Stability data for one client across the time offsets."""

    client_id: int
    time_offsets_s: List[float]
    spectra: List[Pseudospectrum]
    #: Absolute drift (degrees) of the direct-path (strongest) peak at each offset.
    direct_peak_drift_deg: List[float]
    #: Mean drift (degrees) of the secondary (reflection) peaks at each offset.
    reflection_peak_drift_deg: List[float]
    #: Signature similarity (spectral correlation) against the reference spectrum.
    similarity_to_reference: List[float]

    @property
    def max_direct_drift_deg(self) -> float:
        """Largest direct-path drift over all offsets."""
        return float(max(self.direct_peak_drift_deg))

    @property
    def max_reflection_drift_deg(self) -> float:
        """Largest mean reflection drift over all offsets."""
        return float(max(self.reflection_peak_drift_deg))


@dataclass(frozen=True)
class Figure6Result(JsonSerializable):
    """Stability data for all measured clients."""

    clients: Dict[int, ClientStability]
    time_offsets_s: List[float]

    def as_table(self) -> str:
        """Text rendering: one row per (client, offset)."""
        rows = []
        for client_id, stability in sorted(self.clients.items()):
            for offset, direct, reflection, similarity in zip(
                    stability.time_offsets_s, stability.direct_peak_drift_deg,
                    stability.reflection_peak_drift_deg, stability.similarity_to_reference):
                rows.append((client_id, _format_offset(offset), direct, reflection, similarity))
        return format_table(
            ["client", "elapsed", "direct drift (deg)", "reflection drift (deg)", "similarity"],
            rows,
        )


def run_figure6(client_ids: Sequence[int] = DEFAULT_CLIENTS,
                time_offsets_s: Sequence[float] = DEFAULT_TIME_OFFSETS_S,
                estimator_config: Optional[EstimatorConfig] = None,
                rng: RngLike = 42) -> Figure6Result:
    """Reproduce Figure 6 on the simulated testbed (linear antenna arrangement)."""
    time_offsets = [float(t) for t in time_offsets_s]
    if not time_offsets or time_offsets[0] != 0.0:
        raise ValueError("time_offsets_s must start with 0 (the reference capture)")
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8, estimator=estimator_config,
        name="figure6"), rng=rng)

    clients: Dict[int, ClientStability] = {}
    for client_id in client_ids:
        clients[client_id] = _client_stability(deployment, client_id, time_offsets)
    return Figure6Result(clients=clients, time_offsets_s=time_offsets)


def _client_stability(deployment: Deployment, client_id: int,
                      time_offsets: List[float]) -> ClientStability:
    """One client's stability data (consumes one capture per offset)."""
    simulator = deployment.simulator()
    ap = deployment.ap()
    captures = [
        simulator.capture_from_client(client_id, elapsed_s=offset, timestamp_s=offset)
        for offset in time_offsets
    ]
    estimates = ap.analyze_batch(captures)
    spectra = [estimate.pseudospectrum for estimate in estimates]
    signatures = signatures_from_pseudospectra(spectra, captured_at_s=time_offsets)
    reference = signatures[0]
    direct_drift: List[float] = []
    reflection_drift: List[float] = []
    similarity: List[float] = []
    for signature in signatures:
        direct_drift.append(abs(signature.direct_path_bearing_deg
                                - reference.direct_path_bearing_deg))
        reflection_drift.append(peak_set_distance_deg(
            reference.multipath_bearings_deg or [reference.direct_path_bearing_deg],
            signature.multipath_bearings_deg or [signature.direct_path_bearing_deg]))
        similarity.append(spectral_correlation(reference, signature))
    return ClientStability(
        client_id=client_id,
        time_offsets_s=time_offsets,
        spectra=spectra,
        direct_peak_drift_deg=direct_drift,
        reflection_peak_drift_deg=reflection_drift,
        similarity_to_reference=similarity,
    )


# ------------------------------------------------------------------- campaign
def figure6_campaign(client_ids: Sequence[int] = DEFAULT_CLIENTS,
                     time_offsets_s: Sequence[float] = DEFAULT_TIME_OFFSETS_S,
                     seed: int = 42,
                     name: str = "figure6") -> CampaignSpec:
    """Figure 6 as a campaign: one shard per client, serial-equivalent."""
    time_offsets = [float(t) for t in time_offsets_s]
    if not time_offsets or time_offsets[0] != 0.0:
        raise ValueError("time_offsets_s must start with 0 (the reference capture)")
    return CampaignSpec(
        name=name,
        experiment="figure6",
        seeds=(int(seed),),
        base={"time_offsets_s": time_offsets},
        axes={"client_id": tuple(int(client) for client in client_ids)},
    )


def run_figure6_shard(spec: CampaignSpec, shard: ShardSpec) -> ClientStability:
    """One Figure 6 campaign shard: a single client's stability sweep."""
    time_offsets = [float(t) for t in
                    spec.param("time_offsets_s", list(DEFAULT_TIME_OFFSETS_S))]
    deployment = Deployment(single_ap_scenario(
        geometry="linear", num_elements=8,
        estimator=estimator_from_params(spec.base), name="figure6"),
        rng=shard.seed)
    deployment.simulator().skip_captures(shard.point * len(time_offsets))
    return _client_stability(deployment, int(shard.params["client_id"]),
                             time_offsets)


def merge_figure6(spec: CampaignSpec,
                  records: Sequence[ClientStability]) -> Figure6Result:
    """Reduce one replicate's shard records into the serial result."""
    time_offsets = [float(t) for t in
                    spec.param("time_offsets_s", list(DEFAULT_TIME_OFFSETS_S))]
    return Figure6Result(
        clients={record.client_id: record for record in records},
        time_offsets_s=time_offsets,
    )


def _format_offset(offset_s: float) -> str:
    if offset_s >= 86400:
        return f"{offset_s / 86400:g} day"
    if offset_s >= 3600:
        return f"{offset_s / 3600:g} hour"
    return f"{offset_s:g} s"
