"""The headline accuracy claim of Section 2.3.1.

"After overhearing just one packet, it is possible to measure approximately
three quarters of our clients' bearings to the access point to within 2.5
degrees and all clients' bearings to within 14 degrees with 95 % confidence."

``evaluate_accuracy_claim`` measures exactly that statistic on the simulated
testbed: for every client it collects per-packet (single-packet) bearing
errors, takes each client's 95th-percentile error, and reports what fraction
of clients stay within 2.5 degrees and within 14 degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.experiments.reporting import format_table
from repro.utils.angles import angular_difference
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class AccuracyClaim(JsonSerializable):
    """Per-client single-packet accuracy at a given confidence level."""

    per_client_quantile_error_deg: Dict[int, float]
    confidence: float
    num_packets: int

    @property
    def fraction_within_2_5_deg(self) -> float:
        """Fraction of clients within 2.5 degrees (paper: about three quarters)."""
        errors = np.array(list(self.per_client_quantile_error_deg.values()))
        return float(np.mean(errors <= 2.5))

    @property
    def fraction_within_14_deg(self) -> float:
        """Fraction of clients within 14 degrees (paper: all clients)."""
        errors = np.array(list(self.per_client_quantile_error_deg.values()))
        return float(np.mean(errors <= 14.0))

    @property
    def worst_client_error_deg(self) -> float:
        """The largest per-client quantile error."""
        return float(max(self.per_client_quantile_error_deg.values()))

    def as_table(self) -> str:
        """Text rendering of the per-client quantile errors."""
        return format_table(
            ["client", f"{int(self.confidence * 100)}th pct error (deg)"],
            sorted(self.per_client_quantile_error_deg.items()),
        )


def evaluate_accuracy_claim(num_packets: int = 10,
                            confidence: float = 0.95,
                            client_ids: Optional[Sequence[int]] = None,
                            estimator_config: Optional[EstimatorConfig] = None,
                            rng: RngLike = 42) -> AccuracyClaim:
    """Measure the Section 2.3.1 single-packet bearing-accuracy claim."""
    if num_packets < 1:
        raise ValueError("num_packets must be at least 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="accuracy"), rng=rng)
    if client_ids is None:
        client_ids = deployment.environment.client_ids
    simulator = deployment.simulator()
    ap = deployment.ap()

    per_client: Dict[int, float] = {}
    for client_id in client_ids:
        expected = simulator.expected_client_bearing(client_id)
        errors: List[float] = []
        for index in range(num_packets):
            capture = simulator.capture_from_client(client_id, elapsed_s=index * 0.5)
            estimate = ap.analyze(capture)
            errors.append(float(angular_difference(estimate.bearing_deg, expected)))
        per_client[client_id] = float(np.quantile(errors, confidence))
    return AccuracyClaim(per_client_quantile_error_deg=per_client,
                         confidence=confidence, num_packets=num_packets)
