"""Mobility tracking experiment (Section 5, future work).

A client walks a straight line across the main office at roughly walking
speed while transmitting a packet every few hundred milliseconds.  Two or
more APs estimate the per-packet direct-path bearing, the
:class:`~repro.core.tracking.MobilityTracker` smooths and triangulates them,
and the experiment reports the position error along the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, three_ap_scenario
from repro.core.tracking import MobilityTracker
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class MobilityResult(JsonSerializable):
    """Per-sample tracking errors along a mobility trace."""

    true_positions: List[Point]
    estimated_positions: List[Point]
    errors_m: List[float]

    @property
    def median_error_m(self) -> float:
        """Median position error along the trace."""
        return float(np.median(self.errors_m))

    @property
    def worst_error_m(self) -> float:
        """Largest position error along the trace."""
        return float(np.max(self.errors_m))

    def as_table(self) -> str:
        """Text rendering of the trace."""
        rows = []
        for index, (truth, estimate, error) in enumerate(
                zip(self.true_positions, self.estimated_positions, self.errors_m)):
            rows.append((index,
                         f"({truth.x:.1f}, {truth.y:.1f})",
                         f"({estimate.x:.1f}, {estimate.y:.1f})",
                         error))
        return format_table(["sample", "true position", "estimated", "error (m)"], rows)


def run_mobility_tracking(start: Tuple[float, float] = (9.0, 3.5),
                          end: Tuple[float, float] = (22.0, 11.0),
                          num_samples: int = 15,
                          packet_interval_s: float = 0.4,
                          estimator_config: Optional[EstimatorConfig] = None,
                          tracker_alpha: float = 0.8,
                          tracker_beta: float = 0.3,
                          tracker_outlier_threshold_deg: float = 100.0,
                          rng: RngLike = 42) -> MobilityResult:
    """Track a client walking from ``start`` to ``end`` across the main office.

    The tracker gains default to values suited to walking-speed dynamics: a
    client passing close to an AP legitimately changes bearing by tens of
    degrees between packets, so the outlier gate is opened well beyond the
    stationary-client default.
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    if packet_interval_s <= 0:
        raise ValueError("packet_interval_s must be positive")
    generator = ensure_rng(rng)
    deployment = Deployment(three_ap_scenario(estimator=estimator_config,
                                              name="mobility"), rng=generator)
    simulators = deployment.simulators

    tracker = MobilityTracker({name: ap.position for name, ap in deployment.aps.items()},
                              alpha=tracker_alpha, beta=tracker_beta,
                              outlier_threshold_deg=tracker_outlier_threshold_deg)

    xs = np.linspace(start[0], end[0], num_samples)
    ys = np.linspace(start[1], end[1], num_samples)
    true_positions = [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    for index, position in enumerate(true_positions):
        timestamp = index * packet_interval_s
        bearings: Dict[str, float] = {}
        for name, simulator in simulators.items():
            capture = simulator.capture_from_position(position, elapsed_s=timestamp,
                                                      timestamp_s=timestamp)
            estimate = deployment.aps[name].analyze(capture)
            # Circular arrays report local azimuth; the APs are mounted with
            # orientation 0 so the local azimuth is already the global bearing.
            bearings[name] = estimate.bearing_deg
        tracker.update(bearings, timestamp)

    estimated = tracker.positions()
    errors = tracker.track_error_m(true_positions)
    return MobilityResult(true_positions=true_positions, estimated_positions=estimated,
                          errors_m=errors)
