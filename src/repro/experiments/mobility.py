"""Mobility tracking experiment (Section 5, future work).

A client walks a straight line across the main office at roughly walking
speed while transmitting a packet every few hundred milliseconds.  Two or
more APs estimate the per-packet direct-path bearing, the
:class:`~repro.core.tracking.MobilityTracker` smooths and triangulates them,
and the experiment reports the position error along the trace.

The expensive part — capture synthesis and AoA estimation per sample — is
embarrassingly parallel, so the campaign adapter shards per trace sample and
replays the (cheap, strictly sequential) tracker over the gathered bearings
at merge time.  The serial runner goes through the same replay helper, so
the two paths cannot diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, three_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.tracking import MobilityTracker
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runner and the campaign adapter.
DEFAULT_START = (9.0, 3.5)
DEFAULT_END = (22.0, 11.0)
DEFAULT_NUM_SAMPLES = 15
DEFAULT_PACKET_INTERVAL_S = 0.4
DEFAULT_TRACKER_ALPHA = 0.8
DEFAULT_TRACKER_BETA = 0.3
DEFAULT_TRACKER_OUTLIER_DEG = 100.0


@dataclass(frozen=True)
class MobilityResult(JsonSerializable):
    """Per-sample tracking errors along a mobility trace."""

    true_positions: List[Point]
    estimated_positions: List[Point]
    errors_m: List[float]

    @property
    def median_error_m(self) -> float:
        """Median position error along the trace."""
        return float(np.median(self.errors_m))

    @property
    def worst_error_m(self) -> float:
        """Largest position error along the trace."""
        return float(np.max(self.errors_m))

    def as_table(self) -> str:
        """Text rendering of the trace."""
        rows = []
        for index, (truth, estimate, error) in enumerate(
                zip(self.true_positions, self.estimated_positions, self.errors_m)):
            rows.append((index,
                         f"({truth.x:.1f}, {truth.y:.1f})",
                         f"({estimate.x:.1f}, {estimate.y:.1f})",
                         error))
        return format_table(["sample", "true position", "estimated", "error (m)"], rows)


@dataclass(frozen=True)
class MobilitySample(JsonSerializable):
    """One trace sample: per-AP bearings for one transmitted packet.

    Doubles as the campaign shard payload: it carries everything the tracker
    replay needs, so the merge is pure arithmetic over gathered samples.
    """

    sample: int
    timestamp_s: float
    true_position: Point
    #: AP name -> global-frame direct-path bearing for this packet.
    bearings_deg: Dict[str, float]


def _trace_positions(start: Tuple[float, float], end: Tuple[float, float],
                     num_samples: int) -> List[Point]:
    """The walk's ground-truth positions (endpoints included)."""
    xs = np.linspace(start[0], end[0], num_samples)
    ys = np.linspace(start[1], end[1], num_samples)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def _sample_bearings(deployment: Deployment, position: Point,
                     timestamp: float) -> Dict[str, float]:
    """Every AP's direct-path bearing for one packet from ``position``.

    Consumes exactly one capture per AP simulator (the shard-skip unit).
    """
    bearings: Dict[str, float] = {}
    for name, simulator in deployment.simulators.items():
        capture = simulator.capture_from_position(position, elapsed_s=timestamp,
                                                  timestamp_s=timestamp)
        estimate = deployment.aps[name].analyze(capture)
        # Circular arrays report local azimuth; the APs are mounted with
        # orientation 0 so the local azimuth is already the global bearing.
        bearings[name] = estimate.bearing_deg
    return bearings


def _replay_tracker(ap_positions: Dict[str, Point],
                    samples: Sequence[MobilitySample],
                    tracker_alpha: float, tracker_beta: float,
                    tracker_outlier_threshold_deg: float) -> MobilityResult:
    """Feed gathered samples through the tracker, in trace order.

    Shared by the serial runner and the campaign merge: the tracker is
    strictly sequential, so it always runs here — after the (parallelisable)
    bearing estimation — and both paths produce bit-identical results.
    """
    tracker = MobilityTracker(ap_positions, alpha=tracker_alpha,
                              beta=tracker_beta,
                              outlier_threshold_deg=tracker_outlier_threshold_deg)
    ordered = sorted(samples, key=lambda item: item.sample)
    for item in ordered:
        tracker.update(dict(item.bearings_deg), item.timestamp_s)
    true_positions = [item.true_position for item in ordered]
    estimated = tracker.positions()
    errors = tracker.track_error_m(true_positions)
    return MobilityResult(true_positions=true_positions,
                          estimated_positions=estimated, errors_m=errors)


def run_mobility_tracking(start: Tuple[float, float] = DEFAULT_START,
                          end: Tuple[float, float] = DEFAULT_END,
                          num_samples: int = DEFAULT_NUM_SAMPLES,
                          packet_interval_s: float = DEFAULT_PACKET_INTERVAL_S,
                          estimator_config: Optional[EstimatorConfig] = None,
                          tracker_alpha: float = DEFAULT_TRACKER_ALPHA,
                          tracker_beta: float = DEFAULT_TRACKER_BETA,
                          tracker_outlier_threshold_deg: float = DEFAULT_TRACKER_OUTLIER_DEG,
                          rng: RngLike = 42) -> MobilityResult:
    """Track a client walking from ``start`` to ``end`` across the main office.

    The tracker gains default to values suited to walking-speed dynamics: a
    client passing close to an AP legitimately changes bearing by tens of
    degrees between packets, so the outlier gate is opened well beyond the
    stationary-client default.
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    if packet_interval_s <= 0:
        raise ValueError("packet_interval_s must be positive")
    generator = ensure_rng(rng)
    deployment = Deployment(three_ap_scenario(estimator=estimator_config,
                                              name="mobility"), rng=generator)
    samples = [
        MobilitySample(
            sample=index,
            timestamp_s=index * packet_interval_s,
            true_position=position,
            bearings_deg=_sample_bearings(deployment, position,
                                          index * packet_interval_s),
        )
        for index, position in enumerate(_trace_positions(start, end, num_samples))
    ]
    return _replay_tracker(
        {name: ap.position for name, ap in deployment.aps.items()}, samples,
        tracker_alpha=tracker_alpha, tracker_beta=tracker_beta,
        tracker_outlier_threshold_deg=tracker_outlier_threshold_deg)


# ------------------------------------------------------------------- campaign
def mobility_campaign(start: Tuple[float, float] = DEFAULT_START,
                      end: Tuple[float, float] = DEFAULT_END,
                      num_samples: int = DEFAULT_NUM_SAMPLES,
                      packet_interval_s: float = DEFAULT_PACKET_INTERVAL_S,
                      tracker_alpha: float = DEFAULT_TRACKER_ALPHA,
                      tracker_beta: float = DEFAULT_TRACKER_BETA,
                      tracker_outlier_threshold_deg: float = DEFAULT_TRACKER_OUTLIER_DEG,
                      seed: int = 42,
                      name: str = "mobility") -> CampaignSpec:
    """Mobility tracking as a campaign: one shard per trace sample.

    Shards estimate bearings (the expensive part) independently; the
    sequential tracker replays over the gathered samples at merge time, so
    the lone replicate reproduces :func:`run_mobility_tracking` bit-for-bit.
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    return CampaignSpec(
        name=name,
        experiment="mobility",
        seeds=(int(seed),),
        base={"start": [float(start[0]), float(start[1])],
              "end": [float(end[0]), float(end[1])],
              "num_samples": int(num_samples),
              "packet_interval_s": float(packet_interval_s),
              "tracker_alpha": float(tracker_alpha),
              "tracker_beta": float(tracker_beta),
              "tracker_outlier_threshold_deg": float(tracker_outlier_threshold_deg)},
        axes={"sample": tuple(range(int(num_samples)))},
    )


def _base_trace(spec: CampaignSpec) -> List[Point]:
    start = spec.param("start", list(DEFAULT_START))
    end = spec.param("end", list(DEFAULT_END))
    num_samples = int(spec.param("num_samples", DEFAULT_NUM_SAMPLES))
    return _trace_positions((float(start[0]), float(start[1])),
                            (float(end[0]), float(end[1])), num_samples)


def run_mobility_shard(spec: CampaignSpec, shard: ShardSpec) -> MobilitySample:
    """One mobility campaign shard: a single trace sample's bearings."""
    deployment = Deployment(
        three_ap_scenario(estimator=estimator_from_params(spec.base),
                          name="mobility"), rng=shard.seed)
    sample = int(shard.params["sample"])
    positions = _base_trace(spec)
    timestamp = sample * float(spec.param("packet_interval_s",
                                          DEFAULT_PACKET_INTERVAL_S))
    # Jump every AP's simulator past the earlier samples' packets (one
    # capture per AP per sample).
    for simulator in deployment.simulators.values():
        simulator.skip_captures(shard.point)
    return MobilitySample(
        sample=sample,
        timestamp_s=timestamp,
        true_position=positions[sample],
        bearings_deg=_sample_bearings(deployment, positions[sample], timestamp),
    )


def merge_mobility(spec: CampaignSpec,
                   samples: Sequence[MobilitySample]) -> MobilityResult:
    """Replay the tracker over one replicate's gathered samples."""
    from repro.api import ENVIRONMENTS

    scenario = three_ap_scenario(name="mobility")
    environment = ENVIRONMENTS.get(scenario.environment)()
    ap_positions = {
        ap_spec.name: ap_spec.resolve_position(environment)
        for ap_spec in scenario.resolved_access_points()
    }
    return _replay_tracker(
        ap_positions, samples,
        tracker_alpha=float(spec.param("tracker_alpha", DEFAULT_TRACKER_ALPHA)),
        tracker_beta=float(spec.param("tracker_beta", DEFAULT_TRACKER_BETA)),
        tracker_outlier_threshold_deg=float(
            spec.param("tracker_outlier_threshold_deg",
                       DEFAULT_TRACKER_OUTLIER_DEG)))
