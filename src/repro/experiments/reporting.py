"""Small helpers for rendering experiment results as text tables.

The paper reports its evaluation as figures; the benchmark harness prints the
same series as rows so the shape of each result (who wins, where the
crossovers are) can be read off a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    headers = [str(h) for h in headers]
    str_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match the number of headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
