"""Downlink beamforming evaluation (Section 5, future work).

For each client, the AP estimates the uplink AoA from one packet and then
transmits downlink either (a) omnidirectionally from a single antenna,
(b) steered at the estimated direct-path bearing, or (c) along the dominant
eigenvector of the uplink covariance (maximum ratio transmission).  The
experiment reports the delivered-power gain of (b) and (c) over (a): the
paper's claim is that uplink AoA enables "high efficiency downlink directional
transmission ... resulting in higher throughput and better reliability".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.aoa.covariance import correlation_matrix
from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.core.beamforming import (
    beamforming_gain_db,
    downlink_channel_vector,
    eigen_weights,
    steering_weights,
)
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class BeamformingResult(JsonSerializable):
    """Per-client downlink gains of AoA-steered and eigen beamforming."""

    steering_gain_db_by_client: Dict[int, float]
    eigen_gain_db_by_client: Dict[int, float]

    @property
    def median_steering_gain_db(self) -> float:
        """Median gain of steering at the estimated direct-path bearing."""
        return float(np.median(list(self.steering_gain_db_by_client.values())))

    @property
    def median_eigen_gain_db(self) -> float:
        """Median gain of eigen (MRT) beamforming."""
        return float(np.median(list(self.eigen_gain_db_by_client.values())))

    def as_table(self) -> str:
        """Text rendering: one row per client."""
        rows = []
        for client_id in sorted(self.steering_gain_db_by_client):
            rows.append((client_id,
                         self.steering_gain_db_by_client[client_id],
                         self.eigen_gain_db_by_client[client_id]))
        return format_table(
            ["client", "AoA-steered gain (dB)", "eigen/MRT gain (dB)"], rows)


def run_beamforming_evaluation(client_ids: Optional[Sequence[int]] = None,
                               estimator_config: Optional[EstimatorConfig] = None,
                               rng: RngLike = 42) -> BeamformingResult:
    """Evaluate downlink beamforming gains derived from uplink AoA."""
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="beamforming"), rng=rng)
    environment = deployment.environment
    if client_ids is None:
        client_ids = environment.client_ids
    simulator = deployment.simulator()
    ap = deployment.ap()
    array = ap.array
    calibration = ap.calibration

    steering_gains: Dict[int, float] = {}
    eigen_gains: Dict[int, float] = {}
    for client_id in client_ids:
        capture = simulator.capture_from_client(client_id)
        calibrated = calibration.apply(capture)
        estimate = ap.analyze(calibrated)

        paths = simulator.raytracer.trace(environment.client_position(client_id),
                                          simulator.ap_position)
        channel = downlink_channel_vector(array, paths,
                                          orientation_deg=simulator.orientation_deg)

        steered = steering_weights(array, estimate.bearing_deg)
        mrt = eigen_weights(correlation_matrix(calibrated.samples))
        steering_gains[client_id] = beamforming_gain_db(steered, channel)
        eigen_gains[client_id] = beamforming_gain_db(mrt, channel)
    return BeamformingResult(steering_gain_db_by_client=steering_gains,
                             eigen_gain_db_by_client=eigen_gains)
