"""Downlink beamforming evaluation (Section 5, future work).

For each client, the AP estimates the uplink AoA from one packet and then
transmits downlink either (a) omnidirectionally from a single antenna,
(b) steered at the estimated direct-path bearing, or (c) along the dominant
eigenvector of the uplink covariance (maximum ratio transmission).  The
experiment reports the delivered-power gain of (b) and (c) over (a): the
paper's claim is that uplink AoA enables "high efficiency downlink directional
transmission ... resulting in higher throughput and better reliability".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.aoa.covariance import correlation_matrix
from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.beamforming import (
    beamforming_gain_db,
    downlink_channel_vector,
    eigen_weights,
    steering_weights,
)
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class BeamformingResult(JsonSerializable):
    """Per-client downlink gains of AoA-steered and eigen beamforming."""

    steering_gain_db_by_client: Dict[int, float]
    eigen_gain_db_by_client: Dict[int, float]

    @property
    def median_steering_gain_db(self) -> float:
        """Median gain of steering at the estimated direct-path bearing."""
        return float(np.median(list(self.steering_gain_db_by_client.values())))

    @property
    def median_eigen_gain_db(self) -> float:
        """Median gain of eigen (MRT) beamforming."""
        return float(np.median(list(self.eigen_gain_db_by_client.values())))

    def as_table(self) -> str:
        """Text rendering: one row per client."""
        rows = []
        for client_id in sorted(self.steering_gain_db_by_client):
            rows.append((client_id,
                         self.steering_gain_db_by_client[client_id],
                         self.eigen_gain_db_by_client[client_id]))
        return format_table(
            ["client", "AoA-steered gain (dB)", "eigen/MRT gain (dB)"], rows)


def _client_gains(deployment: Deployment, client_id: int) -> Tuple[float, float]:
    """One client's (steering, eigen) downlink gains in dB.

    Consumes exactly one capture from the AP's simulator (the shard-skip
    unit); everything else — ray tracing, weight computation — is
    deterministic arithmetic.
    """
    simulator = deployment.simulator()
    ap = deployment.ap()
    capture = simulator.capture_from_client(client_id)
    calibrated = ap.calibration.apply(capture)
    estimate = ap.analyze(calibrated)

    paths = simulator.raytracer.trace(
        deployment.environment.client_position(client_id), simulator.ap_position)
    channel = downlink_channel_vector(ap.array, paths,
                                      orientation_deg=simulator.orientation_deg)

    steered = steering_weights(ap.array, estimate.bearing_deg)
    mrt = eigen_weights(correlation_matrix(calibrated.samples))
    return (beamforming_gain_db(steered, channel),
            beamforming_gain_db(mrt, channel))


def run_beamforming_evaluation(client_ids: Optional[Sequence[int]] = None,
                               estimator_config: Optional[EstimatorConfig] = None,
                               rng: RngLike = 42) -> BeamformingResult:
    """Evaluate downlink beamforming gains derived from uplink AoA."""
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="beamforming"), rng=rng)
    if client_ids is None:
        client_ids = deployment.environment.client_ids

    steering_gains: Dict[int, float] = {}
    eigen_gains: Dict[int, float] = {}
    for client_id in client_ids:
        steering_gains[client_id], eigen_gains[client_id] = _client_gains(
            deployment, client_id)
    return BeamformingResult(steering_gain_db_by_client=steering_gains,
                             eigen_gain_db_by_client=eigen_gains)


# ------------------------------------------------------------------- campaign
@dataclass(frozen=True)
class BeamformingShard(JsonSerializable):
    """One beamforming campaign shard: a single client's downlink gains."""

    client_id: int
    steering_gain_db: float
    eigen_gain_db: float


def beamforming_campaign(client_ids: Optional[Sequence[int]] = None,
                         seed: int = 42,
                         name: str = "beamforming") -> CampaignSpec:
    """The beamforming evaluation as a campaign: one shard per client.

    The lone replicate reproduces :func:`run_beamforming_evaluation`
    bit-for-bit: each shard rebuilds the deployment from the same seed and
    fast-forwards the simulator past the earlier clients' packets (one
    capture each).
    """
    if client_ids is None:
        from repro.api import ENVIRONMENTS

        client_ids = ENVIRONMENTS.get("figure4")().client_ids
    return CampaignSpec(
        name=name,
        experiment="beamforming",
        seeds=(int(seed),),
        axes={"client_id": tuple(int(client) for client in client_ids)},
    )


def run_beamforming_shard(spec: CampaignSpec,
                          shard: ShardSpec) -> BeamformingShard:
    """One beamforming campaign shard."""
    deployment = Deployment(single_ap_scenario(
        estimator=estimator_from_params(spec.base), name="beamforming"),
        rng=shard.seed)
    # Jump to this client's slice (one capture per earlier client).
    deployment.simulator().skip_captures(shard.point)
    client_id = int(shard.params["client_id"])
    steering_gain, eigen_gain = _client_gains(deployment, client_id)
    return BeamformingShard(client_id=client_id,
                            steering_gain_db=steering_gain,
                            eigen_gain_db=eigen_gain)


def merge_beamforming(spec: CampaignSpec,
                      shards: Sequence[BeamformingShard]) -> BeamformingResult:
    """Reduce one replicate's shard gains into the serial result dataclass."""
    return BeamformingResult(
        steering_gain_db_by_client={shard.client_id: shard.steering_gain_db
                                    for shard in shards},
        eigen_gain_db_by_client={shard.client_id: shard.eigen_gain_db
                                 for shard in shards},
    )
