"""Experiment runners that regenerate the paper's figures and claims."""

from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.accuracy import AccuracyClaim, evaluate_accuracy_claim
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.fence_eval import FenceEvaluation, run_fence_evaluation
from repro.experiments.spoofing_eval import SpoofingEvaluation, run_spoofing_evaluation
from repro.experiments.ablations import (
    run_calibration_ablation,
    run_estimator_comparison,
    run_packets_per_signature_sweep,
    run_snr_sweep,
)
from repro.experiments.roc import SpoofingRoc, run_spoofing_roc
from repro.experiments.mobility import MobilityResult, run_mobility_tracking
from repro.experiments.beamforming_eval import BeamformingResult, run_beamforming_evaluation

__all__ = [
    "SpoofingRoc",
    "run_spoofing_roc",
    "MobilityResult",
    "run_mobility_tracking",
    "BeamformingResult",
    "run_beamforming_evaluation",
    "Figure5Result",
    "run_figure5",
    "AccuracyClaim",
    "evaluate_accuracy_claim",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "FenceEvaluation",
    "run_fence_evaluation",
    "SpoofingEvaluation",
    "run_spoofing_evaluation",
    "run_calibration_ablation",
    "run_estimator_comparison",
    "run_snr_sweep",
    "run_packets_per_signature_sweep",
]
