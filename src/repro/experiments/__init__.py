"""Experiment runners that regenerate the paper's figures and claims.

Each runner has a serial entry point (``run_*``) and, for the sweep-shaped
experiments, a campaign builder (``*_campaign``) that expresses the same grid
as a :class:`~repro.campaign.spec.CampaignSpec` for the sharded
multi-process engine — merged campaign results are bit-identical to the
serial runners.
"""

from repro.experiments.figure5 import Figure5Result, figure5_campaign, run_figure5
from repro.experiments.accuracy import AccuracyClaim, evaluate_accuracy_claim
from repro.experiments.figure6 import Figure6Result, figure6_campaign, run_figure6
from repro.experiments.figure7 import Figure7Result, figure7_campaign, run_figure7
from repro.experiments.fence_eval import FenceEvaluation, run_fence_evaluation
from repro.experiments.spoofing_eval import (
    SpoofingEvaluation,
    run_spoofing_evaluation,
    spoofing_eval_campaign,
)
from repro.experiments.ablations import (
    calibration_ablation_campaign,
    estimator_comparison_campaign,
    packets_per_signature_campaign,
    run_calibration_ablation,
    run_estimator_comparison,
    run_packets_per_signature_sweep,
    run_snr_sweep,
    snr_sweep_campaign,
)
from repro.experiments.attack_matrix import (
    AttackMatrixResult,
    attack_matrix_campaign,
    run_attack_matrix,
)
from repro.experiments.roc import SpoofingRoc, roc_campaign, run_spoofing_roc
from repro.experiments.mobility import MobilityResult, run_mobility_tracking
from repro.experiments.beamforming_eval import BeamformingResult, run_beamforming_evaluation

__all__ = [
    "SpoofingRoc",
    "run_spoofing_roc",
    "MobilityResult",
    "run_mobility_tracking",
    "BeamformingResult",
    "run_beamforming_evaluation",
    "Figure5Result",
    "run_figure5",
    "AccuracyClaim",
    "evaluate_accuracy_claim",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "FenceEvaluation",
    "run_fence_evaluation",
    "SpoofingEvaluation",
    "run_spoofing_evaluation",
    "AttackMatrixResult",
    "run_attack_matrix",
    "attack_matrix_campaign",
    "run_calibration_ablation",
    "run_estimator_comparison",
    "run_snr_sweep",
    "run_packets_per_signature_sweep",
    "figure5_campaign",
    "figure6_campaign",
    "figure7_campaign",
    "roc_campaign",
    "spoofing_eval_campaign",
    "calibration_ablation_campaign",
    "estimator_comparison_campaign",
    "snr_sweep_campaign",
    "packets_per_signature_campaign",
]
