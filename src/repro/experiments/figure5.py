"""Figure 5: measured versus ground-truth bearings for the testbed clients.

The paper computes, for each of the 20 Soekris clients and with the circular
(octagonal) antenna arrangement, ten pseudospectra from ten different packets,
takes the bearing of each pseudospectrum's maximum, and plots the mean bearing
with a 99 % confidence interval against the ground-truth bearing.  The text
quotes a mean 99 % confidence interval of roughly 7 degrees and notes that the
blocked (11, 12) and far (6) clients show the largest variance.

``run_figure5`` reproduces exactly that procedure on the simulated testbed and
returns one row per client (ground truth, mean estimate, confidence interval,
error) plus the summary statistics the accuracy claim (Section 2.3.1) is built
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.experiments.reporting import format_table
from repro.utils.angles import angular_difference, circular_mean, confidence_interval_halfwidth
from repro.utils.rng import RngLike
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runner and the campaign adapter.
DEFAULT_NUM_PACKETS = 10
DEFAULT_INTER_PACKET_GAP_S = 0.5
DEFAULT_CONFIDENCE = 0.99


@dataclass(frozen=True)
class ClientBearingRow(JsonSerializable):
    """One client's row of the Figure 5 data."""

    client_id: int
    ground_truth_deg: float
    mean_estimate_deg: float
    confidence_halfwidth_deg: float
    error_deg: float
    per_packet_bearings_deg: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class Figure5Result(JsonSerializable):
    """The full Figure 5 dataset plus its summary statistics."""

    rows: List[ClientBearingRow]
    num_packets: int
    confidence: float

    @property
    def mean_confidence_halfwidth_deg(self) -> float:
        """Mean 99 % confidence-interval half-width across clients (paper: ~7 deg)."""
        return float(np.mean([row.confidence_halfwidth_deg for row in self.rows]))

    @property
    def errors_deg(self) -> np.ndarray:
        """Per-client bearing errors of the mean estimates."""
        return np.array([row.error_deg for row in self.rows])

    def fraction_within(self, threshold_deg: float) -> float:
        """Fraction of clients whose mean bearing error is within ``threshold_deg``."""
        if threshold_deg <= 0:
            raise ValueError("threshold_deg must be positive")
        return float(np.mean(self.errors_deg <= threshold_deg))

    def as_table(self) -> str:
        """Text rendering of the per-client rows (what the benchmark prints)."""
        return format_table(
            ["client", "truth (deg)", "mean est (deg)", "99% CI (deg)", "error (deg)"],
            [
                (row.client_id, row.ground_truth_deg, row.mean_estimate_deg,
                 row.confidence_halfwidth_deg, row.error_deg)
                for row in self.rows
            ],
        )


def run_figure5(num_packets: int = DEFAULT_NUM_PACKETS,
                client_ids: Optional[Sequence[int]] = None,
                inter_packet_gap_s: float = DEFAULT_INTER_PACKET_GAP_S,
                confidence: float = DEFAULT_CONFIDENCE,
                estimator_config: Optional[EstimatorConfig] = None,
                rng: RngLike = 42) -> Figure5Result:
    """Reproduce Figure 5 on the simulated testbed.

    Parameters
    ----------
    num_packets:
        Pseudospectra per client (the paper uses 10).
    client_ids:
        Which clients to measure; defaults to all twenty.
    inter_packet_gap_s:
        Spacing between the packets of one client's burst.
    confidence:
        Confidence level of the interval (the paper plots 99 %).
    estimator_config:
        Overrides the default MUSIC pipeline configuration.
    rng:
        Seed controlling every stochastic part of the simulation.
    """
    if num_packets < 1:
        raise ValueError("num_packets must be at least 1")
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="figure5"), rng=rng)
    if client_ids is None:
        client_ids = deployment.environment.client_ids

    rows: List[ClientBearingRow] = []
    for client_id in client_ids:
        rows.append(_client_row(deployment, client_id, num_packets=num_packets,
                                inter_packet_gap_s=inter_packet_gap_s,
                                confidence=confidence))
    return Figure5Result(rows=rows, num_packets=num_packets, confidence=confidence)


def _client_row(deployment: Deployment, client_id: int, num_packets: int,
                inter_packet_gap_s: float, confidence: float) -> ClientBearingRow:
    """One client's Figure 5 row (consumes ``num_packets`` captures)."""
    simulator = deployment.simulator()
    ap = deployment.ap()
    expected = simulator.expected_client_bearing(client_id)
    captures = [
        simulator.capture_from_client(
            client_id, elapsed_s=index * inter_packet_gap_s,
            timestamp_s=index * inter_packet_gap_s)
        for index in range(num_packets)
    ]
    estimates = ap.analyze_batch(captures)
    bearings = [estimate.bearing_deg for estimate in estimates]
    mean_bearing = circular_mean(bearings)
    halfwidth = confidence_interval_halfwidth(bearings, confidence=confidence)
    error = float(angular_difference(mean_bearing, expected))
    return ClientBearingRow(
        client_id=client_id,
        ground_truth_deg=float(expected),
        mean_estimate_deg=float(mean_bearing),
        confidence_halfwidth_deg=float(halfwidth),
        error_deg=error,
        per_packet_bearings_deg=bearings,
    )


# ------------------------------------------------------------------- campaign
def figure5_campaign(num_packets: int = DEFAULT_NUM_PACKETS,
                     client_ids: Optional[Sequence[int]] = None,
                     inter_packet_gap_s: float = DEFAULT_INTER_PACKET_GAP_S,
                     confidence: float = DEFAULT_CONFIDENCE,
                     seed: int = 42,
                     name: str = "figure5") -> CampaignSpec:
    """Figure 5 as a campaign: one shard per client, seed pinned to 42.

    The lone replicate reproduces :func:`run_figure5` bit-for-bit: each shard
    rebuilds the figure's deployment from the same seed, fast-forwards the
    master generator past the earlier clients' captures, and measures its own
    client exactly as the serial loop would.
    """
    if client_ids is None:
        from repro.api import ENVIRONMENTS

        client_ids = ENVIRONMENTS.get("figure4")().client_ids
    return CampaignSpec(
        name=name,
        experiment="figure5",
        seeds=(int(seed),),
        base={"num_packets": int(num_packets),
              "inter_packet_gap_s": float(inter_packet_gap_s),
              "confidence": float(confidence)},
        axes={"client_id": tuple(int(client) for client in client_ids)},
    )


def run_figure5_shard(spec: CampaignSpec, shard: ShardSpec) -> ClientBearingRow:
    """One Figure 5 campaign shard: a single client's row."""
    num_packets = int(spec.param("num_packets", DEFAULT_NUM_PACKETS))
    deployment = Deployment(single_ap_scenario(
        estimator=estimator_from_params(spec.base), name="figure5"),
        rng=shard.seed)
    # Jump to this client's slice of the serial capture sequence.
    deployment.simulator().skip_captures(shard.point * num_packets)
    return _client_row(deployment, int(shard.params["client_id"]),
                       num_packets=num_packets,
                       inter_packet_gap_s=float(
                           spec.param("inter_packet_gap_s", DEFAULT_INTER_PACKET_GAP_S)),
                       confidence=float(spec.param("confidence", DEFAULT_CONFIDENCE)))


def merge_figure5(spec: CampaignSpec,
                  rows: Sequence[ClientBearingRow]) -> Figure5Result:
    """Reduce one replicate's shard rows into the serial result dataclass."""
    return Figure5Result(rows=list(rows),
                         num_packets=int(spec.param("num_packets", DEFAULT_NUM_PACKETS)),
                         confidence=float(spec.param("confidence", DEFAULT_CONFIDENCE)))
