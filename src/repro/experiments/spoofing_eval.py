"""The address-spoofing-detection evaluation (Sections 2.3.2 and 3.2).

A legitimate client trains its certified signature at the access point; an
attacker elsewhere in (or outside) the building then injects frames carrying
the client's MAC address.  The evaluation measures, over many packets:

* the **detection rate** — how often the attacker's spoofed frames are flagged,
  for each attacker type of the threat model (omnidirectional, directional
  antenna aimed at the AP, antenna array), and
* the **false-alarm rate** — how often the legitimate client's own subsequent
  frames are wrongly flagged (the environment keeps evolving between packets,
  so this exercises signature tracking too), and
* the same two numbers for the RSS-signalprint baseline, which the paper
  argues is coarser and subvertible with directional antennas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, spoofing_scenario
from repro.attacks.attacker import Attacker
from repro.attacks.spoofing_attack import SpoofingAttack
from repro.baselines.rss_signalprint import RssSignalprint, RssSpoofingDetector
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.spoofing import SpoofingVerdict
from repro.experiments.reporting import format_table
from repro.geometry.point import Point
from repro.mac.address import MacAddress
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runner and the campaign adapter.
DEFAULT_VICTIM_CLIENT = 5
DEFAULT_TRAINING_PACKETS = 10
DEFAULT_TEST_PACKETS = 20


@dataclass(frozen=True)
class AttackerOutcome(JsonSerializable):
    """Detection statistics for one attacker configuration."""

    attacker_name: str
    attacker_position: Point
    detection_rate: float
    rss_detection_rate: float
    mean_similarity: float


@dataclass(frozen=True)
class SpoofingEvaluation(JsonSerializable):
    """Results of the spoofing-detection evaluation."""

    victim_client_id: int
    false_alarm_rate: float
    rss_false_alarm_rate: float
    attackers: List[AttackerOutcome]

    @property
    def mean_detection_rate(self) -> float:
        """Mean detection rate across all attacker configurations."""
        return float(np.mean([outcome.detection_rate for outcome in self.attackers]))

    def as_table(self) -> str:
        """Text rendering of the per-attacker outcomes."""
        rows = [("legitimate client (false alarms)", "-", self.false_alarm_rate,
                 self.rss_false_alarm_rate, "-")]
        rows.extend(
            (outcome.attacker_name,
             f"({outcome.attacker_position.x:.1f}, {outcome.attacker_position.y:.1f})",
             outcome.detection_rate, outcome.rss_detection_rate, outcome.mean_similarity)
            for outcome in self.attackers
        )
        return format_table(
            ["transmitter", "position", "SecureAngle flag rate", "RSS flag rate",
             "mean similarity"],
            rows,
        )


def run_spoofing_evaluation(victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                            num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                            num_test_packets: int = DEFAULT_TEST_PACKETS,
                            estimator_config: Optional[EstimatorConfig] = None,
                            rng: RngLike = 42) -> SpoofingEvaluation:
    """Run the spoofing-detection evaluation on the simulated testbed."""
    if num_training_packets < 1 or num_test_packets < 1:
        raise ValueError("training and test packet counts must be positive")
    generator = ensure_rng(rng)
    # The spoofing scenario carries the paper's four attacker configurations;
    # the deployment compiles the AP (stream 1 of the master generator, like
    # the original wiring) and lazily draws attacker addresses from stream 4.
    deployment = Deployment(spoofing_scenario(estimator=estimator_config),
                            rng=generator)

    ap_address = MacAddress.random(spawn_rng(generator, 2))
    victim_address = MacAddress.random(spawn_rng(generator, 3))

    false_alarms, rss_false_alarms, rss_detector = _train_and_track(
        deployment, victim_address, victim_client_id,
        num_training_packets, num_test_packets)

    # ------------------------------------------------------------ the attackers
    # Declared in the scenario spec; building them here (after the address
    # draws above) consumes the same master-generator streams as the original
    # hand-wired attacker list.
    attackers = list(deployment.attackers.values())

    outcomes: List[AttackerOutcome] = []
    for attacker in attackers:
        outcomes.append(_attacker_outcome(
            deployment, attacker, victim_address, ap_address,
            num_test_packets, rss_detector))

    return SpoofingEvaluation(
        victim_client_id=victim_client_id,
        false_alarm_rate=false_alarms / num_test_packets,
        rss_false_alarm_rate=rss_false_alarms / num_test_packets,
        attackers=outcomes,
    )


def _train_and_track(deployment: Deployment, victim_address: MacAddress,
                     victim_client_id: int, num_training_packets: int,
                     num_test_packets: int):
    """Train the certified signature, then stream the victim's later packets.

    Returns ``(false_alarms, rss_false_alarms, rss_detector)``.  Mutates the
    AP's detector/tracker state exactly as the serial evaluation does — the
    attacker loops depend on that state, so campaign shards replay this
    before measuring their attacker.
    """
    simulator = deployment.simulator()
    ap = deployment.ap()
    rss_detector = RssSpoofingDetector(match_threshold_db=6.0)

    # ----------------------------------------------------------------- training
    training_captures = [
        simulator.capture_from_client(victim_client_id, elapsed_s=index * 0.5,
                                      timestamp_s=index * 0.5)
        for index in range(num_training_packets)
    ]
    ap.train_client(victim_address, training_captures)
    rss_detector.train(victim_address, RssSignalprint.from_capture_power(
        [np.mean([c.power_dbm() for c in training_captures])]))

    # ----------------------------------------------- legitimate client, later on
    false_alarms = 0
    rss_false_alarms = 0
    probe_captures = [
        simulator.capture_from_client(victim_client_id, elapsed_s=60.0 + index * 5.0,
                                      timestamp_s=60.0 + index * 5.0)
        for index in range(num_test_packets)
    ]
    probe_observations = ap.signatures_from_captures(probe_captures)
    for capture, observation in zip(probe_captures, probe_observations):
        check = ap.detector.check(victim_address, observation)
        if check.verdict is SpoofingVerdict.SPOOFED:
            false_alarms += 1
        else:
            ap.tracker.observe(victim_address, observation, capture.timestamp_s)
        if not rss_detector.matches(victim_address,
                                    RssSignalprint.from_capture_power([capture.power_dbm()])):
            rss_false_alarms += 1
    return false_alarms, rss_false_alarms, rss_detector


def _attacker_outcome(deployment: Deployment, attacker: Attacker,
                      victim_address: MacAddress, ap_address: MacAddress,
                      num_test_packets: int,
                      rss_detector: RssSpoofingDetector) -> AttackerOutcome:
    """Measure one attacker (consumes its captures; resets the detector)."""
    simulator = deployment.simulator()
    ap = deployment.ap()
    attack = SpoofingAttack(attacker=attacker, victim_address=victim_address,
                            ap_address=ap_address, num_frames=num_test_packets)
    detections = 0
    rss_detections = 0
    similarities: List[float] = []
    attack_captures = [
        simulator.capture_from_position(
            attacker.position, elapsed_s=200.0 + index * 5.0,
            timestamp_s=200.0 + index * 5.0,
            attacker=attacker, tx_power_dbm=attacker.tx_power_dbm)
        for index, _frame in enumerate(attack.iter_frames())
    ]
    attack_observations = ap.signatures_from_captures(attack_captures)
    for capture, observation in zip(attack_captures, attack_observations):
        check = ap.detector.check(victim_address, observation)
        similarities.append(check.similarity)
        if check.verdict is SpoofingVerdict.SPOOFED:
            detections += 1
        if not rss_detector.matches(
                victim_address, RssSignalprint.from_capture_power([capture.power_dbm()])):
            rss_detections += 1
    ap.detector.reset(victim_address)
    return AttackerOutcome(
        attacker_name=attacker.name,
        attacker_position=attacker.position,
        detection_rate=detections / num_test_packets,
        rss_detection_rate=rss_detections / num_test_packets,
        mean_similarity=float(np.mean(similarities)),
    )


# ------------------------------------------------------------------- campaign
@dataclass(frozen=True)
class SpoofingEvalShard(JsonSerializable):
    """One spoofing-evaluation shard.

    The ``legitimate`` shard carries the false-alarm counts; each
    ``attacker`` shard carries its attacker's outcome.
    """

    role: str
    false_alarm_rate: Optional[float] = None
    rss_false_alarm_rate: Optional[float] = None
    outcome: Optional[AttackerOutcome] = None

    def __post_init__(self) -> None:
        if self.role not in ("legitimate", "attacker"):
            raise ValueError(f"unknown spoofing-shard role {self.role!r}")


def spoofing_eval_campaign(victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                           num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                           num_test_packets: int = DEFAULT_TEST_PACKETS,
                           seed: int = 42,
                           name: str = "spoofing-eval") -> CampaignSpec:
    """The spoofing evaluation as a campaign: one shard per transmitter.

    Point 0 measures the legitimate client's false alarms; the following
    points measure the scenario's attackers in declaration order — the
    serial evaluation's capture order, so each shard fast-forwards to its
    own slice after replaying the training and tracking prefix.
    """
    scenario = spoofing_scenario()
    populations = [{"role": "legitimate"}]
    populations.extend(
        {"role": "attacker", "attacker_index": index,
         "attacker": attacker_spec.effective_name()}
        for index, attacker_spec in enumerate(scenario.attackers))
    return CampaignSpec(
        name=name,
        experiment="spoofing_eval",
        seeds=(int(seed),),
        base={"victim_client_id": int(victim_client_id),
              "num_training_packets": int(num_training_packets),
              "num_test_packets": int(num_test_packets)},
        axes={"population": tuple(populations)},
    )


def run_spoofing_eval_shard(spec: CampaignSpec,
                            shard: ShardSpec) -> SpoofingEvalShard:
    """One spoofing-evaluation shard (legitimate client or one attacker)."""
    num_training = int(spec.param("num_training_packets", DEFAULT_TRAINING_PACKETS))
    num_test = int(spec.param("num_test_packets", DEFAULT_TEST_PACKETS))
    victim_client = int(spec.param("victim_client_id", DEFAULT_VICTIM_CLIENT))
    generator = ensure_rng(shard.seed)
    deployment = Deployment(
        spoofing_scenario(estimator=estimator_from_params(spec.base)),
        rng=generator)
    ap_address = MacAddress.random(spawn_rng(generator, 2))
    victim_address = MacAddress.random(spawn_rng(generator, 3))

    false_alarms, rss_false_alarms, rss_detector = _train_and_track(
        deployment, victim_address, victim_client, num_training, num_test)
    population = shard.params["population"]
    if population["role"] == "legitimate":
        return SpoofingEvalShard(
            role="legitimate",
            false_alarm_rate=false_alarms / num_test,
            rss_false_alarm_rate=rss_false_alarms / num_test,
        )

    attackers = list(deployment.attackers.values())
    attacker_index = int(population["attacker_index"])
    if shard.point > 1:
        # The serial loop resets the victim's mismatch streak after each
        # attacker, so every attacker but the first starts from a clean one.
        deployment.ap().detector.reset(victim_address)
    deployment.simulator().skip_captures((shard.point - 1) * num_test)
    outcome = _attacker_outcome(deployment, attackers[attacker_index],
                                victim_address, ap_address, num_test,
                                rss_detector)
    return SpoofingEvalShard(role="attacker", outcome=outcome)


def merge_spoofing_eval(spec: CampaignSpec,
                        records: Sequence[SpoofingEvalShard]) -> SpoofingEvaluation:
    """Reduce the per-transmitter shards into the serial evaluation."""
    legitimate = [record for record in records if record.role == "legitimate"]
    if len(legitimate) != 1:
        raise ValueError("a spoofing campaign needs exactly one legitimate shard")
    return SpoofingEvaluation(
        victim_client_id=int(spec.param("victim_client_id", DEFAULT_VICTIM_CLIENT)),
        false_alarm_rate=legitimate[0].false_alarm_rate,
        rss_false_alarm_rate=legitimate[0].rss_false_alarm_rate,
        attackers=[record.outcome for record in records
                   if record.role == "attacker"],
    )
