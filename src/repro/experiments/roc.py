"""Spoofing-detector operating characteristic (threshold sweep).

Section 2.3.2 requires "a significant difference between the certified
signature and an attacker's signature so that they can be discriminated from
each other".  The operating-characteristic experiment makes that requirement
quantitative: it collects similarity scores for the legitimate client's later
packets and for spoofed packets injected by several attacker types, sweeps the
detector threshold, and reports detection and false-alarm rates per threshold
— the curve an operator would use to pick the deployment threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.core.metrics import signature_similarity
from repro.core.signature import AoASignature
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


@dataclass(frozen=True)
class RocPoint(JsonSerializable):
    """Detection and false-alarm rates at one similarity threshold."""

    threshold: float
    detection_rate: float
    false_alarm_rate: float


@dataclass(frozen=True)
class SpoofingRoc(JsonSerializable):
    """The full threshold sweep plus the underlying score populations."""

    points: List[RocPoint]
    legitimate_scores: List[float]
    attacker_scores: List[float]

    @property
    def similarity_gap(self) -> float:
        """Gap between the worst legitimate score and the best attacker score."""
        if not self.legitimate_scores or not self.attacker_scores:
            return float("nan")
        return float(min(self.legitimate_scores) - max(self.attacker_scores))

    def best_threshold(self) -> RocPoint:
        """The sweep point maximising detection minus false alarms (Youden's J)."""
        return max(self.points, key=lambda p: p.detection_rate - p.false_alarm_rate)

    def operating_point(self, threshold: float) -> RocPoint:
        """The sweep point closest to a given threshold."""
        return min(self.points, key=lambda p: abs(p.threshold - threshold))

    def as_table(self) -> str:
        """Text rendering of the sweep."""
        return format_table(
            ["threshold", "detection rate", "false-alarm rate"],
            [(p.threshold, p.detection_rate, p.false_alarm_rate) for p in self.points],
        )


def run_spoofing_roc(victim_client_id: int = 5,
                     attacker_client_ids: Sequence[int] = (3, 9, 15, 18),
                     num_training_packets: int = 10,
                     num_probe_packets: int = 10,
                     thresholds: Optional[Sequence[float]] = None,
                     estimator_config: Optional[EstimatorConfig] = None,
                     rng: RngLike = 42) -> SpoofingRoc:
    """Sweep the similarity threshold of the spoofing detector.

    Attackers are modelled as transmitters at other client positions spoofing
    the victim's address (the geometry, not the MAC header, is what the
    detector sees), which makes the sweep independent of any particular
    antenna model.
    """
    if num_training_packets < 1 or num_probe_packets < 1:
        raise ValueError("packet counts must be positive")
    if thresholds is None:
        thresholds = np.round(np.arange(0.05, 1.0, 0.05), 3)
    generator = ensure_rng(rng)
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="roc", rng_stream=1),
                            rng=generator)
    simulator = deployment.simulator()
    ap = deployment.ap()

    def signatures_of(client_id: int, elapsed_list: Sequence[float]) -> List[AoASignature]:
        """Batched capture -> spectrum -> signature for one client's packets."""
        captures = [simulator.capture_from_client(client_id, elapsed_s=elapsed,
                                                  timestamp_s=elapsed)
                    for elapsed in elapsed_list]
        return ap.signatures_from_captures(captures)

    # Certified signature: average of the training packets.
    training = signatures_of(victim_client_id,
                             [index * 0.5 for index in range(num_training_packets)])
    certified = training[0]
    for index, observation in enumerate(training[1:], start=1):
        certified = certified.merged_with(observation, weight=1.0 / (index + 1))

    legitimate_scores = [
        signature_similarity(certified, signature)
        for signature in signatures_of(
            victim_client_id,
            [60.0 + 5.0 * index for index in range(num_probe_packets)])
    ]
    attacker_scores: List[float] = []
    for attacker_client in attacker_client_ids:
        attacker_scores.extend(
            signature_similarity(certified, signature)
            for signature in signatures_of(
                attacker_client,
                [120.0 + 5.0 * index for index in range(num_probe_packets)]))

    points = []
    for threshold in thresholds:
        detection = float(np.mean([score < threshold for score in attacker_scores]))
        false_alarm = float(np.mean([score < threshold for score in legitimate_scores]))
        points.append(RocPoint(threshold=float(threshold), detection_rate=detection,
                               false_alarm_rate=false_alarm))
    return SpoofingRoc(points=points, legitimate_scores=legitimate_scores,
                       attacker_scores=attacker_scores)
