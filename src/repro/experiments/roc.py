"""Spoofing-detector operating characteristic (threshold sweep).

Section 2.3.2 requires "a significant difference between the certified
signature and an attacker's signature so that they can be discriminated from
each other".  The operating-characteristic experiment makes that requirement
quantitative: it collects similarity scores for the legitimate client's later
packets and for spoofed packets injected by several attacker types, sweeps the
detector threshold, and reports detection and false-alarm rates per threshold
— the curve an operator would use to pick the deployment threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.aoa.estimator import EstimatorConfig
from repro.api import Deployment, single_ap_scenario
from repro.campaign.spec import CampaignSpec, ShardSpec, estimator_from_params
from repro.core.metrics import signature_similarity
from repro.core.signature import AoASignature
from repro.experiments.reporting import format_table
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable


#: Defaults shared by the serial runner and the campaign adapter.
DEFAULT_VICTIM_CLIENT = 5
DEFAULT_ATTACKER_CLIENTS = (3, 9, 15, 18)
DEFAULT_TRAINING_PACKETS = 10
DEFAULT_PROBE_PACKETS = 10


def default_thresholds() -> np.ndarray:
    """The default detector-threshold ladder of the sweep (0.05 .. 0.95)."""
    return np.round(np.arange(0.05, 1.0, 0.05), 3)


@dataclass(frozen=True)
class RocPoint(JsonSerializable):
    """Detection and false-alarm rates at one similarity threshold."""

    threshold: float
    detection_rate: float
    false_alarm_rate: float


@dataclass(frozen=True)
class SpoofingRoc(JsonSerializable):
    """The full threshold sweep plus the underlying score populations."""

    points: List[RocPoint]
    legitimate_scores: List[float]
    attacker_scores: List[float]

    @property
    def similarity_gap(self) -> float:
        """Gap between the worst legitimate score and the best attacker score."""
        if not self.legitimate_scores or not self.attacker_scores:
            return float("nan")
        return float(min(self.legitimate_scores) - max(self.attacker_scores))

    def best_threshold(self) -> RocPoint:
        """The sweep point maximising detection minus false alarms (Youden's J)."""
        return max(self.points, key=lambda p: p.detection_rate - p.false_alarm_rate)

    def operating_point(self, threshold: float) -> RocPoint:
        """The sweep point closest to a given threshold."""
        return min(self.points, key=lambda p: abs(p.threshold - threshold))

    def as_table(self) -> str:
        """Text rendering of the sweep."""
        return format_table(
            ["threshold", "detection rate", "false-alarm rate"],
            [(p.threshold, p.detection_rate, p.false_alarm_rate) for p in self.points],
        )


def run_spoofing_roc(victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                     attacker_client_ids: Sequence[int] = DEFAULT_ATTACKER_CLIENTS,
                     num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                     num_probe_packets: int = DEFAULT_PROBE_PACKETS,
                     thresholds: Optional[Sequence[float]] = None,
                     estimator_config: Optional[EstimatorConfig] = None,
                     rng: RngLike = 42) -> SpoofingRoc:
    """Sweep the similarity threshold of the spoofing detector.

    Attackers are modelled as transmitters at other client positions spoofing
    the victim's address (the geometry, not the MAC header, is what the
    detector sees), which makes the sweep independent of any particular
    antenna model.
    """
    if num_training_packets < 1 or num_probe_packets < 1:
        raise ValueError("packet counts must be positive")
    if thresholds is None:
        thresholds = default_thresholds()
    generator = ensure_rng(rng)
    deployment = Deployment(single_ap_scenario(estimator=estimator_config,
                                               name="roc", rng_stream=1),
                            rng=generator)
    simulator = deployment.simulator()
    ap = deployment.ap()

    def signatures_of(client_id: int, elapsed_list: Sequence[float]) -> List[AoASignature]:
        """Batched capture -> spectrum -> signature for one client's packets."""
        captures = [simulator.capture_from_client(client_id, elapsed_s=elapsed,
                                                  timestamp_s=elapsed)
                    for elapsed in elapsed_list]
        return ap.signatures_from_captures(captures)

    # Certified signature: average of the training packets.
    training = signatures_of(victim_client_id,
                             [index * 0.5 for index in range(num_training_packets)])
    certified = training[0]
    for index, observation in enumerate(training[1:], start=1):
        certified = certified.merged_with(observation, weight=1.0 / (index + 1))

    legitimate_scores = [
        signature_similarity(certified, signature)
        for signature in signatures_of(
            victim_client_id,
            [60.0 + 5.0 * index for index in range(num_probe_packets)])
    ]
    attacker_scores: List[float] = []
    for attacker_client in attacker_client_ids:
        attacker_scores.extend(
            signature_similarity(certified, signature)
            for signature in signatures_of(
                attacker_client,
                [120.0 + 5.0 * index for index in range(num_probe_packets)]))

    return SpoofingRoc(points=_sweep_points(thresholds, legitimate_scores,
                                            attacker_scores),
                       legitimate_scores=legitimate_scores,
                       attacker_scores=attacker_scores)


def _sweep_points(thresholds, legitimate_scores, attacker_scores) -> List[RocPoint]:
    """Threshold sweep over the two score populations (shared with merge)."""
    points = []
    for threshold in thresholds:
        detection = float(np.mean([score < threshold for score in attacker_scores]))
        false_alarm = float(np.mean([score < threshold for score in legitimate_scores]))
        points.append(RocPoint(threshold=float(threshold), detection_rate=detection,
                               false_alarm_rate=false_alarm))
    return points


# ------------------------------------------------------------------- campaign
@dataclass(frozen=True)
class RocShardScores(JsonSerializable):
    """One ROC campaign shard: one transmitter population's score list."""

    role: str
    client_id: int
    scores: List[float]

    def __post_init__(self) -> None:
        if self.role not in ("legitimate", "attacker"):
            raise ValueError(f"unknown ROC population role {self.role!r}")


def roc_campaign(victim_client_id: int = DEFAULT_VICTIM_CLIENT,
                 attacker_client_ids: Sequence[int] = DEFAULT_ATTACKER_CLIENTS,
                 num_training_packets: int = DEFAULT_TRAINING_PACKETS,
                 num_probe_packets: int = DEFAULT_PROBE_PACKETS,
                 thresholds: Optional[Sequence[float]] = None,
                 seed: int = 42,
                 name: str = "roc") -> CampaignSpec:
    """The ROC sweep as a campaign: one shard per score population.

    The legitimate population is point 0, the attacker populations follow in
    declaration order — exactly the capture order of the serial sweep, so
    each shard can fast-forward the simulator to its own slice.
    """
    if thresholds is None:
        thresholds = default_thresholds()
    populations = [{"role": "legitimate", "client_id": int(victim_client_id)}]
    populations.extend({"role": "attacker", "client_id": int(client)}
                       for client in attacker_client_ids)
    return CampaignSpec(
        name=name,
        experiment="roc",
        seeds=(int(seed),),
        base={"victim_client_id": int(victim_client_id),
              "num_training_packets": int(num_training_packets),
              "num_probe_packets": int(num_probe_packets),
              "thresholds": [float(threshold) for threshold in thresholds]},
        axes={"population": tuple(populations)},
    )


def run_roc_shard(spec: CampaignSpec, shard: ShardSpec) -> RocShardScores:
    """One ROC campaign shard: train the certified signature, then score
    this shard's probe population against it."""
    num_training = int(spec.param("num_training_packets", DEFAULT_TRAINING_PACKETS))
    num_probe = int(spec.param("num_probe_packets", DEFAULT_PROBE_PACKETS))
    victim = int(spec.param("victim_client_id", DEFAULT_VICTIM_CLIENT))
    deployment = Deployment(single_ap_scenario(
        estimator=estimator_from_params(spec.base), name="roc", rng_stream=1),
        rng=shard.seed)
    simulator = deployment.simulator()
    ap = deployment.ap()

    def signatures_of(client_id: int, elapsed_list: Sequence[float]) -> List[AoASignature]:
        captures = [simulator.capture_from_client(client_id, elapsed_s=elapsed,
                                                  timestamp_s=elapsed)
                    for elapsed in elapsed_list]
        return ap.signatures_from_captures(captures)

    # Training always replays first (every shard scores against the same
    # certified signature, from the same capture draws as the serial sweep).
    training = signatures_of(victim,
                             [index * 0.5 for index in range(num_training)])
    certified = training[0]
    for index, observation in enumerate(training[1:], start=1):
        certified = certified.merged_with(observation, weight=1.0 / (index + 1))

    # Jump past the earlier populations' probe captures.
    simulator.skip_captures(shard.point * num_probe)
    population = shard.params["population"]
    role = str(population["role"])
    client_id = int(population["client_id"])
    start_s = 60.0 if role == "legitimate" else 120.0
    scores = [
        signature_similarity(certified, signature)
        for signature in signatures_of(
            client_id, [start_s + 5.0 * index for index in range(num_probe)])
    ]
    return RocShardScores(role=role, client_id=client_id, scores=scores)


def merge_roc(spec: CampaignSpec,
              records: Sequence[RocShardScores]) -> SpoofingRoc:
    """Reduce one replicate's population scores into the serial ROC."""
    thresholds = spec.param("thresholds")
    if thresholds is None:
        thresholds = default_thresholds()
    legitimate_scores: List[float] = []
    attacker_scores: List[float] = []
    for record in records:
        if record.role == "legitimate":
            legitimate_scores.extend(record.scores)
        else:
            attacker_scores.extend(record.scores)
    return SpoofingRoc(points=_sweep_points(thresholds, legitimate_scores,
                                            attacker_scores),
                       legitimate_scores=legitimate_scores,
                       attacker_scores=attacker_scores)
