"""File collection, allowlist handling, and the lint run itself."""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.rules import RULES, Rule, all_rules
from repro.lint.violations import (
    FileContext,
    ProjectContext,
    Violation,
    parse_pragmas,
)

__all__ = ["Allowlist", "AllowlistEntry", "LintReport", "collect_files",
           "lint_paths", "load_allowlist"]

#: Directory names never descended into when expanding path arguments.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        ".mypy_cache", ".ruff_cache"})

#: Default allowlist filename, looked up in the lint root.
ALLOWLIST_FILENAME = ".repro-lint.json"


@dataclass(frozen=True)
class AllowlistEntry:
    """One documented whole-file exception: (rule, path) plus its reason."""

    rule: str
    path: str
    reason: str

    def matches(self, violation: Violation) -> bool:
        return (self.rule == violation.rule
                and violation.path.replace("\\", "/") == self.path)


@dataclass
class Allowlist:
    """The parsed allowlist plus bookkeeping of which entries fired."""

    entries: Tuple[AllowlistEntry, ...] = ()
    source: Optional[Path] = None
    _used: Dict[AllowlistEntry, int] = field(default_factory=dict)

    def suppresses(self, violation: Violation) -> bool:
        for entry in self.entries:
            if entry.matches(violation):
                self._used[entry] = self._used.get(entry, 0) + 1
                return True
        return False

    def unused_entries(self) -> List[AllowlistEntry]:
        """Entries that suppressed nothing — candidates for deletion."""
        return [entry for entry in self.entries if entry not in self._used]


def load_allowlist(path: Path) -> Allowlist:
    """Parse an allowlist file, validating every entry carries a reason."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"allowlist {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict) or not isinstance(
            document.get("entries"), list):
        raise ValueError(
            f"allowlist {path} must be an object with an 'entries' list")
    entries = []
    for index, raw in enumerate(document["entries"]):
        if not isinstance(raw, dict):
            raise ValueError(f"allowlist {path} entry {index} must be an object")
        rule = raw.get("rule")
        rel = raw.get("path")
        reason = raw.get("reason")
        if not isinstance(rule, str) or rule not in RULES:
            known = ", ".join(sorted(RULES))
            raise ValueError(
                f"allowlist {path} entry {index}: unknown rule {rule!r} "
                f"(known rules: {known})")
        if not isinstance(rel, str) or not rel.strip():
            raise ValueError(
                f"allowlist {path} entry {index}: 'path' must be a non-empty "
                "string")
        if not isinstance(reason, str) or not reason.strip():
            raise ValueError(
                f"allowlist {path} entry {index}: every exception must state "
                "a non-empty 'reason'")
        entries.append(AllowlistEntry(rule=rule, path=rel.replace("\\", "/"),
                                      reason=reason.strip()))
    return Allowlist(entries=tuple(entries), source=path)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: List[Violation]
    files_checked: int
    rules_run: Tuple[str, ...]
    suppressed_by_pragma: int = 0
    suppressed_by_allowlist: int = 0
    unused_allowlist: List[AllowlistEntry] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def to_dict(self) -> Dict[str, object]:
        """The stable ``--json`` document (schema pinned by the tests)."""
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "violations": [violation.to_dict() for violation in self.violations],
            "counts": counts,
            "suppressed": {"pragma": self.suppressed_by_pragma,
                           "allowlist": self.suppressed_by_allowlist},
            "unused_allowlist": [
                {"rule": entry.rule, "path": entry.path, "reason": entry.reason}
                for entry in self.unused_allowlist],
        }


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    collected: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate for candidate in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in candidate.parts))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return collected


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = path
    return relative.as_posix()


def _parse_file(path: Path, root: Path) -> Tuple[Optional[FileContext],
                                                 Optional[Violation]]:
    relpath = _relative_to_root(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as error:
        return None, Violation(
            rule="parse-error", path=relpath,
            line=getattr(error, "lineno", 1) or 1, col=0,
            message=f"could not parse file: {error}")
    lines = source.splitlines()
    return FileContext(path=path, relpath=relpath, tree=tree, lines=lines,
                       pragmas=parse_pragmas(lines)), None


def lint_paths(paths: Sequence[Path], root: Optional[Path] = None,
               allowlist: Optional[Allowlist] = None,
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Run ``rules`` (default: all) over ``paths`` and report violations.

    ``root`` anchors relative paths in messages, locates the ``tests/``
    directory for cross-file rules, and is where the default allowlist
    lives; it defaults to the current working directory.
    """
    root = Path.cwd() if root is None else root
    active = list(all_rules()) if rules is None else list(rules)
    if allowlist is None:
        default_path = root / ALLOWLIST_FILENAME
        allowlist = (load_allowlist(default_path) if default_path.is_file()
                     else Allowlist())

    contexts: List[FileContext] = []
    raw_violations: List[Violation] = []
    for path in collect_files(paths):
        context, parse_violation = _parse_file(path, root)
        if parse_violation is not None:
            raw_violations.append(parse_violation)
        if context is not None:
            contexts.append(context)

    tests_dir = root / "tests"
    project = ProjectContext(root=root, files=tuple(contexts),
                             tests_dir=tests_dir if tests_dir.is_dir() else None)

    for active_rule in active:
        if active_rule.scope == "file":
            for context in contexts:
                raw_violations.extend(active_rule.check(context))
        else:
            raw_violations.extend(active_rule.check(project))

    by_relpath = {context.relpath: context for context in contexts}
    violations: List[Violation] = []
    seen = set()
    suppressed_pragma = 0
    suppressed_allowlist = 0
    for violation in raw_violations:
        if violation in seen:
            continue
        seen.add(violation)
        context = by_relpath.get(violation.path)
        if context is not None and context.suppressed(violation.rule,
                                                      violation.line):
            suppressed_pragma += 1
            continue
        if allowlist.suppresses(violation):
            suppressed_allowlist += 1
            continue
        violations.append(violation)

    violations.sort(key=lambda item: (item.path, item.line, item.col, item.rule))
    return LintReport(
        violations=violations,
        files_checked=len(contexts),
        rules_run=tuple(active_rule.name for active_rule in active),
        suppressed_by_pragma=suppressed_pragma,
        suppressed_by_allowlist=suppressed_allowlist,
        unused_allowlist=allowlist.unused_entries(),
    )
