"""Project-specific static analysis: mechanical enforcement of repro's invariants.

Six PRs of growth left the reproduction's correctness resting on conventions
that no generic linter checks: hot numerics must go through the
:mod:`repro.kernels` Backend seam (or ``REPRO_BACKEND=torch`` silently skips
them), seeds must be derived via :func:`repro.utils.rng.derive_seed` (or
campaign merges stop being bit-identical), campaign store writes must be
atomic tmp + ``os.replace`` (or a crashed worker leaves torn records), and
precision-parameterised modules must not hard-code ``complex128``.  This
package turns each convention into an AST rule so CI enforces them the same
way the bit-identity test matrix gates executor backends.

Run it as ``python -m repro.lint src/`` (exit 0 = clean).  Suppress a single
line with ``# repro-lint: disable=<rule>`` and a documented whole-file
exception with an entry in the repo-root ``.repro-lint.json`` allowlist; both
forms require the reason to live next to the suppression.
"""

from __future__ import annotations

from repro.lint.engine import (
    Allowlist,
    AllowlistEntry,
    LintReport,
    lint_paths,
    load_allowlist,
)
from repro.lint.rules import RULES, Rule, all_rules, get_rule
from repro.lint.violations import FileContext, ProjectContext, Violation

__all__ = [
    "Allowlist",
    "AllowlistEntry",
    "FileContext",
    "LintReport",
    "ProjectContext",
    "RULES",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "load_allowlist",
]
