"""The rule registry and repro's project-specific rules.

Every rule encodes one invariant the test matrix relies on but no generic
linter can see.  Per-file rules receive a :class:`FileContext`; project rules
receive a :class:`ProjectContext` (all parsed files plus the repo layout) and
run once per lint invocation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.violations import FileContext, ProjectContext, Violation

__all__ = ["RULES", "Rule", "all_rules", "get_rule", "rule"]

CheckFunction = Callable[..., Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """One named invariant check."""

    name: str
    description: str
    check: CheckFunction
    #: ``"file"`` rules run per parsed file; ``"project"`` rules run once.
    scope: str = "file"


RULES: Dict[str, Rule] = {}


def rule(name: str, description: str, scope: str = "file"
         ) -> Callable[[CheckFunction], CheckFunction]:
    """Register a check function under ``name`` (decorator)."""
    if scope not in ("file", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def _register(check: CheckFunction) -> CheckFunction:
        if name in RULES:
            raise ValueError(f"lint rule {name!r} is already registered")
        RULES[name] = Rule(name=name, description=description,
                           check=check, scope=scope)
        return check

    return _register


def get_rule(name: str) -> Rule:
    """Look up one rule by name."""
    try:
        return RULES[name]
    except KeyError:
        known = ", ".join(sorted(RULES))
        raise KeyError(f"unknown lint rule {name!r}; known rules: {known}") from None


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by name."""
    return [RULES[name] for name in sorted(RULES)]


# ------------------------------------------------------------------- helpers
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, or ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def numpy_aliases(tree: ast.Module) -> FrozenSet[str]:
    """Names the module binds to the ``numpy`` package (``np``, usually)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy" or item.name.startswith("numpy."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return frozenset(aliases)


def _is_numpy_call(name: Optional[str], aliases: FrozenSet[str],
                   suffixes: Tuple[str, ...]) -> Optional[str]:
    """The matched ``suffix`` when ``name`` is ``<numpy alias>.<suffix>``."""
    if name is None or "." not in name:
        return None
    head, _, tail = name.partition(".")
    if head in aliases and tail in suffixes:
        return tail
    return None


def _in_file(context: FileContext, *suffixes: str) -> bool:
    """True when the analysed file is one of ``suffixes`` (posix paths)."""
    path = context.relpath.replace("\\", "/")
    return any(path.endswith(suffix) for suffix in suffixes)


# --------------------------------------------------------------- seam-bypass
#: The only module allowed to touch the raw kernels directly.
_SEAM_MODULE = "repro/kernels/backend.py"

#: Hot-path modules where even matmul must go through the Backend seam
#: (these are the loops ``REPRO_BACKEND=torch`` is expected to cover).
_HOT_PATH_MODULES = ("repro/aoa/batch.py", "repro/aoa/subspace.py")

#: ``np.linalg`` factorisations the Backend seam owns.
_SEAM_LINALG = ("linalg.eigh", "linalg.inv")

#: FFT transforms the Backend seam owns (grid helpers like ``fft.fftfreq``
#: and ``fft.fftshift`` are pure index arithmetic and stay free).
_SEAM_FFT = tuple(
    f"fft.{name}" for name in
    ("fft", "ifft", "fft2", "ifft2", "fftn", "ifftn", "rfft", "irfft",
     "rfftn", "irfftn"))

#: Matmul-family calls checked on hot paths only.
_SEAM_MATMUL = ("matmul", "dot", "einsum")


@rule(
    "seam-bypass",
    "hot numerics (np.linalg.eigh/inv, np.fft transforms, matmul on hot "
    "paths) must go through the repro.kernels Backend seam so alternative "
    "backends (REPRO_BACKEND=torch) cover them")
def check_seam_bypass(context: FileContext) -> Iterator[Violation]:
    if _in_file(context, _SEAM_MODULE):
        return
    aliases = numpy_aliases(context.tree)
    hot_path = _in_file(context, *_HOT_PATH_MODULES)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            matched = _is_numpy_call(name, aliases, _SEAM_LINALG)
            if matched is not None:
                yield context.violation(
                    "seam-bypass", node,
                    f"direct {name}() bypasses the repro.kernels Backend "
                    f"seam; route through get_backend().{matched.split('.')[-1]}()"
                    " so REPRO_BACKEND covers this path")
                continue
            matched = _is_numpy_call(name, aliases, _SEAM_FFT)
            if matched is not None:
                yield context.violation(
                    "seam-bypass", node,
                    f"direct {name}() bypasses the repro.kernels Backend "
                    "seam; use the backend FFT kernels (or document the "
                    "exception) so accelerator backends cover this transform")
                continue
            if hot_path and _is_numpy_call(name, aliases, _SEAM_MATMUL):
                yield context.violation(
                    "seam-bypass", node,
                    f"{name}() on a hot-path module must go through the "
                    "Backend seam (backend.matmul) or carry a documented "
                    "exception")
        elif hot_path and isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult):
            yield context.violation(
                "seam-bypass", node,
                "the @ operator on a hot-path module must go through the "
                "Backend seam (backend.matmul) or carry a documented "
                "exception")


# ------------------------------------------------------------ rng-discipline
#: The module that owns generator construction and seed derivation.
_RNG_MODULE = "repro/utils/rng.py"

#: Legacy ``np.random`` global-state API — never allowed: global state breaks
#: the per-shard substream layout every bit-identity suite pins.
_LEGACY_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "poisson", "exponential", "beta", "binomial",
    "bytes", "get_state", "set_state", "RandomState",
})

#: Generator constructors that must stay inside ``repro.utils.rng``.
_RNG_CONSTRUCTORS = ("random.default_rng", "random.SeedSequence")


def _is_spawn_bound(node: ast.AST) -> bool:
    """True for the ``2**31 - 1`` / ``2**63 - 1`` spawn-derivation bounds."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)):
        return False
    left, right = node.left, node.right
    if not (isinstance(right, ast.Constant) and right.value == 1):
        return False
    if not (isinstance(left, ast.BinOp) and isinstance(left.op, ast.Pow)):
        return False
    base, exponent = left.left, left.right
    return (isinstance(base, ast.Constant) and base.value == 2
            and isinstance(exponent, ast.Constant)
            and exponent.value in (31, 63))


@rule(
    "rng-discipline",
    "no legacy np.random global-state API anywhere; generator construction "
    "and seed derivation only via repro.utils.rng (ensure_rng / spawn_rng / "
    "derive_seed / skip_spawns), so shard seeds stay a pure function of the "
    "spec")
def check_rng_discipline(context: FileContext) -> Iterator[Violation]:
    aliases = numpy_aliases(context.tree)
    in_rng_module = _in_file(context, _RNG_MODULE)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name is None or "." not in name:
                continue
            head, _, tail = name.partition(".")
            if head in aliases and tail.startswith("random."):
                member = tail.partition(".")[2]
                if member in _LEGACY_RANDOM:
                    yield context.violation(
                        "rng-discipline", node,
                        f"legacy global-state API {name} is forbidden; use a "
                        "seeded np.random.Generator via repro.utils.rng")
                    continue
            if (not in_rng_module
                    and _is_numpy_call(name, aliases, _RNG_CONSTRUCTORS)):
                yield context.violation(
                    "rng-discipline", node,
                    f"{name} outside repro.utils.rng; construct generators "
                    "via ensure_rng/spawn_rng and derive seeds via "
                    "derive_seed so substream layouts stay canonical")
        elif (isinstance(node, ast.Call) and not in_rng_module
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "integers"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
                and _is_spawn_bound(node.args[1])):
            yield context.violation(
                "rng-discipline", node,
                "hand-rolled spawn-seed derivation (.integers(0, 2**N - 1)); "
                "use repro.utils.rng.derive_seed / spawn_rng / skip_spawns "
                "so the draw count stays part of the documented stream "
                "layout")


# ------------------------------------------------------ precision-discipline
#: Helper names whose import marks a module as precision-parameterised.
_PRECISION_HELPERS = frozenset({"real_dtype", "complex_dtype",
                                "validate_precision"})

#: Hard-precision dtype attributes forbidden in precision-threaded modules.
_FIXED_DTYPES = ("complex128", "float64")


def _is_precision_threaded(tree: ast.Module) -> bool:
    """Does this module thread a ``precision=`` knob (param, field, helper)?"""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            if any(arg.arg == "precision"
                   for arg in (arguments.args + arguments.kwonlyargs
                               + arguments.posonlyargs)):
                return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "precision":
                return True
        elif (isinstance(node, ast.ImportFrom) and node.module
                and node.module.startswith("repro.kernels")
                and any(item.name in _PRECISION_HELPERS for item in node.names)):
            return True
    return False


@rule(
    "precision-discipline",
    "modules threaded with a precision= knob must not hard-code "
    "complex128/float64 dtypes; use repro.kernels.complex_dtype/real_dtype "
    "(or document why a value is pinned to full precision)")
def check_precision_discipline(context: FileContext) -> Iterator[Violation]:
    if _in_file(context, _SEAM_MODULE):
        return  # the seam module defines the precision helpers themselves
    if not _is_precision_threaded(context.tree):
        return
    aliases = numpy_aliases(context.tree)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if _is_numpy_call(name, aliases, _FIXED_DTYPES):
                yield context.violation(
                    "precision-discipline", node,
                    f"hard-coded {name} in a precision-parameterised module; "
                    "derive the dtype from the precision knob "
                    "(repro.kernels.real_dtype/complex_dtype) or document "
                    "why this value is pinned")
        elif (isinstance(node, ast.keyword) and node.arg == "dtype"
                and isinstance(node.value, ast.Constant)
                and node.value.value in _FIXED_DTYPES):
            yield context.violation(
                "precision-discipline", node.value,
                f"hard-coded dtype={node.value.value!r} in a "
                "precision-parameterised module; derive it from the "
                "precision knob or document why it is pinned")


# ---------------------------------------------------------------- atomic-write
#: Packages whose on-disk artifacts other processes watch: campaign stores
#: are shared across workers that may die mid-write, and the serve announce
#: file is polled by clients racing the server's startup.
_ATOMIC_PACKAGES = ("repro/campaign/", "repro/serve/")

_WRITE_METHODS = ("write_text", "write_bytes")


def _write_mode(call: ast.Call) -> Optional[str]:
    """The constant write mode of an ``open()`` call, if any."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if (isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)
            and ("w" in mode_node.value or "x" in mode_node.value)):
        return mode_node.value
    return None


def _function_calls_os_replace(function: ast.AST) -> bool:
    return any(isinstance(node, ast.Call)
               and dotted_name(node.func) in ("os.replace", "os.rename")
               for node in ast.walk(function))


@rule(
    "atomic-write",
    "campaign-store and serve files must be written with the tmp + "
    "os.replace idiom (ResultStore._write_atomic); a bare open(path, 'w') "
    "or write_text can leave a torn record behind a crashed worker or a "
    "torn announce document under a polling client")
def check_atomic_write(context: FileContext) -> Iterator[Violation]:
    path = context.relpath.replace("\\", "/")
    if not any(package in path for package in _ATOMIC_PACKAGES):
        return
    # Walk functions so a write inside the tmp+os.replace idiom itself
    # (the function also calls os.replace) is recognised as the idiom.
    functions = [node for node in ast.walk(context.tree)
                 if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    atomic_functions = {id(fn) for fn in functions
                        if _function_calls_os_replace(fn)}
    owner: Dict[int, Optional[ast.AST]] = {}
    # ast.walk yields outer functions before nested ones, so plain
    # assignment leaves each node owned by its *innermost* function.
    for function in functions:
        for node in ast.walk(function):
            owner[id(node)] = function
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        enclosing = owner.get(id(node))
        if enclosing is not None and id(enclosing) in atomic_functions:
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = _write_mode(node)
            if mode is not None:
                yield context.violation(
                    "atomic-write", node,
                    f"bare open(..., {mode!r}) in a watched package; use "
                    "the tmp + os.replace idiom (ResultStore._write_atomic) "
                    "or document why a torn file is harmless")
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS):
            yield context.violation(
                "atomic-write", node,
                f".{node.func.attr}() in a watched package; use the tmp + "
                "os.replace idiom (ResultStore._write_atomic) or document "
                "why a torn file is harmless")


# -------------------------------------------------------------- async-blocking
#: Package whose async functions run on the service event loop.
_SERVE_PACKAGE = "repro/serve/"

#: Synchronous calls that stall an event loop (use the asyncio counterpart,
#: or hoist the work into a sync helper invoked off-loop / per micro-batch).
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "urllib.request.urlopen",
})

#: Blocking file-I/O method names (Path.read_text and friends).
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


@rule(
    "async-blocking",
    "async functions in repro.serve run on the shared event loop and must "
    "not call blocking I/O (time.sleep, open, Path read/write methods, "
    "subprocess); use the asyncio counterpart or a sync helper run "
    "off-loop")
def check_async_blocking(context: FileContext) -> Iterator[Violation]:
    path = context.relpath.replace("\\", "/")
    if _SERVE_PACKAGE not in path:
        return
    functions = [node for node in ast.walk(context.tree)
                 if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    owner: Dict[int, ast.AST] = {}
    # Outer functions are walked first, so plain assignment leaves each node
    # owned by its *innermost* function — a sync def nested inside an async
    # def is therefore (correctly) not treated as loop-resident code.
    for function in functions:
        for node in ast.walk(function):
            owner[id(node)] = function
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(owner.get(id(node)), ast.AsyncFunctionDef):
            continue
        name = dotted_name(node.func)
        if name in _BLOCKING_CALLS:
            yield context.violation(
                "async-blocking", node,
                f"{name}() blocks the event loop; every tenant and "
                "connection shares it — use the asyncio counterpart "
                "(e.g. await asyncio.sleep) or run the work off-loop")
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            yield context.violation(
                "async-blocking", node,
                "open() inside an async function blocks the event loop; "
                "do file I/O in a sync helper outside the coroutine (the "
                "announce writer pattern) or via run_in_executor")
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS):
            yield context.violation(
                "async-blocking", node,
                f".{node.func.attr}() inside an async function blocks the "
                "event loop; do file I/O in a sync helper outside the "
                "coroutine or via run_in_executor")


# ------------------------------------------------------ frozen-config-mutation
def _is_frozen_dataclass(classdef: ast.ClassDef) -> bool:
    for decorator in classdef.decorator_list:
        if (isinstance(decorator, ast.Call)
                and dotted_name(decorator.func)
                in ("dataclass", "dataclasses.dataclass")
                and any(keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                        for keyword in decorator.keywords)):
            return True
    return False


def _frozen_config_names(tree: ast.Module) -> Set[str]:
    """Frozen dataclasses defined here, plus repro Config/Spec imports.

    The project convention (pinned by the serde round-trip suites) is that
    every ``*Config`` / ``*Spec`` dataclass in repro is frozen, so imported
    names matching that shape are treated as frozen too.
    """
    names = {node.name for node in ast.walk(tree)
             if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)}
    for node in ast.walk(tree):
        if (isinstance(node, ast.ImportFrom) and node.module
                and (node.module == "repro"
                     or node.module.startswith("repro."))):
            for item in node.names:
                if item.name.endswith(("Config", "Spec")):
                    names.add(item.asname or item.name)
    return names


@rule(
    "frozen-config-mutation",
    "frozen config dataclasses are immutable outside their own class body: "
    "no object.__setattr__ escape hatches in free functions and no "
    "attribute assignment on config instances (compiled shards must see "
    "exactly the spec that was hashed)")
def check_frozen_config_mutation(context: FileContext) -> Iterator[Violation]:
    frozen_classes = [node for node in ast.walk(context.tree)
                      if isinstance(node, ast.ClassDef)
                      and _is_frozen_dataclass(node)]
    inside_frozen: Set[int] = set()
    for classdef in frozen_classes:
        for node in ast.walk(classdef):
            inside_frozen.add(id(node))
    for node in ast.walk(context.tree):
        if (isinstance(node, ast.Call) and id(node) not in inside_frozen
                and dotted_name(node.func) == "object.__setattr__"):
            yield context.violation(
                "frozen-config-mutation", node,
                "object.__setattr__ outside a frozen dataclass body "
                "defeats the immutability the config hash relies on; "
                "canonicalise in __post_init__ or dataclasses.replace()")

    config_names = _frozen_config_names(context.tree)
    if not config_names:
        return
    for function in ast.walk(context.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        instances: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func)
                if callee in config_names:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            instances.add(target.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in instances):
                        yield context.violation(
                            "frozen-config-mutation", target,
                            f"attribute assignment on frozen config instance "
                            f"{target.value.id!r} (raises FrozenInstanceError "
                            "at runtime); build a new instance with "
                            "dataclasses.replace()")


# ---------------------------------------------------- registry-completeness
#: registry variable -> (conformance test file, checking mode).  ``literal``
#: requires every registered name to appear as a string literal in the
#: conformance file (the tiny-grid table); ``auto-or-literal`` also accepts
#: the file iterating the registry itself (``REG.names()`` / ``REG.items()``),
#: which covers every registration by construction.
_REGISTRY_CONFORMANCE: Dict[str, Tuple[str, str]] = {
    "CAMPAIGNS": ("tests/test_campaign_conformance.py", "literal"),
    "AOA_METHODS": ("tests/test_api_registries.py", "auto-or-literal"),
}


def _registrations(project: ProjectContext,
                   registry: str) -> List[Tuple[FileContext, ast.Call, str]]:
    found = []
    for context in project.files:
        for node in ast.walk(context.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == registry
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                found.append((context, node, node.args[0].value))
    return found


def _conformance_facts(project: ProjectContext, filename: str,
                       registry: str) -> Optional[Tuple[Set[str], bool]]:
    """(string literals, iterates-registry) for a conformance test file."""
    if project.tests_dir is None:
        return None
    path = project.tests_dir.parent / filename
    if not path.is_file():
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    literals: Set[str] = set()
    iterates = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            literals.add(node.value)
        elif (isinstance(node, ast.Attribute)
                and node.attr in ("names", "items")
                and isinstance(node.value, ast.Name)
                and node.value.id == registry):
            iterates = True
    return literals, iterates


@rule(
    "registry-completeness",
    "every CAMPAIGNS / AOA_METHODS registration must be reachable by its "
    "conformance suite (tiny-grid entry or auto-discovering iteration), so "
    "a new adapter cannot ship without serial bit-identity coverage",
    scope="project")
def check_registry_completeness(project: ProjectContext) -> Iterator[Violation]:
    for registry, (filename, mode) in sorted(_REGISTRY_CONFORMANCE.items()):
        registrations = _registrations(project, registry)
        if not registrations:
            continue
        facts = _conformance_facts(project, filename, registry)
        if facts is None:
            continue  # no tests tree alongside the linted sources
        literals, iterates = facts
        if mode == "auto-or-literal" and iterates:
            continue
        for context, node, name in registrations:
            if name not in literals:
                yield context.violation(
                    "registry-completeness", node,
                    f"{registry}.register({name!r}) has no entry in "
                    f"{filename}; add the tiny-grid / conformance entry so "
                    "the serial bit-identity suite covers it")
