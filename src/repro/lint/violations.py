"""Violation records and the parsed-file contexts rules run against."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["FileContext", "ProjectContext", "Violation", "parse_pragmas"]

#: ``# repro-lint: disable=rule-a,rule-b`` (or ``disable=all``) on the
#: offending physical line suppresses those rules for that line.
_PRAGMA_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule hit: where it is, which rule fired, and why it matters."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """The human one-liner (``path:line:col: rule: message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """The ``--json`` form of this violation."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


def parse_pragmas(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names disabled on that line."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_PATTERN.search(text)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip())
        if names:
            pragmas[number] = names
    return pragmas


@dataclass
class FileContext:
    """One parsed source file, as a per-file rule sees it."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Line -> rule names disabled by a ``repro-lint: disable=`` pragma.
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(rule=rule, path=self.relpath,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0), message=message)

    def suppressed(self, rule: str, line: int) -> bool:
        """True when a pragma on ``line`` disables ``rule`` (or ``all``)."""
        disabled = self.pragmas.get(line)
        return disabled is not None and (rule in disabled or "all" in disabled)


@dataclass
class ProjectContext:
    """Everything a cross-file rule needs: all parsed files plus the layout."""

    root: Path
    files: Tuple[FileContext, ...]
    #: The repo's ``tests/`` directory, when it exists (conformance suites).
    tests_dir: Optional[Path] = None

    def find(self, relpath_suffix: str) -> Optional[FileContext]:
        """The analysed file whose relpath ends with ``relpath_suffix``."""
        for context in self.files:
            if context.relpath.endswith(relpath_suffix):
                return context
        return None
