"""CLI for the project linter: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import ALLOWLIST_FILENAME, lint_paths, load_allowlist
from repro.lint.rules import RULES, all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("Project-specific static analysis: bit-identity, RNG, "
                     "seam, and precision invariants."))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--root", default=None,
        help="repo root anchoring relative paths, the tests/ directory, and "
             f"the default allowlist (default: cwd)")
    parser.add_argument(
        "--allowlist", default=None,
        help="allowlist JSON file of documented exceptions "
             f"(default: <root>/{ALLOWLIST_FILENAME} when present)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report on stdout")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.name} [{rule.scope}]\n    {rule.description}")
        return 0

    root = Path(options.root) if options.root else Path.cwd()
    rules = None
    if options.rule:
        unknown = [name for name in options.rule if name not in RULES]
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}; "
                         f"known: {', '.join(sorted(RULES))}")
        rules = [RULES[name] for name in options.rule]

    allowlist = None
    if options.allowlist:
        try:
            allowlist = load_allowlist(Path(options.allowlist))
        except (OSError, ValueError) as error:
            parser.error(str(error))

    paths: List[Path] = [Path(path) for path in options.paths]
    try:
        report = lint_paths(paths, root=root, allowlist=allowlist, rules=rules)
    except FileNotFoundError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit

    if options.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return report.exit_code

    for violation in report.violations:
        print(violation.format())
    suppressed = report.suppressed_by_pragma + report.suppressed_by_allowlist
    summary = (f"repro.lint: {len(report.violations)} violation(s) in "
               f"{report.files_checked} file(s)")
    if suppressed:
        summary += (f" ({report.suppressed_by_pragma} pragma-suppressed, "
                    f"{report.suppressed_by_allowlist} allowlisted)")
    print(summary)
    for entry in report.unused_allowlist:
        print(f"note: unused allowlist entry {entry.rule} @ {entry.path} "
              f"({entry.reason}) — delete it")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
