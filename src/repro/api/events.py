"""The versioned packet-event schema — the public API's v1 wire contract.

Everything a deployment emits per packet is one :class:`PacketEvent`.  Until
the streaming service existed the event only ever lived in-process, so its
shape was whatever :mod:`repro.api.deployment` happened to build.  Serving
events to network clients forces a real contract, so v1 pins one:

* **Versioned** — every event carries ``schema_version`` (currently
  :data:`EVENT_SCHEMA_VERSION`); decoding a document from a newer schema
  fails loudly instead of misreading fields.
* **JSON-round-trippable** — :class:`PacketEvent` is serde-based
  (:class:`~repro.utils.serde.JsonSerializable`): ``to_dict``/``to_json``
  lower every nested dataclass and enum to JSON primitives, and
  ``from_dict``/``from_json`` rebuild the full typed tree (decision,
  spoofing/fence verdicts, triangulated location).
* **Unambiguous latency** — the v0 ``latency_s`` field meant *this packet's
  own analysis time* under :meth:`Deployment.run` but *the batch mean* under
  :meth:`Deployment.run_batch`.  v1 resolves the ambiguity into two explicit
  fields: :attr:`PacketEvent.packet_latency_s` (individually measured;
  ``None`` when the packet was decided inside a batch) and
  :attr:`PacketEvent.batch_latency_s` (the mean per-packet share of the
  enclosing batch's wall-clock; ``None`` when streamed alone).  Exactly one
  is set by the deployment paths.  The old spelling survives as the
  deprecated :attr:`PacketEvent.latency_s` property so v0 callers keep
  working; new code wanting "the attributed latency whichever path ran"
  reads :attr:`PacketEvent.decision_latency_s`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.fence import FenceCheck
from repro.core.localization import LocationEstimate
from repro.core.policy import PacketDecision
from repro.hardware.capture import Capture
from repro.mac.address import MacAddress
from repro.mac.frames import Dot11Frame
from repro.utils.serde import JsonSerializable

__all__ = ["EVENT_SCHEMA_VERSION", "Packet", "PacketEvent"]

#: The current event schema version.  Bump when a field changes meaning or
#: shape; decoding a document with any other version raises ``ValueError``.
EVENT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Packet:
    """One over-the-air packet: the claimed frame plus per-AP captures."""

    frame: Dot11Frame
    #: AP name -> that AP's capture of this packet.
    captures: Mapping[str, Capture]
    timestamp_s: float = 0.0
    #: Free-form annotations (client id, ground-truth position, ...).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.captures:
            raise ValueError("a packet needs at least one capture")


@dataclass(frozen=True)
class PacketEvent(JsonSerializable):
    """The structured outcome of processing one packet (schema v1)."""

    index: int
    timestamp_s: float
    source: MacAddress
    #: The combined accept/drop/flag decision with its evidence.
    decision: PacketDecision
    #: Global-frame bearing per AP (local broadside angle for linear arrays).
    bearings_deg: Dict[str, float]
    #: Triangulated position (``None`` with fewer than two unambiguous APs).
    location: Optional[LocationEstimate]
    #: Virtual-fence outcome (``None`` when no fence applies).
    fence: Optional[FenceCheck]
    #: Wall-clock analysis time measured for THIS packet alone.  Set by the
    #: streaming path (``mode="stream"`` / :meth:`Deployment.run`); ``None``
    #: when the packet was decided inside a batch, where per-packet time is
    #: not individually measurable.
    packet_latency_s: Optional[float] = None
    #: Mean per-packet share of the enclosing batch's wall-clock (total batch
    #: time divided by batch size).  Set by the batched path
    #: (``mode="batch"`` / :meth:`Deployment.run_batch`); ``None`` when the
    #: packet was streamed alone.
    batch_latency_s: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Event schema version; see :data:`EVENT_SCHEMA_VERSION`.
    schema_version: int = EVENT_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported PacketEvent schema_version "
                f"{self.schema_version!r}; this build speaks version "
                f"{EVENT_SCHEMA_VERSION}")

    @property
    def accepted(self) -> bool:
        """True when the frame was delivered to the network."""
        return self.decision.accepted

    @property
    def verdict(self) -> str:
        """The decision verdict as a string (``accept``/``drop``/``flag``)."""
        return self.decision.verdict.value

    @property
    def decision_latency_s(self) -> float:
        """The attributed per-packet latency, whichever path decided it.

        ``packet_latency_s`` when individually measured, else
        ``batch_latency_s``; either way ``1 / mean(decision_latency_s)`` is
        the pipeline's packets-per-second throughput for the run.
        """
        if self.packet_latency_s is not None:
            return self.packet_latency_s
        return 0.0 if self.batch_latency_s is None else self.batch_latency_s

    @property
    def latency_s(self) -> float:
        """Deprecated v0 spelling of :attr:`decision_latency_s`.

        The v0 field silently switched meaning between the streaming and
        batched paths; read :attr:`packet_latency_s` /
        :attr:`batch_latency_s` explicitly, or :attr:`decision_latency_s`
        for the old attributed value.
        """
        warnings.warn(
            "PacketEvent.latency_s is deprecated: its meaning depended on "
            "the run path (per-packet in run(), batch mean in run_batch()). "
            "Use packet_latency_s / batch_latency_s, or decision_latency_s "
            "for the attributed value.",
            DeprecationWarning, stacklevel=2)
        return self.decision_latency_s
