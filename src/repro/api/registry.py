"""String-keyed component registries.

Scenario specs refer to components — AoA methods, array geometries, attack
types, environments — by *name* instead of importing classes, so a deployment
can be described entirely in JSON.  A :class:`Registry` is a small named
mapping with alias support and did-you-mean errors: ``get("musik")`` fails
with a message pointing at ``"music"`` rather than a bare ``KeyError``.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterable, List, Optional, Tuple, TypeVar, Union

T = TypeVar("T")


class Registry(Generic[T]):
    """A named string-to-component mapping with aliases and fuzzy errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}
        self._aliases: Dict[str, str] = {}

    # ---------------------------------------------------------------- writing
    def register(self, name: str, value: Optional[T] = None,
                 aliases: Iterable[str] = ()) -> Union[T, Callable[[T], T]]:
        """Register ``value`` under ``name`` (plus ``aliases``).

        With ``value`` supplied, it is registered and returned.  With
        ``value`` omitted this returns a decorator, so components can be
        registered at their definition site.
        """
        if not isinstance(name, str) or not name.strip():
            raise TypeError(f"registry names must be non-empty strings, got {name!r}")
        name = self._normalise(name)

        def _add(entry: T) -> T:
            # Validate the name and every alias before touching the maps, so a
            # conflicting alias cannot leave the registry half-mutated.
            normalised_aliases = [self._normalise(alias) for alias in aliases]
            for key in [name] + normalised_aliases:
                if key in self._entries or key in self._aliases:
                    raise ValueError(f"{self.kind} {key!r} is already registered")
            if len(set([name] + normalised_aliases)) != 1 + len(normalised_aliases):
                raise ValueError(f"{self.kind} {name!r}: duplicate aliases")
            self._entries[name] = entry
            for alias in normalised_aliases:
                self._aliases[alias] = name
            return entry

        if value is None:
            return _add
        return _add(value)

    # ---------------------------------------------------------------- reading
    def canonical(self, name: str) -> str:
        """The canonical registered name for ``name`` (resolving aliases).

        Any string that is not registered — the empty string included —
        misses with the documented did-you-mean ``KeyError``; only non-string
        names are a ``TypeError``.
        """
        if not isinstance(name, str):
            raise TypeError(f"registry names must be strings, got {name!r}")
        key = self._normalise(name)
        if key in self._entries:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise KeyError(self._unknown_message(name))

    def get(self, name: str) -> T:
        """Look up a component, raising a did-you-mean ``KeyError`` on miss."""
        return self._entries[self.canonical(name)]

    def names(self) -> List[str]:
        """Sorted canonical names."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """Sorted (name, component) pairs."""
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = self._normalise(name)
        return key in self._entries or key in self._aliases

    # --------------------------------------------------------------- dunders

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"

    # --------------------------------------------------------------- internal
    @staticmethod
    def _normalise(name: str) -> str:
        return name.strip().lower().replace("-", "_").replace(" ", "_")

    def _unknown_message(self, name: str) -> str:
        known = sorted(set(self._entries) | set(self._aliases))
        close = difflib.get_close_matches(self._normalise(name), known, n=3, cutoff=0.5)
        message = f"unknown {self.kind} {name!r}"
        if close:
            message += "; did you mean " + " or ".join(repr(match) for match in close) + "?"
        else:
            message += f"; known {self.kind}s: " + ", ".join(sorted(self._entries))
        return message
