"""Preset scenario specs for the paper's experiments.

Every experiment runner used to hand-wire the same stacks; these builders
capture that wiring as data.  Each preserves the exact random-stream layout
of the original experiment code (which generator each simulator draws from),
so a preset-built deployment reproduces the legacy results bit-for-bit.

The zero-argument defaults are also registered in :data:`SCENARIOS`, so a
scenario can be picked by name from configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.aoa.estimator import EstimatorConfig
from repro.api.registry import Registry
from repro.api.spec import (
    AccessPointSpec,
    ArraySpec,
    AttackerSpec,
    FenceSpec,
    ScenarioSpec,
)

__all__ = [
    "SCENARIOS",
    "single_ap_scenario",
    "three_ap_scenario",
    "fence_scenario",
    "spoofing_scenario",
    "replay_scenario",
    "reflector_scenario",
    "swarm_scenario",
    "cfo_drift_scenario",
]

#: The three-AP layout of the fence/mobility/localisation experiments:
#: the Figure 4 AP plus two more spread across the office so bearing lines
#: intersect at healthy angles for transmitters on every side.
THREE_AP_LAYOUT = (
    ("ap-main", None),
    ("ap-east", (20.0, 11.0)),
    ("ap-south", (15.0, 2.5)),
)


def single_ap_scenario(geometry: str = "octagon",
                       estimator: Optional[EstimatorConfig] = None,
                       name: str = "single-ap",
                       ap_name: str = "ap-main",
                       num_elements: Optional[int] = None,
                       rng_stream: Optional[int] = None,
                       seed: int = 42) -> ScenarioSpec:
    """One AP at the environment's default position (Figures 5-7 wiring)."""
    return ScenarioSpec(
        name=name,
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=(AccessPointSpec(
            name=ap_name,
            array=ArraySpec(geometry=geometry, num_elements=num_elements),
            rng_stream=rng_stream,
        ),),
    )


def three_ap_scenario(estimator: Optional[EstimatorConfig] = None,
                      name: str = "three-ap",
                      fence: Optional[FenceSpec] = None,
                      seed: int = 42) -> ScenarioSpec:
    """Three circular-array APs across the office (localisation wiring)."""
    return ScenarioSpec(
        name=name,
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=tuple(
            AccessPointSpec(name=ap_name,
                            position=position,
                            array=ArraySpec(geometry="octagon"),
                            rng_stream=index)
            for index, (ap_name, position) in enumerate(THREE_AP_LAYOUT)
        ),
        fence=fence,
    )


def fence_scenario(estimator: Optional[EstimatorConfig] = None,
                   margin_m: float = 1.0,
                   seed: int = 42) -> ScenarioSpec:
    """The virtual-fence evaluation: three APs, a fence, and the strong
    (directional, outdoor) attacker of the threat model."""
    spec = three_ap_scenario(estimator=estimator, name="fence",
                             fence=FenceSpec(margin_m=margin_m), seed=seed)
    from dataclasses import replace

    return replace(spec, attackers=(
        AttackerSpec(type="directional", outdoor="street-east",
                     aim_ap="ap-main"),
    ))


def spoofing_scenario(estimator: Optional[EstimatorConfig] = None,
                      seed: int = 42) -> ScenarioSpec:
    """The spoofing evaluation: one circular AP plus the paper's four
    attacker configurations (Section 1's threat model)."""
    return ScenarioSpec(
        name="spoofing",
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=(AccessPointSpec(
            name="ap-main", array=ArraySpec(geometry="octagon"), rng_stream=1),),
        attackers=(
            AttackerSpec(type="omnidirectional", at_client=9,
                         name="omni-indoor"),
            AttackerSpec(type="omnidirectional", outdoor="street-east",
                         name="omni-outdoor"),
            AttackerSpec(type="directional", outdoor="street-east",
                         aim_ap="ap-main", name="directional-outdoor"),
            AttackerSpec(type="array", at_client=9,
                         aim_ap="ap-main", name="array-indoor"),
        ),
    )


def _attack_family_scenario(name: str,
                            attackers: tuple,
                            estimator: Optional[EstimatorConfig],
                            seed: int) -> ScenarioSpec:
    """Shared single-AP wiring of the extended attack-family evaluations.

    Identical stream layout to :func:`spoofing_scenario` (one octagonal AP on
    stream 1, attacker addresses from stream 4), so the attack-matrix
    experiment and its campaign shards share capture-skip arithmetic with the
    spoofing evaluation.
    """
    return ScenarioSpec(
        name=name,
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=(AccessPointSpec(
            name="ap-main", array=ArraySpec(geometry="octagon"), rng_stream=1),),
        attackers=attackers,
    )


def replay_scenario(estimator: Optional[EstimatorConfig] = None,
                    seed: int = 42) -> ScenarioSpec:
    """Replay attack: the victim's recorded waveform retransmitted from an
    indoor client position and from the street."""
    return _attack_family_scenario("replay", (
        AttackerSpec(type="replay", at_client=9, name="replay-indoor",
                     recording_snr_db=25.0),
        AttackerSpec(type="replay", outdoor="street-east", name="replay-outdoor",
                     recording_snr_db=15.0, playback_gain_db=6.0),
    ), estimator, seed)


def reflector_scenario(estimator: Optional[EstimatorConfig] = None,
                       seed: int = 42) -> ScenarioSpec:
    """Multipath-mirror spoofing: one reflector tuned at the victim's bearing
    (client 5 sits at 135 degrees from the AP), one auto-picking the strongest
    bounce from outside."""
    return _attack_family_scenario("reflector", (
        AttackerSpec(type="reflector", at_client=9, name="mirror-tuned",
                     mirror_bearing_deg=135.0, mirror_gain_db=15.0),
        AttackerSpec(type="reflector", outdoor="street-north",
                     name="mirror-auto"),
    ), estimator, seed)


def swarm_scenario(estimator: Optional[EstimatorConfig] = None,
                   seed: int = 42) -> ScenarioSpec:
    """Coordinated swarm: three indoor transmitters sharing one spoofed
    stream, and a two-member swarm in the parking lot."""
    return _attack_family_scenario("swarm", (
        AttackerSpec(type="swarm", at_client=9, name="swarm-trio",
                     member_offsets=((0.0, 0.0), (2.0, 0.5), (-1.5, 1.0))),
        AttackerSpec(type="swarm", outdoor="parking-lot", name="swarm-outdoor",
                     member_offsets=((0.0, 0.0), (3.0, 0.0))),
    ), estimator, seed)


def cfo_drift_scenario(estimator: Optional[EstimatorConfig] = None,
                       seed: int = 42) -> ScenarioSpec:
    """CFO drift: a slow indoor carrier walk and a fast outdoor one."""
    return _attack_family_scenario("cfo_drift", (
        AttackerSpec(type="cfo_drift", at_client=9, name="cfo-slow",
                     cfo_start_hz=200.0, cfo_drift_hz_per_s=40.0),
        AttackerSpec(type="cfo_drift", outdoor="street-east", name="cfo-fast",
                     cfo_start_hz=1000.0, cfo_drift_hz_per_s=400.0),
    ), estimator, seed)


SCENARIOS: Registry[object] = Registry("scenario")

SCENARIOS.register("figure5", lambda: single_ap_scenario(name="figure5"))
SCENARIOS.register("figure6", lambda: single_ap_scenario(
    geometry="linear", num_elements=8, name="figure6"))
SCENARIOS.register("figure7", lambda: single_ap_scenario(
    geometry="linear", num_elements=8, name="figure7"))
SCENARIOS.register("three_ap", three_ap_scenario, aliases=("mobility",))
SCENARIOS.register("fence", fence_scenario)
SCENARIOS.register("spoofing", spoofing_scenario)
SCENARIOS.register("replay", replay_scenario)
SCENARIOS.register("reflector", reflector_scenario, aliases=("multipath_mirror",))
SCENARIOS.register("swarm", swarm_scenario, aliases=("coordinated_swarm",))
SCENARIOS.register("cfo_drift", cfo_drift_scenario, aliases=("cfo",))
