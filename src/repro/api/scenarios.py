"""Preset scenario specs for the paper's experiments.

Every experiment runner used to hand-wire the same stacks; these builders
capture that wiring as data.  Each preserves the exact random-stream layout
of the original experiment code (which generator each simulator draws from),
so a preset-built deployment reproduces the legacy results bit-for-bit.

The zero-argument defaults are also registered in :data:`SCENARIOS`, so a
scenario can be picked by name from configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.aoa.estimator import EstimatorConfig
from repro.api.registry import Registry
from repro.api.spec import (
    AccessPointSpec,
    ArraySpec,
    AttackerSpec,
    FenceSpec,
    ScenarioSpec,
)

__all__ = [
    "SCENARIOS",
    "single_ap_scenario",
    "three_ap_scenario",
    "fence_scenario",
    "spoofing_scenario",
]

#: The three-AP layout of the fence/mobility/localisation experiments:
#: the Figure 4 AP plus two more spread across the office so bearing lines
#: intersect at healthy angles for transmitters on every side.
THREE_AP_LAYOUT = (
    ("ap-main", None),
    ("ap-east", (20.0, 11.0)),
    ("ap-south", (15.0, 2.5)),
)


def single_ap_scenario(geometry: str = "octagon",
                       estimator: Optional[EstimatorConfig] = None,
                       name: str = "single-ap",
                       ap_name: str = "ap-main",
                       num_elements: Optional[int] = None,
                       rng_stream: Optional[int] = None,
                       seed: int = 42) -> ScenarioSpec:
    """One AP at the environment's default position (Figures 5-7 wiring)."""
    return ScenarioSpec(
        name=name,
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=(AccessPointSpec(
            name=ap_name,
            array=ArraySpec(geometry=geometry, num_elements=num_elements),
            rng_stream=rng_stream,
        ),),
    )


def three_ap_scenario(estimator: Optional[EstimatorConfig] = None,
                      name: str = "three-ap",
                      fence: Optional[FenceSpec] = None,
                      seed: int = 42) -> ScenarioSpec:
    """Three circular-array APs across the office (localisation wiring)."""
    return ScenarioSpec(
        name=name,
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=tuple(
            AccessPointSpec(name=ap_name,
                            position=position,
                            array=ArraySpec(geometry="octagon"),
                            rng_stream=index)
            for index, (ap_name, position) in enumerate(THREE_AP_LAYOUT)
        ),
        fence=fence,
    )


def fence_scenario(estimator: Optional[EstimatorConfig] = None,
                   margin_m: float = 1.0,
                   seed: int = 42) -> ScenarioSpec:
    """The virtual-fence evaluation: three APs, a fence, and the strong
    (directional, outdoor) attacker of the threat model."""
    spec = three_ap_scenario(estimator=estimator, name="fence",
                             fence=FenceSpec(margin_m=margin_m), seed=seed)
    from dataclasses import replace

    return replace(spec, attackers=(
        AttackerSpec(type="directional", outdoor="street-east",
                     aim_ap="ap-main"),
    ))


def spoofing_scenario(estimator: Optional[EstimatorConfig] = None,
                      seed: int = 42) -> ScenarioSpec:
    """The spoofing evaluation: one circular AP plus the paper's four
    attacker configurations (Section 1's threat model)."""
    return ScenarioSpec(
        name="spoofing",
        seed=seed,
        estimator=estimator if estimator is not None else EstimatorConfig(),
        access_points=(AccessPointSpec(
            name="ap-main", array=ArraySpec(geometry="octagon"), rng_stream=1),),
        attackers=(
            AttackerSpec(type="omnidirectional", at_client=9,
                         name="omni-indoor"),
            AttackerSpec(type="omnidirectional", outdoor="street-east",
                         name="omni-outdoor"),
            AttackerSpec(type="directional", outdoor="street-east",
                         aim_ap="ap-main", name="directional-outdoor"),
            AttackerSpec(type="array", at_client=9,
                         aim_ap="ap-main", name="array-indoor"),
        ),
    )


SCENARIOS: Registry[object] = Registry("scenario")

SCENARIOS.register("figure5", lambda: single_ap_scenario(name="figure5"))
SCENARIOS.register("figure6", lambda: single_ap_scenario(
    geometry="linear", num_elements=8, name="figure6"))
SCENARIOS.register("figure7", lambda: single_ap_scenario(
    geometry="linear", num_elements=8, name="figure7"))
SCENARIOS.register("three_ap", three_ap_scenario, aliases=("mobility",))
SCENARIOS.register("fence", fence_scenario)
SCENARIOS.register("spoofing", spoofing_scenario)
