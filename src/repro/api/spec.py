"""The declarative scenario specification.

A :class:`ScenarioSpec` describes a whole SecureAngle deployment — the
environment, the access points (position, orientation, array geometry), the
estimator and policy configuration, the clients, the attackers, and the
virtual fence — as one dataclass tree of plain values and registry names.
Every spec serialises losslessly to a dictionary or JSON document and back
(``to_dict``/``from_dict``/``to_json``/``from_json``), so experiments and
sweeps can be driven from configuration files instead of bespoke wiring code.

Compiling a spec into live objects is the job of
:class:`repro.api.deployment.Deployment`; building the individual components
(arrays, attackers) lives here next to their validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.aoa.estimator import EstimatorConfig
from repro.api.components import ARRAY_GEOMETRIES, ATTACK_TYPES, ENVIRONMENTS
from repro.arrays.geometry import AntennaArray
from repro.attacks.attacker import Attacker, DirectionalAntennaAttacker
from repro.core.access_point import AccessPointConfig
from repro.core.spoofing import SpoofingDetectorConfig
from repro.core.tracker import TrackerConfig
from repro.geometry.point import Point
from repro.mac.address import MacAddress
from repro.testbed.environment import TestbedEnvironment
from repro.testbed.scenario import SimulatorConfig
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.serde import JsonSerializable

__all__ = [
    "AccessPointSpec",
    "ArraySpec",
    "AttackerSpec",
    "FenceSpec",
    "PolicySpec",
    "ScenarioSpec",
]


def _coerce_xy(spec: object, field_name: str) -> None:
    """Normalise an optional (x, y) field to a finite float tuple (frozen-safe).

    Specs are naturally built with lists (JSON, hand-written configs); the
    canonical tuple form keeps the documented round-trip equality and the
    dataclasses hashable.  Non-finite coordinates are rejected here — found
    by the scenario fuzzer: a NaN position used to sail through construction
    and only surface as NaN captures deep inside synthesis.
    """
    value = getattr(spec, field_name)
    if value is None:
        return
    coerced = tuple(float(coordinate) for coordinate in value)
    if len(coerced) != 2:
        raise ValueError(f"{field_name} must be an (x, y) pair, got {value!r}")
    if not all(math.isfinite(coordinate) for coordinate in coerced):
        raise ValueError(f"{field_name} must be finite, got {value!r}")
    # Shared canonicalisation helper invoked only from the frozen specs' own
    # __post_init__ methods — construction-time, never post-hoc mutation.
    object.__setattr__(spec, field_name, coerced)  # repro-lint: disable=frozen-config-mutation


def _require_positive_finite(value: Optional[float], name: str) -> None:
    """Reject non-positive or non-finite optional numeric spec knobs."""
    if value is None:
        return
    if not (math.isfinite(value) and value > 0):
        raise ValueError(f"{name} must be positive and finite, got {value!r}")


@dataclass(frozen=True)
class ArraySpec(JsonSerializable):
    """An antenna arrangement, by registry name plus geometry knobs.

    Only the knobs that apply to the chosen geometry may be set: ``spacing_m``
    for linear arrays, ``radius_m`` for circular ones, ``side_length_m`` for
    the octagon, ``element_positions`` for arbitrary layouts.
    """

    geometry: str = "octagon"
    num_elements: Optional[int] = None
    spacing_m: Optional[float] = None
    radius_m: Optional[float] = None
    side_length_m: Optional[float] = None
    element_positions: Optional[Tuple[Tuple[float, float], ...]] = None
    carrier_frequency_hz: Optional[float] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        ARRAY_GEOMETRIES.canonical(self.geometry)  # raises with did-you-mean
        # Found by the scenario fuzzer: zero/negative element counts and
        # non-positive geometry knobs used to pass spec construction and only
        # fail (or, worse, degenerate) inside the array factories at build.
        if self.num_elements is not None and self.num_elements < 2:
            raise ValueError(
                f"num_elements must be at least 2, got {self.num_elements!r}")
        _require_positive_finite(self.spacing_m, "spacing_m")
        _require_positive_finite(self.radius_m, "radius_m")
        _require_positive_finite(self.side_length_m, "side_length_m")
        _require_positive_finite(self.carrier_frequency_hz, "carrier_frequency_hz")
        if self.element_positions is not None:
            coerced = tuple(
                tuple(float(coordinate) for coordinate in position)
                for position in self.element_positions)
            for position in coerced:
                if len(position) != 2 or not all(
                        math.isfinite(coordinate) for coordinate in position):
                    raise ValueError(
                        "element_positions must be finite (x, y) pairs, "
                        f"got {position!r}")
            if len(coerced) < 2:
                raise ValueError(
                    "element_positions needs at least 2 elements, "
                    f"got {len(coerced)}")
            object.__setattr__(self, "element_positions", coerced)

    def build(self) -> AntennaArray:
        """Instantiate the antenna array this spec describes."""
        factory = ARRAY_GEOMETRIES.get(self.geometry)
        kwargs = {
            key: getattr(self, key)
            for key in ("num_elements", "spacing_m", "radius_m", "side_length_m",
                        "element_positions", "carrier_frequency_hz", "name")
            if getattr(self, key) is not None
        }
        try:
            return factory(**kwargs)
        except TypeError as exc:
            raise ValueError(
                f"array geometry {self.geometry!r} rejected {sorted(kwargs)}: {exc}"
            ) from None


@dataclass(frozen=True)
class AccessPointSpec(JsonSerializable):
    """One SecureAngle access point.

    ``position`` of ``None`` places the AP at the environment's default AP
    position.  ``estimator`` of ``None`` inherits the scenario-wide estimator
    configuration.  The simulator randomness is derived from the scenario
    seed: ``seed`` pins an independent generator, ``rng_stream`` spawns a
    numbered child stream, and leaving both unset uses the scenario generator
    directly for a single-AP scenario (numbered streams otherwise).
    """

    name: str = "ap"
    position: Optional[Tuple[float, float]] = None
    orientation_deg: float = 0.0
    array: ArraySpec = field(default_factory=ArraySpec)
    estimator: Optional[EstimatorConfig] = None
    rng_stream: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("access points need a non-empty name")
        if self.rng_stream is not None and self.seed is not None:
            raise ValueError(f"AP {self.name!r}: set rng_stream or seed, not both")
        _coerce_xy(self, "position")

    def resolve_position(self, environment: TestbedEnvironment) -> Point:
        """The AP's floor-plan position (environment default when unset)."""
        if self.position is None:
            return environment.ap_position
        return Point(float(self.position[0]), float(self.position[1]))


@dataclass(frozen=True)
class AttackerSpec(JsonSerializable):
    """One attacker of the threat model, by registry name.

    Exactly one of ``position`` (explicit coordinates), ``at_client`` (a
    numbered client position), or ``outdoor`` (a named outdoor position of the
    environment) locates the transmitter.  Directional attackers aim either at
    an access point (``aim_ap``) or at explicit coordinates (``aim_point``).
    An unset ``address`` is drawn from the deployment's attacker stream.

    The per-family knob fields (beam shape, recording SNR, mirror bearing,
    swarm offsets, CFO walk) may only be set when the chosen attack type
    declares them in its ``spec_knobs`` — a knob the type would silently
    ignore is rejected at construction.
    """

    type: str = "omnidirectional"
    name: Optional[str] = None
    position: Optional[Tuple[float, float]] = None
    at_client: Optional[int] = None
    outdoor: Optional[str] = None
    aim_ap: Optional[str] = None
    aim_point: Optional[Tuple[float, float]] = None
    address: Optional[str] = None
    tx_power_dbm: float = 15.0
    # Directional / array beam knobs.
    beamwidth_deg: Optional[float] = None
    boresight_gain_db: Optional[float] = None
    sidelobe_suppression_db: Optional[float] = None
    # Replay knobs.
    recording_snr_db: Optional[float] = None
    playback_gain_db: Optional[float] = None
    # Reflector / multipath-mirror knobs.
    mirror_bearing_deg: Optional[float] = None
    mirror_gain_db: Optional[float] = None
    leak_suppression_db: Optional[float] = None
    # Coordinated-swarm knobs.
    member_offsets: Optional[Tuple[Tuple[float, float], ...]] = None
    # CFO-drift knobs.
    cfo_start_hz: Optional[float] = None
    cfo_drift_hz_per_s: Optional[float] = None

    #: Every per-family knob field above, in declaration order.  Validated
    #: against the attack class's ``spec_knobs`` and forwarded in ``build``.
    _KNOB_FIELDS = (
        "beamwidth_deg", "boresight_gain_db", "sidelobe_suppression_db",
        "recording_snr_db", "playback_gain_db",
        "mirror_bearing_deg", "mirror_gain_db", "leak_suppression_db",
        "member_offsets",
        "cfo_start_hz", "cfo_drift_hz_per_s",
    )

    def __post_init__(self) -> None:
        ATTACK_TYPES.canonical(self.type)
        placements = [value is not None
                      for value in (self.position, self.at_client, self.outdoor)]
        if sum(placements) != 1:
            raise ValueError(
                "an attacker needs exactly one of position / at_client / outdoor")
        if not math.isfinite(self.tx_power_dbm):
            raise ValueError(
                f"tx_power_dbm must be finite, got {self.tx_power_dbm!r}")
        cls = ATTACK_TYPES.get(self.type)
        directional = issubclass(cls, DirectionalAntennaAttacker)
        if self.aim_ap is not None and self.aim_point is not None:
            raise ValueError("set aim_ap or aim_point, not both")
        if directional and self.aim_ap is None and self.aim_point is None:
            # An unaimed directional antenna degenerates to an omni attacker,
            # which would silently mislabel an evaluation.
            raise ValueError(
                f"attacker type {self.type!r} needs aim_ap or aim_point")
        if not directional and (self.aim_ap is not None
                                or self.aim_point is not None):
            raise ValueError(
                f"attacker type {self.type!r} is not directional and has no "
                "beam to aim (aim_ap / aim_point)")
        allowed = tuple(getattr(cls, "spec_knobs", ()))
        unknown = [knob for knob in self._KNOB_FIELDS
                   if getattr(self, knob) is not None and knob not in allowed]
        if unknown:
            accepted = ", ".join(allowed) if allowed else "none"
            raise ValueError(
                f"attacker type {self.type!r} does not accept knob(s) "
                f"{unknown}; accepted knobs: {accepted}")
        _coerce_xy(self, "position")
        _coerce_xy(self, "aim_point")
        if self.member_offsets is not None:
            coerced = tuple(
                tuple(float(coordinate) for coordinate in offset)
                for offset in self.member_offsets)
            for offset in coerced:
                if len(offset) != 2 or not all(
                        math.isfinite(coordinate) for coordinate in offset):
                    raise ValueError(
                        f"member_offsets must be finite (dx, dy) pairs, "
                        f"got {offset!r}")
            if not coerced:
                raise ValueError("member_offsets must name at least one member")
            object.__setattr__(self, "member_offsets", coerced)  # repro-lint: disable=frozen-config-mutation

    def build(self, environment: TestbedEnvironment,
              ap_positions: Mapping[str, Point], rng: RngLike = None) -> Attacker:
        """Instantiate the attacker in a concrete environment.

        ``ap_positions`` maps AP names to :class:`Point` (for ``aim_ap``);
        ``rng`` supplies the MAC address when the spec does not pin one.
        """
        cls = ATTACK_TYPES.get(self.type)
        if self.position is not None:
            position = Point(float(self.position[0]), float(self.position[1]))
        elif self.at_client is not None:
            position = environment.client_position(self.at_client)
        else:
            try:
                position = environment.outdoor_positions[self.outdoor]
            except KeyError:
                raise KeyError(
                    f"environment {environment.name!r} has no outdoor position "
                    f"{self.outdoor!r}; known: {sorted(environment.outdoor_positions)}"
                ) from None
        if self.address is not None:
            address = MacAddress(self.address)
        else:
            address = MacAddress.random(ensure_rng(rng))
        kwargs = dict(position=position, address=address,
                      tx_power_dbm=self.tx_power_dbm)
        if self.name is not None:
            kwargs["name"] = self.name
        if issubclass(cls, DirectionalAntennaAttacker):
            if self.aim_ap is not None:
                try:
                    kwargs["aim_point"] = ap_positions[self.aim_ap]
                except KeyError:
                    raise KeyError(
                        f"attacker aims at unknown AP {self.aim_ap!r}; "
                        f"known: {sorted(ap_positions)}") from None
            elif self.aim_point is not None:
                kwargs["aim_point"] = Point(float(self.aim_point[0]),
                                            float(self.aim_point[1]))
        # __post_init__ already rejected any knob the class does not declare,
        # so every remaining non-None knob field is one the class accepts.
        kwargs.update({knob: getattr(self, knob) for knob in self._KNOB_FIELDS
                       if getattr(self, knob) is not None})
        return cls(**kwargs)

    def effective_name(self) -> str:
        """The attacker's name after applying the attack class's default.

        Attacker dataclasses expose their ``name`` default as a class
        attribute; third-party classes without one fall back to the type
        name, so unnamed attackers of one custom type still collide loudly
        at spec time rather than crashing here.
        """
        if self.name is not None:
            return self.name
        default = getattr(ATTACK_TYPES.get(self.type), "name", None)
        return default if isinstance(default, str) else self.type


@dataclass(frozen=True)
class FenceSpec(JsonSerializable):
    """Virtual-fence policy over the environment's building boundary."""

    margin_m: float = 1.0
    max_residual_m: float = 2.5
    fail_open: bool = False

    def __post_init__(self) -> None:
        # Found by the scenario fuzzer: a NaN margin or non-positive residual
        # gate produced a fence that never (or always) rejected, with nothing
        # failing loudly anywhere.
        if not math.isfinite(self.margin_m):
            raise ValueError(f"margin_m must be finite, got {self.margin_m!r}")
        if not (math.isfinite(self.max_residual_m) and self.max_residual_m > 0):
            raise ValueError(
                "max_residual_m must be positive and finite, "
                f"got {self.max_residual_m!r}")


@dataclass(frozen=True)
class PolicySpec(JsonSerializable):
    """Packet-policy configuration shared by every AP of the scenario.

    Scalar defaults are read off :class:`AccessPointConfig` itself, so tuning
    the AP defaults cannot silently diverge from spec-built deployments.
    """

    spoofing: SpoofingDetectorConfig = field(default_factory=SpoofingDetectorConfig)
    tracker: TrackerConfig = field(default_factory=TrackerConfig)
    #: Bearing uncertainty (degrees) attached to localisation observations.
    bearing_sigma_deg: float = \
        AccessPointConfig.__dataclass_fields__["bearing_sigma_deg"].default
    #: Packets averaged when training a certified signature.
    training_packets: int = \
        AccessPointConfig.__dataclass_fields__["training_packets"].default


@dataclass(frozen=True)
class ScenarioSpec(JsonSerializable):
    """A complete, serialisable description of a SecureAngle deployment."""

    name: str = "scenario"
    #: Environment registry name.
    environment: str = "figure4"
    #: Master seed; every stochastic component derives from it.
    seed: int = 42
    #: Capture-simulation knobs shared by every AP's testbed simulator.
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    #: Scenario-wide AoA estimator configuration (APs may override).
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    #: Packet policy (spoofing detector, tracker, localisation sigma).
    policy: PolicySpec = field(default_factory=PolicySpec)
    #: Access points; empty means one default AP at the environment position.
    access_points: Tuple[AccessPointSpec, ...] = ()
    #: Client ids to expose; empty means every environment client.
    clients: Tuple[int, ...] = ()
    #: Attackers of the threat model.
    attackers: Tuple[AttackerSpec, ...] = ()
    #: Virtual fence; ``None`` disables fencing.
    fence: Optional[FenceSpec] = None
    #: Seed for client MAC addresses (kept separate from ``seed`` so address
    #: assignment never perturbs the capture simulation).
    client_address_seed: int = 7
    #: Child-stream number for attacker MAC addresses drawn from the master.
    attacker_address_stream: int = 4

    def __post_init__(self) -> None:
        ENVIRONMENTS.canonical(self.environment)
        object.__setattr__(self, "access_points", tuple(self.access_points))
        object.__setattr__(self, "attackers", tuple(self.attackers))
        object.__setattr__(self, "clients",
                           tuple(int(client) for client in self.clients))
        names = [ap.name for ap in self.access_points]
        if len(set(names)) != len(names):
            raise ValueError(f"access point names must be unique, got {names}")
        # Uniqueness over *effective* names (class defaults applied), so two
        # unnamed attackers of the same type fail here rather than lazily on
        # the first Deployment.attackers access mid-run.
        attacker_names = [attacker.effective_name() for attacker in self.attackers]
        if len(set(attacker_names)) != len(attacker_names):
            raise ValueError(
                f"attacker names must be unique, got {attacker_names}; "
                "give unnamed attackers of the same type distinct names")
        # Environment-aware placement checks — found by the scenario fuzzer: a
        # client id or outdoor name the environment does not define used to
        # pass construction and only fail on the first Deployment access.
        # Environment factories are cheap pure builders, so constructing one
        # here costs microseconds and buys construction-time failure.
        environment = ENVIRONMENTS.get(self.environment)()
        known_clients = set(environment.client_positions)
        unknown_clients = [client for client in self.clients
                           if client not in known_clients]
        if unknown_clients:
            raise ValueError(
                f"environment {self.environment!r} has no client(s) "
                f"{unknown_clients}; known: {sorted(known_clients)}")
        for attacker in self.attackers:
            if (attacker.at_client is not None
                    and attacker.at_client not in known_clients):
                raise ValueError(
                    f"attacker {attacker.effective_name()!r} is placed at "
                    f"client {attacker.at_client!r}, which environment "
                    f"{self.environment!r} does not define; known: "
                    f"{sorted(known_clients)}")
            if (attacker.outdoor is not None
                    and attacker.outdoor not in environment.outdoor_positions):
                raise ValueError(
                    f"attacker {attacker.effective_name()!r} is placed at "
                    f"outdoor position {attacker.outdoor!r}, which environment "
                    f"{self.environment!r} does not define; known: "
                    f"{sorted(environment.outdoor_positions)}")
        ap_names = set(names) if names else {"ap-main"}
        for attacker in self.attackers:
            if attacker.aim_ap is not None and attacker.aim_ap not in ap_names:
                raise ValueError(
                    f"attacker {attacker.effective_name()!r} aims at unknown "
                    f"AP {attacker.aim_ap!r}; known: {sorted(ap_names)}")

    # ------------------------------------------------------------- convenience
    def resolved_access_points(self) -> Tuple[AccessPointSpec, ...]:
        """The AP specs, with the single-default-AP fallback applied."""
        if self.access_points:
            return self.access_points
        return (AccessPointSpec(name="ap-main"),)
