"""The unified scenario & deployment API.

One front door for driving SecureAngle: describe a deployment declaratively
with :class:`ScenarioSpec` (serialisable to/from JSON), name components via
the registries (:data:`AOA_METHODS`, :data:`ARRAY_GEOMETRIES`,
:data:`ATTACK_TYPES`, :data:`ENVIRONMENTS`), compile it with
:class:`Deployment`, and drive packets through :meth:`Deployment.process`
(``mode="stream"`` or ``mode="batch"``; :meth:`Deployment.run` /
:meth:`Deployment.run_batch` are the v0 spellings).  Every decision is a
versioned, JSON-round-trippable :class:`PacketEvent`
(:data:`EVENT_SCHEMA_VERSION`) — the schema the live service
(:mod:`repro.serve`) streams to network clients.

>>> from repro.api import Deployment, ScenarioSpec
>>> deployment = Deployment(ScenarioSpec(name="quickstart"))
>>> for event in deployment.run(deployment.client_packets(7, num_packets=3)):
...     print(event.verdict, event.bearings_deg)

The preset builders in :mod:`repro.api.scenarios` reproduce the paper's
experiment wiring (including exact random streams); every experiment runner
under :mod:`repro.experiments` builds its setup through them.
"""

from repro.api.components import (
    AOA_METHODS,
    ARRAY_GEOMETRIES,
    ATTACK_TYPES,
    ENVIRONMENTS,
    AoAMethod,
)
from repro.api.deployment import Deployment
from repro.api.events import EVENT_SCHEMA_VERSION, Packet, PacketEvent
from repro.api.registry import Registry
from repro.api.scenarios import (
    SCENARIOS,
    cfo_drift_scenario,
    fence_scenario,
    reflector_scenario,
    replay_scenario,
    single_ap_scenario,
    spoofing_scenario,
    swarm_scenario,
    three_ap_scenario,
)
from repro.api.spec import (
    AccessPointSpec,
    ArraySpec,
    AttackerSpec,
    FenceSpec,
    PolicySpec,
    ScenarioSpec,
)

__all__ = [
    "AOA_METHODS",
    "ARRAY_GEOMETRIES",
    "ATTACK_TYPES",
    "ENVIRONMENTS",
    "EVENT_SCHEMA_VERSION",
    "SCENARIOS",
    "AoAMethod",
    "Registry",
    "ScenarioSpec",
    "AccessPointSpec",
    "ArraySpec",
    "AttackerSpec",
    "FenceSpec",
    "PolicySpec",
    "Deployment",
    "Packet",
    "PacketEvent",
    "single_ap_scenario",
    "three_ap_scenario",
    "fence_scenario",
    "spoofing_scenario",
    "replay_scenario",
    "reflector_scenario",
    "swarm_scenario",
    "cfo_drift_scenario",
]
