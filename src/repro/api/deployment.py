"""The deployment facade: compile a spec, then stream packets through it.

``Deployment`` turns a declarative :class:`~repro.api.spec.ScenarioSpec` into
the full live stack — environment, per-AP testbed simulators, calibrated
:class:`~repro.core.access_point.SecureAngleAP` instances, a
:class:`~repro.core.controller.SecureAngleController`, clients, and attackers
— and exposes one front door for driving traffic through it:

* :meth:`process` is the one documented contract (v1): it consumes an
  iterable of :class:`Packet` records (a frame plus per-AP captures) and
  yields one structured :class:`PacketEvent` per packet — the
  accept/drop/flag decision, every AP's bearing, the triangulated location,
  the fence verdict, and the processing latency — either streaming
  (``mode="stream"``, one analysis per packet) or batched (``mode="batch"``,
  one stacked eigendecomposition per AP).  Scalar and batched paths share
  the per-packet policy code, so they cannot diverge.
* :meth:`run` and :meth:`run_batch` are the v0 spellings of the two modes,
  kept as thin shims over :meth:`process` so existing runners and examples
  stay bit-identical.

Randomness: the scenario seed drives one master generator; AP simulators
draw from it exactly as the hand-wired experiments used to (directly for a
lone AP, via numbered child streams otherwise), so a spec-built deployment
reproduces the legacy experiment wiring bit-for-bit.
"""

from __future__ import annotations

import copy
import time
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.aoa.estimator import AoAEstimate
from repro.api.components import ENVIRONMENTS
from repro.api.events import EVENT_SCHEMA_VERSION, Packet, PacketEvent
from repro.api.spec import AccessPointSpec, ScenarioSpec
from repro.attacks.attacker import Attacker
from repro.attacks.spoofing_attack import SpoofingAttack
from repro.core.access_point import AccessPointConfig, SecureAngleAP
from repro.core.controller import SecureAngleController
from repro.core.fence import FenceCheck, VirtualFence
from repro.core.localization import (
    BearingObservation,
    LocationEstimate,
    triangulate_bearings,
)
from repro.core.signature import AoASignature, signatures_from_pseudospectra
from repro.hardware.capture import Capture
from repro.mac.address import MacAddress
from repro.mac.frames import Dot11Frame
from repro.testbed.clients import SoekrisClient, make_clients
from repro.testbed.scenario import CaptureRequest, TestbedSimulator
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

__all__ = ["EVENT_SCHEMA_VERSION", "Deployment", "Packet", "PacketEvent"]

#: Fixed MAC address deployments answer to ("SA" = SecureAngle).
DEPLOYMENT_AP_ADDRESS = MacAddress("02:53:41:00:00:01")


class Deployment:
    """A compiled scenario: the one front door for driving SecureAngle."""

    def __init__(self, spec: ScenarioSpec, rng: RngLike = None) -> None:
        self.spec = spec
        #: Master generator; AP simulators and attacker addresses derive from it.
        self._rng = ensure_rng(spec.seed if rng is None else rng)
        self.environment = ENVIRONMENTS.get(spec.environment)()
        self._ap_specs = spec.resolved_access_points()
        # A lone AP with no pinned stream/seed consumes the master generator
        # directly (the hand-wired single-AP experiment convention).  Attacker
        # addresses must then stay entirely off the master — draws come from a
        # snapshot of its state taken here, before the simulators consume any
        # of it — so the addresses still follow the caller's generator while
        # declaring or touching attackers can never perturb the capture
        # stream.  With per-AP streams the address draw uses the master
        # lazily instead, matching the legacy experiments' interleaved spawn
        # order.
        lone_spec = self._ap_specs[0]
        self._master_is_sim_rng = (len(self._ap_specs) == 1
                                   and lone_spec.seed is None
                                   and lone_spec.rng_stream is None)
        self._attacker_rng_base = (copy.deepcopy(self._rng)
                                   if self._master_is_sim_rng and spec.attackers
                                   else None)

        self.simulators: Dict[str, TestbedSimulator] = {}
        self.aps: Dict[str, SecureAngleAP] = {}
        ap_list: List[SecureAngleAP] = []
        for index, ap_spec in enumerate(self._ap_specs):
            ap = self._compile_ap(index, ap_spec)
            self.aps[ap.name] = ap
            ap_list.append(ap)

        fence: Optional[VirtualFence] = None
        if spec.fence is not None:
            fence = VirtualFence(
                self.environment.building_boundary,
                margin_m=spec.fence.margin_m,
                max_residual_m=spec.fence.max_residual_m,
                fail_open=spec.fence.fail_open,
            )
        self.controller = SecureAngleController(ap_list, fence=fence)
        #: Address clients transmit to (and attackers spoof towards).
        self.ap_address = DEPLOYMENT_AP_ADDRESS
        self._clients: Optional[Dict[int, SoekrisClient]] = None
        self._attackers: Optional[Dict[str, Attacker]] = None

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, rng: RngLike = None) -> "Deployment":
        """Compile a scenario spec (alias of the constructor)."""
        return cls(spec, rng=rng)

    @classmethod
    def from_json(cls, text: str, rng: RngLike = None) -> "Deployment":
        """Compile a deployment straight from a JSON scenario document."""
        return cls(ScenarioSpec.from_json(text), rng=rng)

    # -------------------------------------------------------------- compilation
    def _compile_ap(self, index: int, ap_spec: AccessPointSpec) -> SecureAngleAP:
        array = ap_spec.array.build()
        position = ap_spec.resolve_position(self.environment)
        if ap_spec.seed is not None:
            sim_rng = ensure_rng(ap_spec.seed)
        elif ap_spec.rng_stream is not None:
            sim_rng = spawn_rng(self._rng, ap_spec.rng_stream)
        elif len(self._ap_specs) == 1:
            # A lone AP consumes the master generator directly — exactly the
            # stream the hand-wired single-AP experiments used.
            sim_rng = self._rng
        else:
            sim_rng = spawn_rng(self._rng, index)
        simulator = TestbedSimulator(
            self.environment, array,
            ap_position=position,
            orientation_deg=ap_spec.orientation_deg,
            config=self.spec.simulator,
            rng=sim_rng,
        )
        policy = self.spec.policy
        ap = SecureAngleAP(
            name=ap_spec.name,
            position=position,
            array=array,
            orientation_deg=ap_spec.orientation_deg,
            config=AccessPointConfig(
                estimator=ap_spec.estimator or self.spec.estimator,
                spoofing=policy.spoofing,
                tracker=policy.tracker,
                bearing_sigma_deg=policy.bearing_sigma_deg,
                training_packets=policy.training_packets,
            ),
        )
        ap.set_calibration(simulator.calibration_table())
        self.simulators[ap_spec.name] = simulator
        return ap

    # -------------------------------------------------------------- accessors
    @property
    def fence(self) -> Optional[VirtualFence]:
        """The compiled virtual fence, if the spec configured one."""
        return self.controller.fence

    @property
    def primary_ap_name(self) -> str:
        """The first (primary) access point's name."""
        return self._ap_specs[0].name

    def ap(self, name: Optional[str] = None) -> SecureAngleAP:
        """An access point by name (the primary AP when unnamed)."""
        if name is None:
            name = self.primary_ap_name
        try:
            return self.aps[name]
        except KeyError:
            raise KeyError(f"unknown access point {name!r}; "
                           f"known: {sorted(self.aps)}") from None

    def simulator(self, name: Optional[str] = None) -> TestbedSimulator:
        """An AP's testbed simulator (the primary AP's when unnamed)."""
        if name is None:
            name = self.primary_ap_name
        try:
            return self.simulators[name]
        except KeyError:
            raise KeyError(f"unknown access point {name!r}; "
                           f"known: {sorted(self.simulators)}") from None

    @property
    def clients(self) -> Dict[int, SoekrisClient]:
        """The testbed clients (built lazily; addresses from their own seed)."""
        if self._clients is None:
            clients = make_clients(self.environment,
                                   rng=self.spec.client_address_seed)
            if self.spec.clients:
                unknown = [cid for cid in self.spec.clients if cid not in clients]
                if unknown:
                    raise KeyError(f"unknown client ids in spec: {unknown}")
                clients = {cid: clients[cid] for cid in self.spec.clients}
            self._clients = clients
        return self._clients

    @property
    def attackers(self) -> Dict[str, Attacker]:
        """The spec's attackers (built lazily).

        Addresses not pinned by the spec are drawn from the master generator's
        attacker stream — via a construction-time snapshot of its state when a
        lone AP owns the master, so captures stay unperturbed.
        """
        if self._attackers is None:
            attackers: Dict[str, Attacker] = {}
            if self.spec.attackers:
                ap_positions = {ap.name: ap.position for ap in self.aps.values()}
                if self._attacker_rng_base is not None:
                    # The lone AP's simulator owns the master generator;
                    # draw from the construction-time snapshot of its state
                    # instead, keeping captures invariant to attacker
                    # declarations and access order while the addresses
                    # still track the caller's generator.
                    address_rng = spawn_rng(self._attacker_rng_base,
                                            self.spec.attacker_address_stream)
                else:
                    address_rng = spawn_rng(self._rng,
                                            self.spec.attacker_address_stream)
                for attacker_spec in self.spec.attackers:
                    # Name collisions were rejected by ScenarioSpec validation.
                    attacker = attacker_spec.build(self.environment, ap_positions,
                                                   rng=address_rng)
                    attackers[attacker.name] = attacker
            self._attackers = attackers
        return self._attackers

    def expected_bearing(self, client_id: int,
                         ap_name: Optional[str] = None) -> float:
        """The bearing an AP's estimator should report for a client."""
        return self.simulator(ap_name).expected_client_bearing(client_id)

    # ---------------------------------------------------------------- traffic
    def client_packets(self, client_id: int, num_packets: int = 1,
                       inter_packet_gap_s: float = 0.5, start_s: float = 0.0,
                       payload: bytes = b"uplink",
                       source: Optional[MacAddress] = None) -> Iterator[Packet]:
        """Generate uplink packets from a client, captured by every AP.

        ``source`` overrides the claimed source address of the frames —
        transmitting a client's traffic under a trained (victim) address is
        the central spoofing-evaluation use case.
        """
        if num_packets < 1:
            raise ValueError("num_packets must be at least 1")
        client = self.clients[client_id]
        for index in range(num_packets):
            timestamp = start_s + index * inter_packet_gap_s
            if source is None:
                frame = client.make_frame(self.ap_address, payload=payload)
            else:
                frame = Dot11Frame(source=source, destination=self.ap_address,
                                   sequence_number=index, payload=payload)
            captures = {
                name: simulator.capture_from_client(
                    client_id, frame=frame, tx_power_dbm=client.tx_power_dbm,
                    elapsed_s=timestamp, timestamp_s=timestamp)
                for name, simulator in self.simulators.items()
            }
            yield Packet(frame=frame, captures=captures, timestamp_s=timestamp,
                         metadata={"client_id": client_id})

    def attacker_packets(self, attacker_name: str, victim_address: MacAddress,
                         num_packets: int = 1, inter_packet_gap_s: float = 0.5,
                         start_s: float = 0.0) -> Iterator[Packet]:
        """Generate spoofed packets from a named attacker of the spec."""
        attacker = self.attackers[attacker_name]
        attack = SpoofingAttack(attacker=attacker, victim_address=victim_address,
                                ap_address=self.ap_address, num_frames=num_packets)
        for index, frame in enumerate(attack.iter_frames()):
            timestamp = start_s + index * inter_packet_gap_s
            captures = {
                name: simulator.capture_from_position(
                    attacker.transmit_position(index), frame=frame,
                    elapsed_s=timestamp, timestamp_s=timestamp,
                    attacker=attacker, tx_power_dbm=attacker.tx_power_dbm)
                for name, simulator in self.simulators.items()
            }
            yield Packet(frame=frame, captures=captures, timestamp_s=timestamp,
                         metadata={"attacker": attacker.name})

    def traffic(self, client_id: Optional[int] = None, *,
                attacker: Optional[str] = None,
                victim_address: Optional[MacAddress] = None,
                num_packets: int = 1, inter_packet_gap_s: float = 0.5,
                start_s: float = 0.0, payload: bytes = b"uplink",
                source: Optional[MacAddress] = None) -> List[Packet]:
        """Synthesize a whole burst of packets through the batched engine.

        The batched counterpart of :meth:`client_packets` /
        :meth:`attacker_packets`: every AP's captures for the burst are
        generated in one :meth:`TestbedSimulator.capture_batch` call (cached
        ray tracing, stacked channel/receiver arithmetic) instead of one
        Python round trip per packet.  The per-packet rng substreams are
        spawned in the scalar loop's order, so the returned packets are
        bit-identical to draining the matching generator.

        Pass ``client_id`` for legitimate uplink traffic, or ``attacker``
        (the spec attacker's name) plus ``victim_address`` for a spoofed
        burst.  Feed the result straight to :meth:`run_batch` for an
        end-to-end batch-fast pass.
        """
        if (client_id is None) == (attacker is None):
            raise ValueError("provide exactly one of client_id or attacker")
        if num_packets < 1:
            raise ValueError("num_packets must be at least 1")
        timestamps = [start_s + index * inter_packet_gap_s
                      for index in range(num_packets)]
        if client_id is not None:
            client = self.clients[client_id]
            position = self.environment.client_position(client_id)
            frames: List[Dot11Frame] = []
            for index in range(num_packets):
                if source is None:
                    frames.append(client.make_frame(self.ap_address, payload=payload))
                else:
                    frames.append(Dot11Frame(source=source,
                                             destination=self.ap_address,
                                             sequence_number=index,
                                             payload=payload))
            requests = [
                CaptureRequest(position=position, frame=frame,
                               tx_power_dbm=client.tx_power_dbm,
                               elapsed_s=timestamp, timestamp_s=timestamp,
                               metadata={"client_id": client_id})
                for frame, timestamp in zip(frames, timestamps)
            ]
            packet_metadata = {"client_id": client_id}
        else:
            if victim_address is None:
                raise ValueError("attacker traffic needs a victim_address")
            attacker_obj = self.attackers[attacker]
            attack = SpoofingAttack(attacker=attacker_obj,
                                    victim_address=victim_address,
                                    ap_address=self.ap_address,
                                    num_frames=num_packets)
            frames = list(attack.iter_frames())
            requests = [
                CaptureRequest(position=attacker_obj.transmit_position(index),
                               frame=frame,
                               tx_power_dbm=attacker_obj.tx_power_dbm,
                               elapsed_s=timestamp, timestamp_s=timestamp,
                               attacker=attacker_obj)
                for index, (frame, timestamp) in enumerate(zip(frames, timestamps))
            ]
            packet_metadata = {"attacker": attacker_obj.name}
        captures_by_ap = {
            name: simulator.capture_batch(requests)
            for name, simulator in self.simulators.items()
        }
        return [
            Packet(
                frame=frames[index],
                captures={name: captures_by_ap[name][index]
                          for name in self.simulators},
                timestamp_s=timestamps[index],
                metadata=dict(packet_metadata),
            )
            for index in range(num_packets)
        ]

    def train(self, address: MacAddress, client_id: int,
              num_packets: Optional[int] = None, inter_packet_gap_s: float = 0.5,
              start_s: float = 0.0, ap_name: Optional[str] = None) -> AoASignature:
        """Train an AP's certified signature for ``address`` from client packets."""
        ap = self.ap(ap_name)
        simulator = self.simulator(ap_name)
        if num_packets is None:
            num_packets = ap.config.training_packets
        captures = [
            simulator.capture_from_client(
                client_id, elapsed_s=start_s + index * inter_packet_gap_s,
                timestamp_s=start_s + index * inter_packet_gap_s)
            for index in range(num_packets)
        ]
        return ap.train_client(address, captures)

    # ------------------------------------------------------------------ running
    def process(self, packets: Iterable[Packet], *, mode: str = "stream",
                primary_ap: Optional[str] = None,
                update_signatures: bool = True) -> Iterator[PacketEvent]:
        """The one documented packet-processing contract (event schema v1).

        Consumes :class:`Packet` records and yields one v1
        :class:`PacketEvent` per packet, in arrival order.  The primary AP
        (``primary_ap``, default: the first AP holding a capture of each
        packet) runs the ACL and spoofing checks and, when
        ``update_signatures`` is on, tracks matching signatures;
        localisation and the fence use every capture.

        ``mode`` selects the execution strategy — never the outcome:

        * ``"stream"`` — one analysis per packet, yielded lazily as packets
          arrive; each event's :attr:`~PacketEvent.packet_latency_s` is that
          packet's own measured analysis time
          (:attr:`~PacketEvent.batch_latency_s` is ``None``).
        * ``"batch"`` — the whole iterable is drained first and every AP
          sees all of its captures in one ``analyze_batch`` call; each
          event's :attr:`~PacketEvent.batch_latency_s` is the batch mean
          (total wall-clock over the batch divided by its size;
          :attr:`~PacketEvent.packet_latency_s` is ``None``).

        Per-packet policy runs in arrival order in both modes, and the
        scalar and batched AoA paths share their kernels, so decisions,
        bearings, locations, and fence verdicts are bit-identical between
        modes (and across any batch partitioning) — only the latency fields
        and laziness differ.

        :meth:`run` and :meth:`run_batch` are the v0 spellings of the two
        modes, kept as shims over this contract.
        """
        if mode == "stream":
            return self._process_stream(packets, primary_ap, update_signatures)
        if mode == "batch":
            return iter(self._process_batch(packets, primary_ap,
                                            update_signatures))
        raise ValueError(f"unknown processing mode {mode!r}; "
                         "expected 'stream' or 'batch'")

    def run(self, packets: Iterable[Packet], primary_ap: Optional[str] = None,
            update_signatures: bool = True) -> Iterator[PacketEvent]:
        """Stream packets, yielding one event each (v0 spelling).

        Shim over :meth:`process` with ``mode="stream"`` — see there for the
        full contract.
        """
        return self.process(packets, mode="stream", primary_ap=primary_ap,
                            update_signatures=update_signatures)

    def run_batch(self, packets: Iterable[Packet],
                  primary_ap: Optional[str] = None,
                  update_signatures: bool = True) -> List[PacketEvent]:
        """Process a whole batch through the batched AoA engine (v0 spelling).

        Shim over :meth:`process` with ``mode="batch"`` — see there for the
        full contract — returning the events as a list.
        """
        return self._process_batch(packets, primary_ap, update_signatures)

    def _process_stream(self, packets: Iterable[Packet],
                        primary_ap: Optional[str],
                        update_signatures: bool) -> Iterator[PacketEvent]:
        for index, packet in enumerate(packets):
            start = time.perf_counter()
            estimates = {
                name: self.ap(name).analyze(capture)
                for name, capture in packet.captures.items()
            }
            primary = self._primary_name(packet, primary_ap)
            observation = signatures_from_pseudospectra(
                [estimates[primary].pseudospectrum],
                captured_at_s=[packet.captures[primary].timestamp_s])[0]
            event = self._event(index, packet, primary, estimates, observation,
                                update_signatures)
            yield replace(event,
                          packet_latency_s=time.perf_counter() - start)

    def _process_batch(self, packets: Iterable[Packet],
                       primary_ap: Optional[str],
                       update_signatures: bool) -> List[PacketEvent]:
        packets = list(packets)
        if not packets:
            return []
        start = time.perf_counter()
        per_ap: Dict[str, List[Tuple[int, Capture]]] = {}
        for index, packet in enumerate(packets):
            for name, capture in packet.captures.items():
                self.ap(name)  # validate the name early
                per_ap.setdefault(name, []).append((index, capture))
        estimates: List[Dict[str, AoAEstimate]] = [{} for _ in packets]
        for name, entries in per_ap.items():
            results = self.aps[name].analyze_batch(
                [capture for _, capture in entries])
            for (index, _), estimate in zip(entries, results):
                estimates[index][name] = estimate
        primaries = [self._primary_name(packet, primary_ap) for packet in packets]
        observations = signatures_from_pseudospectra(
            [estimates[index][primary].pseudospectrum
             for index, primary in enumerate(primaries)],
            captured_at_s=[packet.captures[primary].timestamp_s
                           for packet, primary in zip(packets, primaries)])
        events = [
            self._event(index, packet, primary, estimates[index], observation,
                        update_signatures)
            for index, (packet, primary, observation)
            in enumerate(zip(packets, primaries, observations))
        ]
        latency = (time.perf_counter() - start) / len(packets)
        return [replace(event, batch_latency_s=latency) for event in events]

    # ---------------------------------------------------------------- internals
    def _primary_name(self, packet: Packet, primary_ap: Optional[str]) -> str:
        if primary_ap is not None:
            if primary_ap not in packet.captures:
                raise ValueError(
                    f"no capture supplied for primary AP {primary_ap!r}")
            return primary_ap
        return next(iter(packet.captures))

    def _event(self, index: int, packet: Packet, primary: str,
               estimates: Mapping[str, AoAEstimate], observation: AoASignature,
               update_signatures: bool) -> PacketEvent:
        ap = self.ap(primary)
        source = packet.frame.source
        check = ap.check_packet(source, observation,
                                packet.captures[primary].timestamp_s,
                                update_signature=update_signatures)

        bearings: Dict[str, float] = {}
        triangulation: List[BearingObservation] = []
        for name, estimate in estimates.items():
            observer = self.aps[name]
            if observer.array.ambiguous:
                # Linear arrays report broadside angles and cannot contribute
                # an unambiguous global bearing (footnote 1 of the paper).
                # Unlike SecureAngleAP.bearing_observations — which raises —
                # the session reports the local bearing and simply leaves the
                # AP out of triangulation, so mixed-array deployments stream.
                bearings[name] = estimate.bearing_deg
                continue
            bearing = (estimate.bearing_deg + observer.orientation_deg) % 360.0
            bearings[name] = bearing
            triangulation.append(BearingObservation(
                ap_position=observer.position, bearing_deg=bearing,
                sigma_deg=observer.config.bearing_sigma_deg))

        location: Optional[LocationEstimate] = None
        fence_check: Optional[FenceCheck] = None
        if len(triangulation) >= 2:
            if self.fence is not None:
                fence_check = self.fence.check_bearings(triangulation)
                location = fence_check.location
            else:
                try:
                    location = triangulate_bearings(triangulation)
                except ValueError:
                    location = None

        # The evidence combination itself lives in SecureAngleAP.decide,
        # shared with the AP and controller packet paths.
        decision = ap.decide(source, observation, check,
                             fence=self.fence, fence_check=fence_check)
        return PacketEvent(
            index=index,
            timestamp_s=packet.timestamp_s,
            source=source,
            decision=decision,
            bearings_deg=bearings,
            location=location,
            fence=fence_check,
            metadata=dict(packet.metadata),
        )

    def __repr__(self) -> str:
        return (f"Deployment({self.spec.name!r}, {len(self.aps)} AP(s), "
                f"environment={self.environment.name!r}, "
                f"fence={'on' if self.fence is not None else 'off'})")
