"""The component registries: AoA methods, array geometries, attacks, environments.

Scenario specs (:mod:`repro.api.spec`) refer to all pluggable pieces of a
deployment by name; this module is where those names are bound to the actual
implementations.  Third-party code can extend a deployment by registering its
own components under new names — specs pick them up with no import changes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.aoa.covariance import correlation_matrix
from repro.aoa.esprit import esprit_bearings
from repro.aoa.estimator import (
    AoAEstimator,
    EstimatorConfig,
    PARAMETRIC_METHODS,
    SPECTRAL_METHODS,
    STREAMING_METHODS,
)
from repro.aoa.phase_interferometry import two_antenna_bearing
from repro.aoa.root_music import root_music_bearings
from repro.api.registry import Registry
from repro.arrays.geometry import (
    AntennaArray,
    ArbitraryArray,
    OctagonalArray,
    UniformCircularArray,
    UniformLinearArray,
)
from repro.attacks.attacker import (
    AntennaArrayAttacker,
    DirectionalAntennaAttacker,
    OmnidirectionalAttacker,
)
from repro.attacks.families import (
    CfoDriftAttacker,
    CoordinatedSwarmAttacker,
    ReflectorAttacker,
    ReplayAttacker,
)
from repro.testbed.environment import TestbedEnvironment, figure4_environment

__all__ = [
    "AOA_METHODS",
    "ARRAY_GEOMETRIES",
    "ATTACK_TYPES",
    "ENVIRONMENTS",
    "AoAMethod",
]


# ------------------------------------------------------------------ AoA methods
class AoAMethod:
    """One named angle-of-arrival estimation technique.

    ``spectral`` methods scan an angle grid and produce the pseudospectra that
    SecureAngle signatures are built from; they can be named directly in
    :class:`~repro.aoa.estimator.EstimatorConfig`.  Search-free (parametric)
    methods return bearings only and are exposed through :meth:`bearings`.
    """

    def __init__(self, name: str,
                 bearings: Callable[[np.ndarray, AntennaArray, Optional[int]], List[float]],
                 spectral: bool, requires_linear: bool = False, description: str = "",
                 config_factory: Optional[Callable[..., EstimatorConfig]] = None) -> None:
        self.name = name
        self.spectral = spectral
        self.requires_linear = requires_linear
        self.description = description
        self._bearings = bearings
        self._config_factory = config_factory

    def bearings(self, samples: np.ndarray, array: AntennaArray,
                 num_sources: Optional[int] = None) -> List[float]:
        """Bearings (degrees, strongest/most-reliable first) for calibrated samples.

        ``samples`` is an (N, T) calibrated sample matrix; ``num_sources``
        fixes the model order (``None`` lets spectral methods auto-count and
        defaults parametric methods to one source).
        """
        samples = np.asarray(samples, dtype=complex)
        if self.requires_linear and not isinstance(array, UniformLinearArray):
            raise TypeError(f"AoA method {self.name!r} requires a UniformLinearArray")
        return self._bearings(samples, array, num_sources)

    def estimator_config(self, **overrides: Any) -> EstimatorConfig:
        """An :class:`EstimatorConfig` running this method (spectral only)."""
        if not self.spectral:
            raise ValueError(
                f"AoA method {self.name!r} is search-free and cannot drive the "
                "pseudospectrum pipeline; spectral methods: "
                + ", ".join(SPECTRAL_METHODS))
        if self._config_factory is not None:
            return self._config_factory(**overrides)
        return EstimatorConfig(method=self.name, **overrides)

    def __repr__(self) -> str:
        kind = "spectral" if self.spectral else "parametric"
        return f"AoAMethod({self.name!r}, {kind})"


AOA_METHODS: Registry[AoAMethod] = Registry("aoa method")


def _spectral_bearings(
        method: str) -> Callable[[np.ndarray, AntennaArray, Optional[int]], List[float]]:
    def bearings(samples: np.ndarray, array: AntennaArray,
                 num_sources: Optional[int]) -> List[float]:
        estimator = AoAEstimator(array, EstimatorConfig(method=method, num_sources=num_sources))
        estimate = estimator.process_samples(samples)
        return estimate.peak_bearings_deg or [estimate.bearing_deg]

    return bearings


def _root_music(samples: np.ndarray, array: AntennaArray,
                num_sources: Optional[int]) -> List[float]:
    return root_music_bearings(correlation_matrix(samples), array,
                               num_sources if num_sources is not None else 1)


def _esprit(samples: np.ndarray, array: AntennaArray,
            num_sources: Optional[int]) -> List[float]:
    return esprit_bearings(correlation_matrix(samples), array,
                           num_sources if num_sources is not None else 1)


def _phase_interferometry(samples: np.ndarray, array: AntennaArray,
                          num_sources: Optional[int]) -> List[float]:
    # The Equation-1 broadside convention only means anything when the first
    # two elements lie on the array axis, so the method is ULA-only (the
    # registry enforces requires_linear before this runs).
    return [two_antenna_bearing(samples[:2], spacing_m=array.spacing,
                                wavelength_m=array.wavelength)]


AOA_METHODS.register("music", AoAMethod(
    "music", _spectral_bearings("music"), spectral=True,
    description="MUSIC noise-subspace pseudospectrum (the paper's estimator)"))
AOA_METHODS.register("bartlett", AoAMethod(
    "bartlett", _spectral_bearings("bartlett"), spectral=True,
    description="Bartlett (delay-and-sum) beamscan"))
AOA_METHODS.register("capon", AoAMethod(
    "capon", _spectral_bearings("capon"), spectral=True,
    description="Capon / MVDR minimum-variance beamscan"), aliases=("mvdr",))
AOA_METHODS.register("root_music", AoAMethod(
    "root_music", _root_music, spectral=False, requires_linear=True,
    description="Root-MUSIC polynomial rooting (ULA only, search-free)"))
AOA_METHODS.register("esprit", AoAMethod(
    "esprit", _esprit, spectral=False, requires_linear=True,
    description="LS-ESPRIT shift invariance (ULA only, search-free)"))
AOA_METHODS.register("phase_interferometry", AoAMethod(
    "phase_interferometry", _phase_interferometry, spectral=False,
    requires_linear=True,
    description="Equation 1: two-antenna phase difference (ULA only)"),
    aliases=("two_antenna",))


def _subspace_config(**overrides: Any) -> EstimatorConfig:
    overrides.setdefault("subspace_tracking", True)
    return EstimatorConfig(method="music", **overrides)


def _subspace_bearings(samples: np.ndarray, array: AntennaArray,
                       num_sources: Optional[int]) -> List[float]:
    estimator = AoAEstimator(array, _subspace_config(num_sources=num_sources))
    estimate = estimator.process_samples(samples)
    return estimate.peak_bearings_deg or [estimate.bearing_deg]


AOA_METHODS.register("subspace", AoAMethod(
    "subspace", _subspace_bearings, spectral=True,
    description="MUSIC with incremental (PAST-style) subspace tracking "
                "(streaming; replaces the per-packet eigendecomposition)",
    config_factory=_subspace_config), aliases=("past",))

if set(AOA_METHODS.names()) != (set(SPECTRAL_METHODS) | set(PARAMETRIC_METHODS)
                                | set(STREAMING_METHODS)):
    # Survives python -O (unlike assert): a method added to the registry but
    # not the estimator constants (or vice versa) must fail at import.
    raise RuntimeError(
        "AOA_METHODS registry and estimator method constants diverged: "
        f"{sorted(AOA_METHODS.names())} vs "
        f"{sorted(set(SPECTRAL_METHODS) | set(PARAMETRIC_METHODS) | set(STREAMING_METHODS))}")


# ------------------------------------------------------------- array geometries
ARRAY_GEOMETRIES: Registry[Callable[..., AntennaArray]] = Registry("array geometry")

ARRAY_GEOMETRIES.register("linear", UniformLinearArray, aliases=("ula",))
ARRAY_GEOMETRIES.register("circular", UniformCircularArray, aliases=("uca",))
ARRAY_GEOMETRIES.register("octagon", OctagonalArray, aliases=("prototype_circular",))


@ARRAY_GEOMETRIES.register("arbitrary")
def _arbitrary_array(element_positions: Any,
                     carrier_frequency_hz: Optional[float] = None,
                     name: str = "arbitrary") -> AntennaArray:
    kwargs = {} if carrier_frequency_hz is None else {
        "carrier_frequency_hz": carrier_frequency_hz}
    return ArbitraryArray(np.asarray(element_positions, dtype=float), name=name, **kwargs)


# ---------------------------------------------------------------- attack types
ATTACK_TYPES: Registry[type] = Registry("attack type")

ATTACK_TYPES.register("omnidirectional", OmnidirectionalAttacker, aliases=("omni",))
ATTACK_TYPES.register("directional", DirectionalAntennaAttacker,
                      aliases=("directional_antenna",))
ATTACK_TYPES.register("array", AntennaArrayAttacker, aliases=("antenna_array",))
ATTACK_TYPES.register("replay", ReplayAttacker)
ATTACK_TYPES.register("reflector", ReflectorAttacker,
                      aliases=("multipath_mirror",))
ATTACK_TYPES.register("swarm", CoordinatedSwarmAttacker,
                      aliases=("coordinated_swarm",))
ATTACK_TYPES.register("cfo_drift", CfoDriftAttacker, aliases=("cfo",))


# ---------------------------------------------------------------- environments
ENVIRONMENTS: Registry[Callable[[], TestbedEnvironment]] = Registry("environment")

ENVIRONMENTS.register("figure4", figure4_environment, aliases=("testbed",))
