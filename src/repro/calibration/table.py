"""Calibration tables.

A calibration table stores, for each radio chain, the phase offset measured
relative to chain 0 while the calibration tone was being received.  Applying
the table to a capture multiplies each chain's samples by the conjugate
correction, cancelling the unknown downconverter phases so that the remaining
inter-chain phase differences are purely geometric — the quantity AoA
estimation needs (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.capture import Capture


@dataclass(frozen=True)
class CalibrationTable:
    """Per-chain phase corrections relative to chain 0.

    Parameters
    ----------
    relative_phase_rad:
        Length-N array; entry k is the phase of chain k relative to chain 0
        as measured from the calibration capture.  Entry 0 is zero by
        construction.
    measured_at_s:
        Timestamp of the calibration measurement, for record keeping.
    """

    relative_phase_rad: np.ndarray
    measured_at_s: float = 0.0

    def __post_init__(self) -> None:
        phases = np.asarray(self.relative_phase_rad, dtype=float)
        if phases.ndim != 1 or phases.size < 1:
            raise ValueError("relative_phase_rad must be a non-empty 1-D array")
        if not np.all(np.isfinite(phases)):
            raise ValueError("relative phases must be finite")
        phases = np.mod(phases - phases[0], 2.0 * np.pi)
        object.__setattr__(self, "relative_phase_rad", phases)

    @property
    def num_chains(self) -> int:
        """Number of chains the table covers."""
        return int(self.relative_phase_rad.size)

    def correction_factors(self) -> np.ndarray:
        """Complex factors that cancel the measured offsets when multiplied in."""
        return np.exp(-1j * self.relative_phase_rad)

    def apply(self, capture: Capture) -> Capture:
        """Return a calibrated copy of ``capture``.

        Raises
        ------
        ValueError
            If the capture's antenna count does not match the table, or the
            capture is already calibrated (applying a table twice would
            silently corrupt phases).
        """
        if capture.calibrated:
            raise ValueError("capture is already calibrated")
        if capture.num_antennas != self.num_chains:
            raise ValueError(
                f"capture has {capture.num_antennas} antennas but the table "
                f"covers {self.num_chains} chains")
        corrected = capture.samples * self.correction_factors()[:, None]
        return capture.with_samples(corrected, calibrated=True)

    def residual_against(self, other: "CalibrationTable") -> float:
        """Largest absolute phase discrepancy (radians) against another table.

        Used to check calibration stability: re-measuring the offsets should
        give (nearly) the same table as long as the hardware has not changed.
        """
        if other.num_chains != self.num_chains:
            raise ValueError("tables cover a different number of chains")
        diff = np.angle(np.exp(1j * (self.relative_phase_rad - other.relative_phase_rad)))
        return float(np.max(np.abs(diff)))

    @staticmethod
    def identity(num_chains: int) -> "CalibrationTable":
        """A table with zero corrections (useful for the no-calibration ablation)."""
        if num_chains < 1:
            raise ValueError("num_chains must be at least 1")
        return CalibrationTable(np.zeros(num_chains))

    def __repr__(self) -> str:
        degrees = np.degrees(self.relative_phase_rad)
        summary = ", ".join(f"{d:.1f}" for d in degrees)
        return f"CalibrationTable([{summary}] deg)"
