"""The calibration procedure of Section 2.2.

The access point throws every chain's RF switch to the calibration input,
captures the cabled continuous-wave tone, and measures each chain's phase
relative to chain 0.  Because every chain receives the *same* tone over an
equal-length path, those relative phases are exactly the downconverters'
unknown offsets; subtracting them from subsequent over-the-air captures makes
the inter-antenna phase comparison of Section 2.1 valid.
"""

from __future__ import annotations

import numpy as np

from repro.calibration.table import CalibrationTable
from repro.hardware.capture import Capture
from repro.hardware.receiver import ArrayReceiver
from repro.hardware.reference import CalibrationSource
from repro.utils.rng import RngLike


def measure_relative_phase_offsets(calibration_capture: Capture) -> np.ndarray:
    """Estimate per-chain phase offsets (relative to chain 0) from a calibration capture.

    The estimator correlates each chain's samples against chain 0's samples and
    takes the phase of the mean correlation — the same correlation-matrix
    averaging the AoA pipeline uses, applied to one column.  Averaging over the
    whole capture suppresses thermal noise.
    """
    samples = calibration_capture.samples
    if samples.shape[0] < 2:
        raise ValueError("calibration requires at least two chains")
    reference = samples[0]
    reference_power = float(np.mean(np.abs(reference) ** 2))
    if reference_power <= 0:
        raise ValueError("calibration capture has no signal on chain 0")
    correlations = np.mean(samples * np.conj(reference)[None, :], axis=1)
    phases = np.angle(correlations)
    return np.mod(phases - phases[0], 2.0 * np.pi)


def calibrate_receiver(receiver: ArrayReceiver, source: CalibrationSource,
                       num_samples: int = 4096, rng: RngLike = None) -> CalibrationTable:
    """Run the full calibration procedure against ``receiver``.

    Switches the receiver to the calibration input, captures ``num_samples``
    samples of the cabled tone, measures the relative phase offsets, and
    returns them as a :class:`CalibrationTable`.
    """
    capture = receiver.capture_calibration(source, num_samples=num_samples, rng=rng)
    offsets = measure_relative_phase_offsets(capture)
    return CalibrationTable(relative_phase_rad=offsets,
                            measured_at_s=capture.timestamp_s)
