"""Access-point phase calibration (Section 2.2 of the paper)."""

from repro.calibration.table import CalibrationTable
from repro.calibration.procedure import calibrate_receiver, measure_relative_phase_offsets

__all__ = [
    "CalibrationTable",
    "calibrate_receiver",
    "measure_relative_phase_offsets",
]
