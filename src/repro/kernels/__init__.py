"""The raw-speed kernel tier: pluggable compute backends and precision modes.

See :mod:`repro.kernels.backend` for the :class:`Backend` seam the hot
numerical kernels route through, and the ``precision`` helpers the
reduced-precision (complex64/float32) mode is built on.
"""

from repro.kernels.backend import (
    BACKEND_NAMES,
    Backend,
    BackendUnavailableError,
    CupyBackend,
    NumpyBackend,
    PRECISIONS,
    TorchBackend,
    available_backends,
    backend_extra,
    complex_dtype,
    delay_ramps,
    get_backend,
    real_dtype,
    validate_precision,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendUnavailableError",
    "CupyBackend",
    "NumpyBackend",
    "PRECISIONS",
    "TorchBackend",
    "available_backends",
    "backend_extra",
    "complex_dtype",
    "delay_ramps",
    "get_backend",
    "real_dtype",
    "validate_precision",
]
