"""Pluggable compute backends for the hot numerical kernels.

The pipeline's inner loops — batched covariance accumulation, stacked
eigendecompositions, steering-manifold evaluation, the MUSIC spectrum
contraction, FFT-domain fractional delays, phase random walks, and the OFDM
payload IFFT — all funnel through a small :class:`Backend` object instead of
bare ``np.*`` calls.  The default :class:`NumpyBackend` implements every
kernel with *literally the code the callers used to inline*, so the default
path is bit-identical to the pre-seam pipeline (the batch/scalar and campaign
bit-identity suites prove it).  :class:`TorchBackend` and :class:`CupyBackend`
run the same kernels on an accelerator-capable array library; they convert at
the kernel boundary (numpy in, numpy out), so callers never see foreign array
types.

Backends are selected by name: an explicit argument wins, then the
``REPRO_BACKEND`` environment variable, then ``"numpy"``.  Missing optional
packages raise :class:`BackendUnavailableError` naming the pip extra rather
than leaking an ImportError traceback.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

try:
    from scipy.linalg.blas import cherk as _cherk, zherk as _zherk
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _cherk = None
    _zherk = None

from repro.arrays.steering import steering_vector

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "BACKEND_NAMES",
    "CupyBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "complex_dtype",
    "get_backend",
    "real_dtype",
    "validate_precision",
]

#: Names :func:`get_backend` accepts.
BACKEND_NAMES = ("numpy", "torch", "cupy")

#: Supported reduced-precision modes.
PRECISIONS = ("float64", "float32")

#: Delays smaller than this (in samples) skip the FFT delay filter entirely,
#: so the undelayed reference path is returned untouched rather than put
#: through a lossless-but-rounding FFT round trip.
DELAY_EPSILON_SAMPLES = 1e-12

#: pip extras that provide each optional backend.
_BACKEND_EXTRAS = {"torch": "repro[gpu]", "cupy": "repro[gpu]"}


class BackendUnavailableError(ImportError):
    """An optional compute backend's package is not installed."""


def validate_precision(precision: str) -> str:
    """Validate a ``precision`` knob value and return it."""
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}")
    return precision


def real_dtype(precision: str) -> np.dtype:
    """The real floating dtype of a precision mode."""
    validate_precision(precision)
    return np.dtype(np.float32 if precision == "float32" else np.float64)


def complex_dtype(precision: str) -> np.dtype:
    """The complex floating dtype of a precision mode."""
    validate_precision(precision)
    return np.dtype(np.complex64 if precision == "float32" else np.complex128)


def _complex_for(real: np.dtype) -> np.dtype:
    """The complex dtype matching a real dtype (float32 -> complex64)."""
    return np.dtype(np.complex64 if np.dtype(real) == np.float32 else np.complex128)


# ---------------------------------------------------------------------- base
class Backend:
    """One compute backend: numpy-in/numpy-out implementations of hot kernels.

    Kernels are deliberately coarse-grained (one call per batched operation)
    so accelerator backends pay a single host/device round trip per kernel,
    not per element.  Every kernel accepts and returns numpy arrays; callers
    never handle backend-native array types.
    """

    name = "abstract"

    # -- array conversion ---------------------------------------------------
    def as_xp(self, array: np.ndarray) -> Any:
        """Convert a numpy array to this backend's native array type."""
        raise NotImplementedError

    def to_numpy(self, array: Any) -> np.ndarray:
        """Convert a backend-native array back to numpy."""
        raise NotImplementedError

    # -- linear algebra -----------------------------------------------------
    def eigh(self, matrices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked Hermitian eigendecomposition (eigenvalues ascending)."""
        raise NotImplementedError

    def inv(self, matrices: np.ndarray) -> np.ndarray:
        """Stacked matrix inverse."""
        raise NotImplementedError

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched matrix product (``np.matmul`` semantics)."""
        raise NotImplementedError

    def correlation_stack(self, samples_list: Sequence[np.ndarray]) -> np.ndarray:
        """Per-item ``X X^H / T`` into one (B, N, N) stack."""
        raise NotImplementedError

    # -- spectrum contractions ----------------------------------------------
    def music_projection_power(self, signal: np.ndarray,
                               steering: np.ndarray) -> np.ndarray:
        """Signal-subspace power ``sum_k |v_k^H a(theta)|^2``, shape (B, A)."""
        raise NotImplementedError

    def beamscan_numerator(self, matrices: np.ndarray,
                           steering: np.ndarray) -> np.ndarray:
        """Quadratic form ``a(theta)^H M a(theta)`` per item, shape (B, A)."""
        raise NotImplementedError

    # -- manifold evaluation ------------------------------------------------
    def steering_stack(self, positions: np.ndarray, angles_deg: Sequence[float],
                       wavelength_m: float) -> np.ndarray:
        """Steering vectors for several arrival angles, shape (P, N)."""
        raise NotImplementedError

    # -- synthesis kernels ---------------------------------------------------
    def fractional_delay(self, waveforms: np.ndarray, delays: np.ndarray,
                         out_shape: Tuple[int, ...]) -> np.ndarray:
        """FFT-domain fractional delays; see ``fractional_delay_batch``."""
        raise NotImplementedError

    def phase_walk(self, initials: np.ndarray, steps: np.ndarray) -> np.ndarray:
        """Unit-magnitude walks ``exp(1j*(initial + cumsum(steps)))``."""
        raise NotImplementedError

    def ifft(self, a: np.ndarray) -> np.ndarray:
        """Inverse FFT along the last axis."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# --------------------------------------------------------------------- numpy
class NumpyBackend(Backend):
    """The default backend: the pipeline's original numpy/BLAS kernels.

    Each method body is the exact code the call sites used to inline, which
    is what keeps the default path bit-identical to the pre-seam pipeline.
    """

    name = "numpy"

    def as_xp(self, array: np.ndarray) -> np.ndarray:
        return np.asarray(array)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def eigh(self, matrices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return np.linalg.eigh(matrices)

    def inv(self, matrices: np.ndarray) -> np.ndarray:
        return np.linalg.inv(matrices)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.matmul(a, b)

    def correlation_stack(self, samples_list: Sequence[np.ndarray]) -> np.ndarray:
        """Per-item ``X X^H / T`` into one (B, N, N) stack.

        An explicit loop of per-item BLAS calls on views beats stacking the
        raw samples first: it avoids two (B, N, T)-sized copies (stack +
        conj).  ``zherk``/``cherk`` compute the Hermitian product writing one
        triangle only (half the gemm flops, no materialised conjugate);
        ``trans=2`` feeds the C-ordered samples as their Fortran-ordered
        transpose view, yielding ``(X^T)^H X^T = (X X^H)^T = conj(X X^H)`` —
        undone by the batched conjugate-fill of both triangles afterwards.
        """
        n = samples_list[0].shape[0]
        dtype = np.result_type(*(samples.dtype for samples in samples_list))
        herk = {np.dtype(np.complex128): _zherk,
                np.dtype(np.complex64): _cherk}.get(dtype)
        matrices = np.empty((len(samples_list), n, n), dtype=dtype)
        if herk is not None:
            for index, samples in enumerate(samples_list):
                matrices[index] = herk(1.0, samples.T, trans=2, lower=0)
            upper = np.triu(matrices)
            matrices = upper.conj() + np.triu(matrices, 1).transpose(0, 2, 1)
        else:
            for index, samples in enumerate(samples_list):
                np.matmul(samples, samples.conj().T, out=matrices[index])
        lengths = np.array([samples.shape[1] for samples in samples_list], dtype=float)
        matrices /= lengths[:, None, None]
        return matrices

    def music_projection_power(self, signal: np.ndarray,
                               steering: np.ndarray) -> np.ndarray:
        projections = signal.conj().transpose(0, 2, 1) @ steering
        return np.sum(np.abs(projections) ** 2, axis=1)

    def beamscan_numerator(self, matrices: np.ndarray,
                           steering: np.ndarray) -> np.ndarray:
        return np.sum((steering.conj() * (matrices @ steering)).real, axis=1)

    def steering_stack(self, positions: np.ndarray, angles_deg: Sequence[float],
                       wavelength_m: float) -> np.ndarray:
        # One steering_vector call per angle, exactly like the channel's
        # original loop: the length-2 projection keeps its scalar GEMV
        # rounding, which the synthesis bit-identity suites pin.
        return np.stack([
            steering_vector(positions, float(angle), wavelength_m)
            for angle in np.asarray(angles_deg, dtype=float).reshape(-1)
        ])

    def fractional_delay(self, waveforms: np.ndarray, delays: np.ndarray,
                         out_shape: Tuple[int, ...]) -> np.ndarray:
        spectra = np.fft.fft(waveforms, axis=-1)
        ramp = delay_ramps(delays, out_shape[-1])
        # The ramp is a named array, never an anonymous temporary: numpy would
        # elide a >256 KB temporary into an in-place complex multiply, whose
        # rounding differs in the last ulp from the out-of-place loop and
        # would break bit-exactness between batch sizes.
        shifted = np.broadcast_to(spectra, out_shape) * ramp
        delayed = np.fft.ifft(shifted, axis=-1)
        passthrough = np.abs(delays) < DELAY_EPSILON_SAMPLES
        if np.any(passthrough):
            delayed[passthrough] = np.broadcast_to(waveforms, out_shape)[passthrough]
        return delayed

    def phase_walk(self, initials: np.ndarray, steps: np.ndarray) -> np.ndarray:
        phases = initials[:, None] + np.cumsum(steps, axis=1)
        # cos + 1j*sin of the real phase is bit-identical to exp(1j*phase)
        # and roughly twice as fast (no complex-exp scalar loop).
        walks = np.empty(phases.shape, dtype=_complex_for(phases.dtype))
        walks.real = np.cos(phases)
        walks.imag = np.sin(phases)
        return walks

    def ifft(self, a: np.ndarray) -> np.ndarray:
        return np.fft.ifft(a, axis=-1)


def delay_ramps(delays: np.ndarray, n: int) -> np.ndarray:
    """Linear-phase delay ramps ``exp(-2j*pi*f*d)`` for a stack of delays.

    A burst from a static client repeats the same per-path delays for every
    packet, so the ramps are computed once per *unique* trailing row and
    gathered back — the transcendentals are the expensive part.  The phase is
    evaluated with the same operand grouping as ``fractional_delay``
    (``(-2*pi*f) * d``), and ``cos + 1j*sin`` of a real phase is bit-identical
    to ``exp`` of the equivalent purely imaginary argument, so every row
    matches the scalar helper exactly.  float32 delays yield float32 phases
    and complex64 ramps (the reduced-precision synthesis mode).
    """
    frequencies = np.fft.fftfreq(n)
    base = (-2.0 * np.pi * frequencies).astype(delays.dtype, copy=False)
    cdtype = _complex_for(delays.dtype)
    if delays.ndim <= 1:
        unique = delays.reshape(1, -1) if delays.ndim else delays.reshape(1, 1)
        phases = base * unique[..., None]
        ramps = np.empty(phases.shape, dtype=cdtype)
        ramps.real = np.cos(phases)
        ramps.imag = np.sin(phases)
        return ramps.reshape(delays.shape + (n,))
    rows = delays.reshape(-1, delays.shape[-1])
    unique, inverse = np.unique(rows, axis=0, return_inverse=True)
    phases = base * unique[..., None]
    ramps = np.empty(phases.shape, dtype=cdtype)
    ramps.real = np.cos(phases)
    ramps.imag = np.sin(phases)
    if unique.shape[0] == 1:
        # Static-client bursts repeat one delay row; broadcast a read-only
        # view instead of materialising B copies.
        return np.broadcast_to(ramps[0], delays.shape + (n,))
    gathered = ramps[inverse.reshape(-1)]
    return gathered.reshape(delays.shape + (n,))


# --------------------------------------------------------------------- torch
class TorchBackend(Backend):
    """PyTorch implementations of the kernels (CPU or CUDA).

    Arrays cross the boundary per kernel call: numpy in, one device round
    trip, numpy out.  Results match the numpy backend to floating-point
    tolerance (not bit-exactly — different BLAS/FFT implementations), which
    the skip-if-unavailable equivalence tests assert.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        try:
            import torch
        except ImportError as error:
            raise BackendUnavailableError(
                "the 'torch' compute backend requires PyTorch, which is not "
                "installed; install it with: pip install 'repro[gpu]' "
                "(or pip install torch)") from error
        self._torch = torch
        if device is None:
            device = os.environ.get(
                "REPRO_TORCH_DEVICE",
                "cuda" if torch.cuda.is_available() else "cpu")
        self.device = torch.device(device)

    def as_xp(self, array: np.ndarray) -> Any:
        array = np.asarray(array)
        if not array.flags.writeable or not array.flags.c_contiguous:
            # torch.from_numpy refuses read-only buffers and broadcast views.
            array = np.ascontiguousarray(array).copy()
        return self._torch.from_numpy(array).to(self.device)

    def to_numpy(self, array: Any) -> np.ndarray:
        return array.detach().cpu().numpy()

    def eigh(self, matrices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        values, vectors = self._torch.linalg.eigh(self.as_xp(matrices))
        return self.to_numpy(values), self.to_numpy(vectors)

    def inv(self, matrices: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._torch.linalg.inv(self.as_xp(matrices)))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._torch.matmul(self.as_xp(a), self.as_xp(b)))

    def correlation_stack(self, samples_list: Sequence[np.ndarray]) -> np.ndarray:
        n = samples_list[0].shape[0]
        dtype = np.result_type(*(samples.dtype for samples in samples_list))
        matrices = np.empty((len(samples_list), n, n), dtype=dtype)
        for index, samples in enumerate(samples_list):
            x = self.as_xp(np.ascontiguousarray(samples, dtype=dtype))
            product = self._torch.matmul(x, x.conj().mT) / samples.shape[1]
            matrices[index] = self.to_numpy(product)
        return matrices

    def music_projection_power(self, signal: np.ndarray,
                               steering: np.ndarray) -> np.ndarray:
        projections = self._torch.matmul(
            self.as_xp(signal).conj().mT, self.as_xp(steering))
        return self.to_numpy(self._torch.sum(self._torch.abs(projections) ** 2,
                                             dim=1))

    def beamscan_numerator(self, matrices: np.ndarray,
                           steering: np.ndarray) -> np.ndarray:
        a = self.as_xp(steering)
        quadratic = a.conj() * self._torch.matmul(self.as_xp(matrices), a)
        return self.to_numpy(self._torch.sum(quadratic.real, dim=1))

    def steering_stack(self, positions: np.ndarray, angles_deg: Sequence[float],
                       wavelength_m: float) -> np.ndarray:
        torch = self._torch
        theta = torch.deg2rad(self.as_xp(
            np.asarray(angles_deg, dtype=float).reshape(-1)))
        directions = torch.stack([torch.cos(theta), torch.sin(theta)], dim=0)
        projection = torch.matmul(self.as_xp(np.asarray(positions, dtype=float)),
                                  directions)
        phases = (-2.0 * np.pi / wavelength_m) * projection
        return self.to_numpy(torch.exp(1j * phases).mT)

    def fractional_delay(self, waveforms: np.ndarray, delays: np.ndarray,
                         out_shape: Tuple[int, ...]) -> np.ndarray:
        torch = self._torch
        n = out_shape[-1]
        spectra = torch.fft.fft(self.as_xp(waveforms), dim=-1)
        frequencies = self.as_xp(np.fft.fftfreq(n).astype(delays.dtype))
        phases = (-2.0 * np.pi) * frequencies * self.as_xp(delays)[..., None]
        ramp = torch.exp(1j * phases)
        delayed = torch.fft.ifft(spectra.broadcast_to(out_shape) * ramp, dim=-1)
        delayed = self.to_numpy(delayed)
        passthrough = np.abs(delays) < DELAY_EPSILON_SAMPLES
        if np.any(passthrough):
            delayed[passthrough] = np.broadcast_to(waveforms, out_shape)[passthrough]
        return delayed

    def phase_walk(self, initials: np.ndarray, steps: np.ndarray) -> np.ndarray:
        torch = self._torch
        phases = self.as_xp(initials)[:, None] + torch.cumsum(
            self.as_xp(steps), dim=1)
        return self.to_numpy(torch.exp(1j * phases)).astype(
            _complex_for(steps.dtype), copy=False)

    def ifft(self, a: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._torch.fft.ifft(self.as_xp(a), dim=-1))


# ---------------------------------------------------------------------- cupy
class CupyBackend(Backend):
    """CuPy implementations of the kernels (CUDA GPUs).

    Same boundary contract as :class:`TorchBackend`: numpy in, numpy out,
    tolerance-level (not bit-exact) agreement with the numpy backend.
    """

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as error:
            raise BackendUnavailableError(
                "the 'cupy' compute backend requires CuPy, which is not "
                "installed; install it with: pip install 'repro[gpu]' "
                "(or pip install cupy-cuda12x for your CUDA version)") from error
        self._cupy = cupy

    def as_xp(self, array: np.ndarray) -> Any:
        return self._cupy.asarray(array)

    def to_numpy(self, array: Any) -> np.ndarray:
        return self._cupy.asnumpy(array)

    def eigh(self, matrices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        values, vectors = self._cupy.linalg.eigh(self.as_xp(matrices))
        return self.to_numpy(values), self.to_numpy(vectors)

    def inv(self, matrices: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._cupy.linalg.inv(self.as_xp(matrices)))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._cupy.matmul(self.as_xp(a), self.as_xp(b)))

    def correlation_stack(self, samples_list: Sequence[np.ndarray]) -> np.ndarray:
        cupy = self._cupy
        n = samples_list[0].shape[0]
        dtype = np.result_type(*(samples.dtype for samples in samples_list))
        matrices = np.empty((len(samples_list), n, n), dtype=dtype)
        for index, samples in enumerate(samples_list):
            x = self.as_xp(np.ascontiguousarray(samples, dtype=dtype))
            matrices[index] = self.to_numpy(
                cupy.matmul(x, x.conj().T) / samples.shape[1])
        return matrices

    def music_projection_power(self, signal: np.ndarray,
                               steering: np.ndarray) -> np.ndarray:
        cupy = self._cupy
        projections = cupy.matmul(self.as_xp(signal).conj().transpose(0, 2, 1),
                                  self.as_xp(steering))
        return self.to_numpy(cupy.sum(cupy.abs(projections) ** 2, axis=1))

    def beamscan_numerator(self, matrices: np.ndarray,
                           steering: np.ndarray) -> np.ndarray:
        cupy = self._cupy
        a = self.as_xp(steering)
        quadratic = a.conj() * cupy.matmul(self.as_xp(matrices), a)
        return self.to_numpy(cupy.sum(quadratic.real, axis=1))

    def steering_stack(self, positions: np.ndarray, angles_deg: Sequence[float],
                       wavelength_m: float) -> np.ndarray:
        cupy = self._cupy
        theta = cupy.deg2rad(self.as_xp(
            np.asarray(angles_deg, dtype=float).reshape(-1)))
        directions = cupy.stack([cupy.cos(theta), cupy.sin(theta)], axis=0)
        projection = self.as_xp(np.asarray(positions, dtype=float)) @ directions
        phases = (-2.0 * np.pi / wavelength_m) * projection
        return self.to_numpy(cupy.exp(1j * phases).T)

    def fractional_delay(self, waveforms: np.ndarray, delays: np.ndarray,
                         out_shape: Tuple[int, ...]) -> np.ndarray:
        cupy = self._cupy
        n = out_shape[-1]
        spectra = cupy.fft.fft(self.as_xp(waveforms), axis=-1)
        frequencies = self.as_xp(np.fft.fftfreq(n).astype(delays.dtype))
        phases = (-2.0 * np.pi) * frequencies * self.as_xp(delays)[..., None]
        delayed = cupy.fft.ifft(
            cupy.broadcast_to(spectra, out_shape) * cupy.exp(1j * phases), axis=-1)
        delayed = self.to_numpy(delayed)
        passthrough = np.abs(delays) < DELAY_EPSILON_SAMPLES
        if np.any(passthrough):
            delayed[passthrough] = np.broadcast_to(waveforms, out_shape)[passthrough]
        return delayed

    def phase_walk(self, initials: np.ndarray, steps: np.ndarray) -> np.ndarray:
        cupy = self._cupy
        phases = self.as_xp(initials)[:, None] + cupy.cumsum(self.as_xp(steps),
                                                             axis=1)
        return self.to_numpy(cupy.exp(1j * phases)).astype(
            _complex_for(steps.dtype), copy=False)

    def ifft(self, a: np.ndarray) -> np.ndarray:
        return self.to_numpy(self._cupy.fft.ifft(self.as_xp(a), axis=-1))


# ------------------------------------------------------------------ resolver
_BACKEND_CACHE: Dict[str, Backend] = {}


def get_backend(name: Union[None, str, Backend] = None) -> Backend:
    """Resolve a compute backend by name.

    Resolution order: the explicit ``name`` argument, then the
    ``REPRO_BACKEND`` environment variable, then ``"numpy"``.  Backend
    instances pass through unchanged, so resolved backends can be handed
    around.  Unknown names raise ``ValueError``; known-but-missing optional
    backends raise :class:`BackendUnavailableError` naming the pip extra.
    """
    if isinstance(name, Backend):
        return name
    if name is None:
        name = os.environ.get("REPRO_BACKEND") or "numpy"
    key = str(name).strip().lower()
    cached = _BACKEND_CACHE.get(key)
    if cached is not None:
        return cached
    if key == "numpy":
        backend: Backend = NumpyBackend()
    elif key == "torch":
        backend = TorchBackend()
    elif key == "cupy":
        backend = CupyBackend()
    else:
        raise ValueError(
            f"unknown compute backend {name!r}; known backends: "
            + ", ".join(BACKEND_NAMES))
    _BACKEND_CACHE[key] = backend
    return backend


def available_backends() -> Dict[str, bool]:
    """Which backends can actually be constructed in this environment."""
    availability = {"numpy": True}
    for name in ("torch", "cupy"):
        try:
            get_backend(name)
        except BackendUnavailableError:
            availability[name] = False
        else:
            availability[name] = True
    return availability


def backend_extra(name: str) -> Optional[str]:
    """The pip extra that provides an optional backend (None for numpy)."""
    return _BACKEND_EXTRAS.get(str(name).strip().lower())
