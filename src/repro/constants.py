"""Physical and protocol constants used throughout the SecureAngle reproduction.

The prototype in the paper operates in the 2.4 GHz ISM band with antennas
spaced at half a wavelength (6.13 cm), which corresponds to a carrier of
roughly 2.447 GHz (802.11 channel 8).  All defaults below follow the
prototype described in Section 3 of the paper.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Default carrier frequency (Hz).  802.11 channel 8 centre frequency; chosen
#: so that half a wavelength is 6.13 cm, matching the element spacing quoted
#: in Section 3 of the paper.
DEFAULT_CARRIER_FREQUENCY_HZ = 2.447e9

#: Default complex-baseband sampling rate (Hz).  The WARP prototype samples
#: 20 MHz of bandwidth.
DEFAULT_SAMPLE_RATE_HZ = 20e6

#: Default capture buffer duration (seconds).  The prototype buffers 0.4 ms of
#: samples before shipping them over Ethernet for processing.
DEFAULT_CAPTURE_DURATION_S = 0.4e-3

#: Number of antennas on the prototype access point (two WARP boards with four
#: radio front ends each).
DEFAULT_NUM_ANTENNAS = 8

#: Side length (metres) of the octagonal antenna arrangement used for the
#: circular configuration in the prototype.
OCTAGON_SIDE_LENGTH_M = 0.047

#: Attenuation (dB) inserted between the calibration source and the splitter
#: feeding the radio front ends.
CALIBRATION_ATTENUATION_DB = 36.0

#: Number of OFDM subcarriers in an 802.11a/g 20 MHz channel.
OFDM_FFT_SIZE = 64

#: Number of data + pilot subcarriers actually occupied in 802.11a/g.
OFDM_OCCUPIED_SUBCARRIERS = 52

#: OFDM cyclic-prefix length in samples at 20 MHz.
OFDM_CYCLIC_PREFIX = 16

#: Boltzmann constant (J/K), used for thermal-noise floor computations.
BOLTZMANN_CONSTANT = 1.380649e-23

#: Reference temperature (K) for noise-figure calculations.
REFERENCE_TEMPERATURE_K = 290.0


def wavelength(frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ) -> float:
    """Return the free-space wavelength in metres for ``frequency_hz``.

    Raises
    ------
    ValueError
        If ``frequency_hz`` is not strictly positive.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def half_wavelength(frequency_hz: float = DEFAULT_CARRIER_FREQUENCY_HZ) -> float:
    """Return half a wavelength in metres for ``frequency_hz``."""
    return wavelength(frequency_hz) / 2.0


def thermal_noise_power_dbm(bandwidth_hz: float,
                            temperature_k: float = REFERENCE_TEMPERATURE_K) -> float:
    """Thermal noise power (dBm) in ``bandwidth_hz`` at ``temperature_k``.

    The classic kTB floor: roughly -101 dBm in 20 MHz at room temperature.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    power_w = BOLTZMANN_CONSTANT * temperature_k * bandwidth_hz
    return 10.0 * math.log10(power_w * 1e3)
