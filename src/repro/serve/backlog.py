"""A bounded ring buffer of recent events with subscriber cursors.

The service keeps the last ``capacity`` decisions per tenant in a
:class:`Backlog` (modeled on ESPARGOS's ``backlog.py``/``pool.py`` pattern of
subscriber callbacks over a ring buffer).  Publishing never blocks: when the
ring is full the oldest event is dropped (**drop-oldest**), so a stalled
consumer can never wedge the ingest path.

Consumers come in two shapes:

* **Callbacks** — :meth:`Backlog.add_callback` registers a synchronous
  ``callback(item, seq)`` fired inline on every publish (the ESPARGOS
  style); use for in-process taps like metrics.
* **Subscriptions** — :meth:`Backlog.subscribe` returns a
  :class:`BacklogSubscription` holding a **per-subscriber cursor** into the
  shared ring.  Each subscriber drains at its own pace; a slow subscriber
  whose cursor falls off the ring loses exactly the dropped span and the
  loss is *accounted* (:attr:`BacklogSubscription.lagged`), never silent.

Everything is single-event-loop concurrency: no locks, publishes are plain
method calls, and ``await``-ing subscribers are woken through one-shot
futures.  The synchronous surface (publish/collect) also works with no event
loop at all, which keeps unit tests and offline replays trivial.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Backlog", "BacklogSubscription"]

#: ``callback(item, seq)`` fired synchronously on every publish.
Callback = Callable[[Any, int], None]


class Backlog:
    """A drop-oldest ring buffer of published items with monotonic seqs."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"backlog capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Deque[Any] = deque()
        #: Sequence number of ``self._ring[0]`` (== next_seq when empty).
        self._first_seq = 0
        #: Sequence number the next published item will get.
        self._next_seq = 0
        #: Items dropped off the tail over the backlog's lifetime.
        self._dropped = 0
        self._closed = False
        self._callbacks: Dict[int, Callback] = {}
        self._next_callback_id = 0
        self._waiters: List["asyncio.Future[None]"] = []

    # ------------------------------------------------------------- properties
    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest item still in the ring."""
        return self._first_seq

    @property
    def next_seq(self) -> int:
        """Sequence number the next published item will receive."""
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Total items dropped off the tail since construction."""
        return self._dropped

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (no further publishes)."""
        return self._closed

    def __len__(self) -> int:
        return len(self._ring)

    # -------------------------------------------------------------- publishing
    def publish(self, item: Any) -> int:
        """Append ``item``, dropping the oldest entry when full.

        Fires every registered callback synchronously, wakes blocked
        subscribers, and returns the item's sequence number.  Never blocks.
        """
        if self._closed:
            raise RuntimeError("cannot publish to a closed backlog")
        seq = self._next_seq
        self._next_seq += 1
        self._ring.append(item)
        if len(self._ring) > self.capacity:
            self._ring.popleft()
            self._first_seq += 1
            self._dropped += 1
        for callback in list(self._callbacks.values()):
            callback(item, seq)
        self._wake()
        return seq

    def close(self) -> None:
        """Stop the stream: publishes fail, blocked subscribers drain out."""
        self._closed = True
        self._wake()

    # -------------------------------------------------------------- consumers
    def add_callback(self, callback: Callback) -> int:
        """Register ``callback(item, seq)`` fired on every publish."""
        handle = self._next_callback_id
        self._next_callback_id += 1
        self._callbacks[handle] = callback
        return handle

    def remove_callback(self, handle: int) -> None:
        """Unregister a callback by the handle :meth:`add_callback` returned."""
        self._callbacks.pop(handle, None)

    def subscribe(self, from_seq: Optional[int] = None) -> "BacklogSubscription":
        """A new subscription with its own cursor.

        ``from_seq=None`` starts at the live head (only future items);
        ``from_seq=0`` replays everything still in the ring.  A ``from_seq``
        older than the ring's tail is clamped and the skipped span counts as
        lag for this subscriber.
        """
        cursor = self._next_seq if from_seq is None else int(from_seq)
        if cursor < 0 or cursor > self._next_seq:
            raise ValueError(
                f"from_seq must be in [0, {self._next_seq}], got {from_seq}")
        return BacklogSubscription(self, cursor)

    def slice_from(self, cursor: int) -> Tuple[List[Any], int, int]:
        """``(items, new_cursor, dropped)`` for everything at/after ``cursor``.

        ``dropped`` is how many items between ``cursor`` and the ring's tail
        were already evicted (a slow reader's loss).
        """
        dropped = max(0, self._first_seq - cursor)
        start = max(cursor, self._first_seq)
        items = list(self._ring)[start - self._first_seq:]
        return items, self._next_seq, dropped

    # --------------------------------------------------------------- waiting
    async def wait_for_publish(self) -> None:
        """Block until the next publish (or close).  Spurious wakes possible."""
        if self._closed:
            return
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[None]" = loop.create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        finally:
            if waiter in self._waiters:
                self._waiters.remove(waiter)

    def _wake(self) -> None:
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()


class BacklogSubscription:
    """One consumer's cursor into a :class:`Backlog`."""

    def __init__(self, backlog: Backlog, cursor: int) -> None:
        self.backlog = backlog
        #: Next sequence number this subscriber has not consumed yet.
        self.cursor = cursor
        #: Total items this subscriber lost to drop-oldest eviction.
        self.lagged = 0
        self._unreported_lag = 0

    @property
    def pending(self) -> int:
        """Published-but-unconsumed items (including already-evicted ones)."""
        return self.backlog.next_seq - self.cursor

    def collect(self) -> List[Any]:
        """Everything published since the last collect (non-blocking).

        Advances the cursor.  Items this subscriber was too slow for are
        added to :attr:`lagged` and reported once by :meth:`consume_lag`.
        """
        items, self.cursor, dropped = self.backlog.slice_from(self.cursor)
        if dropped:
            self.lagged += dropped
            self._unreported_lag += dropped
        return items

    def consume_lag(self) -> int:
        """Lag accumulated since the last call (and reset the report)."""
        lag = self._unreported_lag
        self._unreported_lag = 0
        return lag

    async def next_batch(self) -> List[Any]:
        """Block until at least one new item, then collect it.

        Returns an empty list only when the backlog is closed and fully
        drained — the subscriber's end-of-stream signal.
        """
        while True:
            items = self.collect()
            if items:
                return items
            if self.backlog.closed:
                return []
            await self.backlog.wait_for_publish()
