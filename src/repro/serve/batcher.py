"""Micro-batching of packet arrivals under a latency budget.

``Deployment.run_batch`` amortises capture synthesis and MUSIC analysis over
a whole batch (PR 1/PR 3), but a live service receives packets one at a
time.  :class:`MicroBatcher` bridges the two: arrivals accumulate in a FIFO
and are released as one batch when either

* ``max_batch`` items are waiting (the batch is full), or
* ``max_delay_s`` has elapsed since the *oldest* waiting item arrived
  (the latency budget is spent), or
* the batcher is closed (the final partial batch flushes).

Because decisions are batch-partition invariant (the PR 1 shared-kernel
guarantee, pinned by ``tests/test_synthesis_batch_equivalence.py``), *any*
chop the batcher produces yields bit-identical decisions — the knobs trade
throughput against decision latency without touching results.

Implementation note: this deliberately does not use ``asyncio.Queue`` +
``wait_for``.  On Python 3.9, cancelling ``queue.get()`` on timeout can lose
a retrieved item to the race between fulfilment and cancellation; a plain
``deque`` drained synchronously plus one-shot wake futures has no such
window.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, List, Optional

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Group single arrivals into batches under a latency budget."""

    def __init__(self, max_batch: int = 16, max_delay_s: float = 0.02,
                 max_pending: int = 4096) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if max_pending < max_batch:
            raise ValueError("max_pending must be >= max_batch")
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.max_pending = int(max_pending)
        self._pending: Deque[Any] = deque()
        #: Loop time the oldest pending item arrived (None when empty).
        self._oldest_s: Optional[float] = None
        self._closed = False
        self._arrival_waiters: List["asyncio.Future[None]"] = []
        self._space_waiters: List["asyncio.Future[None]"] = []
        #: Totals for the stats endpoint.
        self.submitted = 0
        self.batches = 0
        self.flushed = 0

    # -------------------------------------------------------------- producers
    @property
    def pending(self) -> int:
        """Items waiting for the next batch."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, item: Any) -> None:
        """Enqueue one arrival, blocking while the FIFO is at ``max_pending``.

        The block is the service's backpressure: a producer outrunning the
        pipeline waits here instead of growing memory without bound.
        """
        while len(self._pending) >= self.max_pending and not self._closed:
            await self._wait(self._space_waiters)
        if self._closed:
            raise RuntimeError("cannot put into a closed batcher")
        if not self._pending:
            self._oldest_s = asyncio.get_running_loop().time()
        self._pending.append(item)
        self.submitted += 1
        self._wake(self._arrival_waiters)

    def close(self) -> None:
        """No further puts; pending items drain as one final batch."""
        self._closed = True
        self._wake(self._arrival_waiters)
        self._wake(self._space_waiters)

    # -------------------------------------------------------------- consumer
    async def next_batch(self) -> List[Any]:
        """The next batch, honouring the size and latency budgets.

        Returns ``[]`` exactly once the batcher is closed and drained —
        the consumer's end-of-stream signal.
        """
        loop = asyncio.get_running_loop()
        while True:
            if len(self._pending) >= self.max_batch or self._closed:
                break
            if self._pending:
                elapsed = loop.time() - (self._oldest_s or 0.0)
                remaining = self.max_delay_s - elapsed
                if remaining <= 0:
                    break
                await self._wait(self._arrival_waiters, timeout=remaining)
            else:
                await self._wait(self._arrival_waiters)
        batch = [self._pending.popleft()
                 for _ in range(min(self.max_batch, len(self._pending)))]
        self._oldest_s = loop.time() if self._pending else None
        if batch:
            self.batches += 1
            self.flushed += len(batch)
            self._wake(self._space_waiters)
        return batch

    # --------------------------------------------------------------- waiting
    async def _wait(self, waiters: List["asyncio.Future[None]"],
                    timeout: Optional[float] = None) -> None:
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[None]" = loop.create_future()
        waiters.append(waiter)
        handle: Optional[asyncio.TimerHandle] = None
        if timeout is not None:
            handle = loop.call_later(
                timeout, lambda: waiter.done() or waiter.set_result(None))
        try:
            await waiter
        finally:
            if handle is not None:
                handle.cancel()
            if waiter in waiters:
                waiters.remove(waiter)

    @staticmethod
    def _wake(waiters: List["asyncio.Future[None]"]) -> None:
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)
        waiters.clear()
