"""The service: tenants + transports + lifecycle under one event loop.

:class:`SecureAngleService` owns the tenant table, binds the JSON-lines TCP
endpoint and (optionally) the websocket endpoint, and runs every tenant's
worker coroutine.  Binding port ``0`` asks the OS for ephemeral ports; the
*announce file* (``--announce``) then publishes the actually-bound addresses
as JSON — written atomically (tmp + ``os.replace``) so a watching test or CI
job never reads a torn document.

:func:`run_service` is the blocking entry point the CLI uses: it stands the
service up, serves until SIGINT/SIGTERM, and tears down cleanly (flushing
every tenant's pending micro-batches so subscribers see ``end``, not a
dropped connection).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.tenants import Tenant, TenantConfig
from repro.serve.transports import serve_tcp_connection, serve_ws_connection

__all__ = ["SecureAngleService", "ServeConfig", "run_service"]


@dataclass(frozen=True)
class ServeConfig:
    """Service-level knobs (tenant pipelines all share these budgets)."""

    host: str = "127.0.0.1"
    #: TCP JSON-lines port (0 = ephemeral, published via the announce file).
    port: int = 0
    #: Websocket port (None = no websocket endpoint, 0 = ephemeral).
    ws_port: Optional[int] = None
    #: Micro-batching: flush at this many pending requests ...
    max_batch: int = 16
    #: ... or once the oldest pending request has waited this long.
    max_delay_s: float = 0.02
    #: Ingest FIFO bound per tenant (producers block beyond it).
    max_pending: int = 4096
    #: Ring-buffer capacity of each tenant's event backlog.
    backlog_capacity: int = 1024
    #: Where to atomically publish the bound addresses as JSON.
    announce_path: Optional[Path] = None


class SecureAngleService:
    """A running multi-tenant decision service."""

    def __init__(self, tenant_configs: Sequence[TenantConfig],
                 config: ServeConfig = ServeConfig()) -> None:
        if not tenant_configs:
            raise ValueError("a service needs at least one tenant")
        names = [tenant.name for tenant in tenant_configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        self.config = config
        self.tenants: Dict[str, Tenant] = {
            tenant_config.name: Tenant(
                tenant_config,
                max_batch=config.max_batch,
                max_delay_s=config.max_delay_s,
                max_pending=config.max_pending,
                backlog_capacity=config.backlog_capacity,
            )
            for tenant_config in tenant_configs
        }
        self._servers: List[asyncio.AbstractServer] = []
        self._stopping: Optional["asyncio.Event"] = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the endpoints, start every tenant worker, announce."""
        self._stopping = asyncio.Event()
        for tenant in self.tenants.values():
            tenant.start()
        tcp_server = await asyncio.start_server(
            lambda reader, writer: serve_tcp_connection(self, reader, writer),
            host=self.config.host, port=self.config.port)
        self._servers.append(tcp_server)
        if self.config.ws_port is not None:
            ws_server = await asyncio.start_server(
                lambda reader, writer: serve_ws_connection(self, reader, writer),
                host=self.config.host, port=self.config.ws_port)
            self._servers.append(ws_server)
        if self.config.announce_path is not None:
            _write_json_atomically(self.config.announce_path, self.announcement())

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop` (or :meth:`stop`) is called."""
        if self._stopping is None:
            raise RuntimeError("serve_forever() before start()")
        await self._stopping.wait()

    def request_stop(self) -> None:
        """Signal-handler-safe: unblock :meth:`serve_forever`."""
        if self._stopping is not None:
            self._stopping.set()

    async def stop(self) -> None:
        """Drain tenants (flushing pending batches), then close sockets."""
        self.request_stop()
        for tenant in self.tenants.values():
            await tenant.stop()
        servers, self._servers = self._servers, []
        for server in servers:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------ observability
    @property
    def tcp_address(self) -> Tuple[str, int]:
        """The bound (host, port) of the JSON-lines endpoint."""
        return self._bound_address(0)

    @property
    def ws_address(self) -> Optional[Tuple[str, int]]:
        """The bound (host, port) of the websocket endpoint, if enabled."""
        if self.config.ws_port is None:
            return None
        return self._bound_address(1)

    def _bound_address(self, index: int) -> Tuple[str, int]:
        if index >= len(self._servers):
            raise RuntimeError("service is not started")
        sockets = self._servers[index].sockets or []
        name = sockets[0].getsockname()
        return str(name[0]), int(name[1])

    def announcement(self) -> Dict[str, Any]:
        """The JSON document published to the announce file."""
        host, port = self.tcp_address
        ws = self.ws_address
        return {
            "host": host,
            "tcp_port": port,
            "ws_port": None if ws is None else ws[1],
            "tenants": sorted(self.tenants),
            "pid": os.getpid(),
        }

    def stats(self) -> Dict[str, Any]:
        """Per-tenant counters for the ``stats`` op."""
        report: Dict[str, Any] = {}
        for name, tenant in self.tenants.items():
            snapshot = tenant.stats.snapshot()
            snapshot["pending"] = tenant.batcher.pending
            snapshot["backlog_dropped"] = tenant.backlog.dropped
            report[name] = snapshot
        return report


def _write_json_atomically(path: Path, payload: Dict[str, Any]) -> None:
    """Publish ``payload`` at ``path`` with no torn-read window."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


def run_service(tenant_configs: Sequence[TenantConfig],
                config: ServeConfig = ServeConfig(),
                announce: Optional[Union[str, Path]] = None) -> None:
    """Stand the service up and serve until SIGINT/SIGTERM (blocking)."""
    if announce is not None:
        from dataclasses import replace as _replace
        config = _replace(config, announce_path=Path(announce))

    async def _main() -> None:
        service = SecureAngleService(tenant_configs, config)
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, service.request_stop)
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    asyncio.run(_main())
