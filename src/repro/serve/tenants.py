"""Multi-tenant deployments: named pipelines sharing one event loop.

A *tenant* is one named :class:`~repro.api.deployment.Deployment` wired into
the service: its own ingest FIFO (:class:`~repro.serve.batcher.MicroBatcher`),
its own event ring (:class:`~repro.serve.backlog.Backlog`), its own worker
coroutine — but one shared process.  Tenants compiled from similar scenarios
share the process-global memoized manifold/steering tables (PR 1's kernel
caches key on array geometry, not on the owning deployment), so ten tenants
of the same floor plan cost one table build.

Determinism contract: :meth:`Tenant.submit` assigns each request a
**monotonic per-tenant sequence number at submission time**, the worker
carries it through whatever micro-batches the budget produced, and stamps it
into the event's ``index``.  Streamed events therefore carry exactly the
indices :func:`~repro.serve.ingest.replay_events` assigns offline, making
"byte-identical to ``run_batch``" a checkable equality instead of a slogan.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.api.deployment import Deployment
from repro.api.events import PacketEvent
from repro.api.scenarios import SCENARIOS
from repro.api.spec import ScenarioSpec
from repro.serve.backlog import Backlog
from repro.serve.batcher import MicroBatcher
from repro.serve.ingest import PacketRequest, synthesize_packet

__all__ = ["Tenant", "TenantConfig", "resolve_scenario"]


def resolve_scenario(token: str) -> ScenarioSpec:
    """A scenario from a registry name (``fence``) or a JSON file path.

    Anything containing a path separator or ending in ``.json`` is loaded as
    a :class:`ScenarioSpec` document; everything else goes through the
    :data:`~repro.api.scenarios.SCENARIOS` registry (with its did-you-mean
    errors).
    """
    if token.endswith(".json") or "/" in token or "\\" in token:
        return ScenarioSpec.load_json(Path(token))
    factory = SCENARIOS.get(token)
    spec = factory()  # type: ignore[operator]
    assert isinstance(spec, ScenarioSpec)
    return spec


@dataclass(frozen=True)
class TenantConfig:
    """Everything needed to stand up (or offline-replay) one tenant."""

    name: str
    spec: ScenarioSpec
    #: Client ids whose certified signatures are trained at startup, in
    #: order — part of the deterministic state the offline replay rebuilds.
    train: Tuple[int, ...] = ()
    update_signatures: bool = True
    primary_ap: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or "=" in self.name:
            raise ValueError(f"invalid tenant name {self.name!r}")

    @classmethod
    def from_cli_arg(cls, text: str, train: Tuple[int, ...] = ()) -> "TenantConfig":
        """Parse the CLI's ``NAME=SCENARIO`` form (scenario name or .json)."""
        name, separator, token = text.partition("=")
        if not separator or not name or not token:
            raise ValueError(
                f"tenant must look like NAME=SCENARIO, got {text!r}")
        return cls(name=name, spec=resolve_scenario(token), train=train)

    def build(self) -> Deployment:
        """Compile the deployment and train the configured signatures.

        The one constructor both the live service and the offline reference
        use — byte identity requires identical starting state.
        """
        deployment = Deployment(self.spec)
        for client_id in self.train:
            deployment.train(deployment.clients[client_id].address, client_id)
        return deployment

    def describe(self) -> Dict[str, Any]:
        """The wire form served by the ``tenants`` op.

        Carries the full scenario document so a client can rebuild the
        identical deployment and verify the stream against its own replay.
        """
        return {
            "name": self.name,
            "scenario": json.loads(self.spec.to_json()),
            "train": list(self.train),
            "update_signatures": self.update_signatures,
            "primary_ap": self.primary_ap,
        }


@dataclass
class TenantStats:
    """Counters the ``stats`` op reports per tenant."""

    submitted: int = 0
    published: int = 0
    batches: int = 0
    #: Rolling submit->publish wall-clock latencies (seconds), newest last.
    recent_latency_s: Deque[float] = field(
        default_factory=lambda: deque(maxlen=4096))

    def snapshot(self) -> Dict[str, Any]:
        latencies = sorted(self.recent_latency_s)
        return {
            "submitted": self.submitted,
            "published": self.published,
            "batches": self.batches,
            "mean_batch": (self.published / self.batches
                           if self.batches else 0.0),
            "p50_latency_s": _percentile(latencies, 0.50),
            "p99_latency_s": _percentile(latencies, 0.99),
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


class Tenant:
    """One live pipeline: ingest FIFO -> micro-batches -> event backlog."""

    def __init__(self, config: TenantConfig, *, max_batch: int = 16,
                 max_delay_s: float = 0.02, max_pending: int = 4096,
                 backlog_capacity: int = 1024) -> None:
        self.config = config
        self.deployment = config.build()
        self.batcher = MicroBatcher(max_batch=max_batch,
                                    max_delay_s=max_delay_s,
                                    max_pending=max_pending)
        self.backlog = Backlog(capacity=backlog_capacity)
        self.stats = TenantStats()
        self._next_seq = 0
        self._worker: Optional["asyncio.Task[None]"] = None

    @property
    def name(self) -> str:
        return self.config.name

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the worker coroutine on the running loop (idempotent)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"tenant-{self.name}")

    async def stop(self) -> None:
        """Flush pending requests, close the backlog, and join the worker."""
        self.batcher.close()
        if self._worker is not None:
            await self._worker
            self._worker = None
        elif not self.backlog.closed:
            self.backlog.close()

    # ----------------------------------------------------------------- ingest
    async def submit(self, request: PacketRequest) -> int:
        """Enqueue one request; returns its per-tenant sequence number.

        The sequence number is assigned here, at submission, so the order
        clients observe is the order the offline replay numbers — however
        the micro-batcher later chops the queue.  Blocks only when the
        ingest FIFO is at capacity (backpressure).
        """
        seq = self._next_seq
        self._next_seq += 1
        arrival_s = asyncio.get_running_loop().time()
        await self.batcher.put((seq, request, arrival_s))
        self.stats.submitted += 1
        return seq

    # ----------------------------------------------------------------- worker
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self.batcher.next_batch()
            if not batch:
                break
            # Synthesis + analysis are pure CPU work on the loop thread; a
            # micro-batch is bounded by max_batch, so the stall per pass is
            # bounded too.  Running inline (not in a thread pool) keeps every
            # tenant's rng and kernel-cache access single-threaded, which the
            # determinism contract depends on.
            packets = [synthesize_packet(self.deployment, request)
                       for _, request, _ in batch]
            events = self.deployment.run_batch(
                packets, primary_ap=self.config.primary_ap,
                update_signatures=self.config.update_signatures)
            done_s = loop.time()
            for (seq, _, arrival_s), event in zip(batch, events):
                self.backlog.publish(replace(event, index=seq))
                self.stats.published += 1
                self.stats.recent_latency_s.append(done_s - arrival_s)
            self.stats.batches += 1
            # One checkpoint per micro-batch keeps slow consumers and new
            # producers responsive even under a saturating ingest stream.
            await asyncio.sleep(0)
        self.backlog.close()
