"""Packet ingest: the wire request schema and the shared synthesis path.

Network clients cannot ship raw multi-antenna CSI captures as JSON lines, so
the service ingests *packet requests* — small declarative records saying
"client 7 transmits at t=60.0s" or "attacker `directional` spoofs client 5
at t=200.5s" — and synthesizes the physical packet (frame + per-AP captures)
server-side through the deployment's own traffic generators.

The one rule that makes the whole service verifiable: **live and offline
paths share these functions.**  :func:`synthesize_packet` is called by the
live tenant worker per micro-batch, and :func:`replay_events` — the offline
reference — calls it over the identical request list in the identical order.
Because capture synthesis consumes the deployment's master generator
deterministically in request order, and decisions are batch-partition
invariant (``tests/test_synthesis_batch_equivalence.py``), the streamed
events are byte-identical to the offline replay no matter how the
micro-batcher happened to chop the arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional

from repro.api.deployment import Deployment
from repro.api.events import Packet, PacketEvent
from repro.mac.address import MacAddress
from repro.utils.serde import JsonSerializable

__all__ = ["PacketRequest", "replay_events", "synthesize_packet"]


@dataclass(frozen=True)
class PacketRequest(JsonSerializable):
    """One packet's worth of ingest: who transmits, when, claiming what.

    Exactly one of ``client_id`` (legitimate uplink) or ``attacker`` (a
    spoofed transmission from the scenario's named attacker) must be set.
    An attacker request also names ``victim_client_id`` — the client whose
    trained address the attacker claims.  ``source`` optionally overrides a
    client frame's claimed source address (the client-side spoofing case).
    """

    client_id: Optional[int] = None
    attacker: Optional[str] = None
    victim_client_id: Optional[int] = None
    timestamp_s: float = 0.0
    source: Optional[MacAddress] = None

    def __post_init__(self) -> None:
        if (self.client_id is None) == (self.attacker is None):
            raise ValueError(
                "a PacketRequest names exactly one of client_id or attacker")
        if self.attacker is not None and self.victim_client_id is None:
            raise ValueError("an attacker request needs victim_client_id")


def synthesize_packet(deployment: Deployment,
                      request: PacketRequest) -> Packet:
    """Synthesize the physical packet a request describes.

    Consumes the deployment's rng streams exactly as the offline traffic
    generators do — byte identity between live and replayed events depends
    on calling this over the same requests in the same order.
    """
    if request.attacker is not None:
        victim_id = request.victim_client_id
        assert victim_id is not None  # enforced by __post_init__
        victim = deployment.clients[victim_id].address
        return next(deployment.attacker_packets(
            request.attacker, victim, num_packets=1,
            start_s=request.timestamp_s))
    client_id = request.client_id
    assert client_id is not None  # enforced by __post_init__
    return next(deployment.client_packets(
        client_id, num_packets=1, start_s=request.timestamp_s,
        source=request.source))


def replay_events(deployment: Deployment, requests: Iterable[PacketRequest],
                  *, primary_ap: Optional[str] = None,
                  update_signatures: bool = True) -> List[PacketEvent]:
    """The offline reference: replay a request log through one big batch.

    Returns the events the live service must match byte-for-byte (after
    stripping the volatile latency fields): same synthesis functions, same
    request order, same per-packet policy — with each event's ``index``
    renumbered to the request's position in the log, exactly as the live
    path stamps its per-tenant submission sequence numbers.
    """
    packets = [synthesize_packet(deployment, request) for request in requests]
    events = deployment.run_batch(packets, primary_ap=primary_ap,
                                  update_signatures=update_signatures)
    return [replace(event, index=seq) for seq, event in enumerate(events)]
