"""Wire transports: JSON-lines over TCP and text frames over websocket.

Both transports speak the same message protocol — one JSON object per
message — through one shared :class:`JsonConnection` dispatcher, so every op
behaves identically whichever socket it arrived on:

* ``{"op": "tenants"}`` — the tenant table, each with its full scenario
  document (so a client can rebuild the deployment and verify the stream).
* ``{"op": "submit", "tenant": t, "request": {...}}`` — ingest one
  :class:`~repro.serve.ingest.PacketRequest`; acked with its per-tenant
  sequence number.  ``"requests": [...]`` submits a burst in order.
* ``{"op": "subscribe", "tenant": t, "from_seq": n|null}`` — start
  streaming ``{"op": "event", ...}`` messages (decision, bearings, fence
  verdict) from the tenant's backlog; drop-oldest losses surface as
  ``{"op": "lag", "dropped": n}`` and a closed backlog as ``{"op": "end"}``.
* ``{"op": "stats"}`` / ``{"op": "ping"}`` — counters and liveness.

The websocket side is a deliberately small RFC 6455 implementation over
``asyncio`` streams (the container has no third-party websocket package):
HTTP upgrade handshake, masked client text frames, fragmentation,
ping/pong, close.  It exists so a browser dashboard can watch live verdicts
without a protocol bridge.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from typing import (
    TYPE_CHECKING,
    Any,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.api.events import EVENT_SCHEMA_VERSION
from repro.serve.ingest import PacketRequest
from repro.serve.tenants import Tenant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.service import SecureAngleService

__all__ = ["JsonConnection", "serve_tcp_connection", "serve_ws_connection"]

#: ``send(payload)`` delivers one protocol message to the peer.
SendJson = Callable[[Dict[str, Any]], Awaitable[None]]

#: Fixed GUID every websocket handshake concatenates (RFC 6455 section 1.3).
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class JsonConnection:
    """One client's protocol session, independent of the carrying socket."""

    def __init__(self, service: "SecureAngleService", send: SendJson) -> None:
        self.service = service
        self._send = send
        self._streams: Dict[str, "asyncio.Task[None]"] = {}

    async def hello(self) -> None:
        """The greeting every connection receives before any request."""
        await self._send({
            "op": "hello",
            "schema_version": EVENT_SCHEMA_VERSION,
            "tenants": sorted(self.service.tenants),
        })

    async def handle(self, message: Any) -> None:
        """Dispatch one decoded client message (errors go to the peer)."""
        if not isinstance(message, dict) or "op" not in message:
            await self._error("every message is an object with an 'op' key")
            return
        op = message["op"]
        try:
            if op == "ping":
                await self._send({"op": "pong"})
            elif op == "tenants":
                await self._send({
                    "op": "tenants",
                    "tenants": [tenant.config.describe() for tenant
                                in self.service.tenants.values()],
                })
            elif op == "stats":
                await self._send({"op": "stats",
                                  "stats": self.service.stats()})
            elif op == "submit":
                await self._handle_submit(message)
            elif op == "subscribe":
                await self._handle_subscribe(message)
            else:
                await self._error(f"unknown op {op!r}")
        except (KeyError, TypeError, ValueError) as error:
            await self._error(str(error), op=op)

    async def aclose(self) -> None:
        """Cancel this connection's subscription streams."""
        streams = list(self._streams.values())
        self._streams.clear()
        for stream in streams:
            stream.cancel()
        for stream in streams:
            try:
                await stream
            except asyncio.CancelledError:
                pass

    # -------------------------------------------------------------------- ops
    async def _handle_submit(self, message: Dict[str, Any]) -> None:
        tenant = self._tenant(message)
        if "requests" in message:
            documents = message["requests"]
        elif "request" in message:
            documents = [message["request"]]
        else:
            raise ValueError("submit needs 'request' or 'requests'")
        requests = [PacketRequest.from_dict(document)
                    for document in documents]
        seqs = [await tenant.submit(request) for request in requests]
        await self._send({"op": "ack", "tenant": tenant.name, "seqs": seqs})

    async def _handle_subscribe(self, message: Dict[str, Any]) -> None:
        tenant = self._tenant(message)
        if tenant.name in self._streams:
            raise ValueError(f"already subscribed to {tenant.name!r}")
        from_seq = message.get("from_seq")
        subscription = tenant.backlog.subscribe(
            None if from_seq is None else int(from_seq))
        self._streams[tenant.name] = asyncio.get_running_loop().create_task(
            self._stream(tenant, subscription))
        await self._send({"op": "subscribed", "tenant": tenant.name,
                          "from_seq": subscription.cursor})

    async def _stream(self, tenant: Tenant, subscription: Any) -> None:
        while True:
            events = await subscription.next_batch()
            lag = subscription.consume_lag()
            if lag:
                await self._send({"op": "lag", "tenant": tenant.name,
                                  "dropped": lag})
            if not events:
                await self._send({"op": "end", "tenant": tenant.name})
                self._streams.pop(tenant.name, None)
                return
            for event in events:
                await self._send({"op": "event", "tenant": tenant.name,
                                  "event": event.to_dict()})

    # -------------------------------------------------------------- internals
    def _tenant(self, message: Dict[str, Any]) -> Tenant:
        name = message.get("tenant")
        if not isinstance(name, str):
            raise ValueError("missing tenant name")
        try:
            return self.service.tenants[name]
        except KeyError:
            raise KeyError(f"unknown tenant {name!r}; "
                           f"known: {sorted(self.service.tenants)}") from None

    async def _error(self, text: str, op: Optional[str] = None) -> None:
        payload: Dict[str, Any] = {"op": "error", "error": text}
        if op is not None:
            payload["request_op"] = op
        await self._send(payload)


# ------------------------------------------------------------------ TCP lines
async def serve_tcp_connection(service: "SecureAngleService",
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
    """Speak the protocol as newline-delimited JSON over a TCP stream."""
    lock = asyncio.Lock()

    async def send(payload: Dict[str, Any]) -> None:
        # One lock per connection: subscription streams and replies
        # interleave on the same socket, and a torn line is unparseable.
        async with lock:
            writer.write(_encode_line(payload))
            await writer.drain()

    connection = JsonConnection(service, send)
    try:
        await connection.hello()
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.strip()
            if not text:
                continue
            try:
                message = json.loads(text)
            except json.JSONDecodeError as error:
                await send({"op": "error", "error": f"bad JSON line: {error}"})
                continue
            await connection.handle(message)
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        pass
    finally:
        await connection.aclose()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _encode_line(payload: Dict[str, Any]) -> bytes:
    # sort_keys pins the byte form, so "byte-identical" is testable on the
    # wire, not just after a client-side re-serialisation.
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


# ------------------------------------------------------------------ websocket
async def serve_ws_connection(service: "SecureAngleService",
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
    """Speak the protocol as JSON text frames over a websocket."""
    try:
        if not await _handshake(reader, writer):
            return
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return
    lock = asyncio.Lock()

    async def send(payload: Dict[str, Any]) -> None:
        async with lock:
            writer.write(_ws_frame(0x1, json.dumps(payload,
                                                   sort_keys=True).encode()))
            await writer.drain()

    connection = JsonConnection(service, send)
    try:
        await connection.hello()
        while True:
            text = await _read_text_message(reader, writer, lock)
            if text is None:
                break
            try:
                message = json.loads(text)
            except json.JSONDecodeError as error:
                await send({"op": "error", "error": f"bad JSON frame: {error}"})
                continue
            await connection.handle(message)
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        pass
    finally:
        await connection.aclose()
        try:
            async with lock:
                writer.write(_ws_frame(0x8, b""))  # close frame
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _handshake(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> bool:
    """The HTTP/1.1 upgrade exchange; True once 101 has been sent."""
    request_line = await reader.readline()
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    key = headers.get("sec-websocket-key")
    if (not request_line.startswith(b"GET")
            or "websocket" not in headers.get("upgrade", "").lower()
            or key is None):
        writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                     b"Connection: close\r\n\r\n"
                     b"expected a websocket upgrade\n")
        await writer.drain()
        writer.close()
        return False
    accept = base64.b64encode(
        hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()).decode("ascii")
    writer.write(("HTTP/1.1 101 Switching Protocols\r\n"
                  "Upgrade: websocket\r\n"
                  "Connection: Upgrade\r\n"
                  f"Sec-WebSocket-Accept: {accept}\r\n\r\n").encode("ascii"))
    await writer.drain()
    return True


async def _read_text_message(reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             lock: asyncio.Lock) -> Optional[str]:
    """The next complete text message; None on close or connection end.

    Handles fragmentation and answers pings inline.  Binary messages are
    rejected by closing — the protocol is JSON text only.
    """
    fragments: List[bytes] = []
    while True:
        try:
            opcode, payload, fin = await _read_frame(reader)
        except asyncio.IncompleteReadError:
            return None
        if opcode == 0x8:  # close
            return None
        if opcode == 0x9:  # ping -> pong, same payload
            async with lock:
                writer.write(_ws_frame(0xA, payload))
                await writer.drain()
            continue
        if opcode == 0xA:  # unsolicited pong
            continue
        if opcode == 0x2:  # binary unsupported
            return None
        if opcode in (0x0, 0x1):
            fragments.append(payload)
            if fin:
                return b"".join(fragments).decode("utf-8")


async def _read_frame(
        reader: asyncio.StreamReader) -> Tuple[int, bytes, bool]:
    header = await reader.readexactly(2)
    fin = bool(header[0] & 0x80)
    opcode = header[0] & 0x0F
    masked = bool(header[1] & 0x80)
    length = header[1] & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked and payload:
        payload = bytes(byte ^ mask[i % 4] for i, byte in enumerate(payload))
    return opcode, payload, fin


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One server->client frame (FIN set, never masked)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    if length < 126:
        header.append(length)
    elif length < 1 << 16:
        header.append(126)
        header += struct.pack("!H", length)
    else:
        header.append(127)
        header += struct.pack("!Q", length)
    return bytes(header) + payload
