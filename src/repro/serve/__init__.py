"""repro.serve — the real-time streaming decision service.

An asyncio layer that turns the offline :class:`~repro.api.Deployment`
pipeline into a live service: packet requests arrive over JSON-lines TCP or
websocket, a :class:`~repro.serve.batcher.MicroBatcher` groups them into the
``run_batch`` fast path under a latency budget, and decisions stream back
out of a bounded :class:`~repro.serve.backlog.Backlog` ring per tenant.
Because decisions are batch-partition invariant, the streamed events are
byte-identical to an offline replay of the same requests —
``python -m repro.serve.smoke`` proves it against a running server.

Start one from the CLI::

    repro serve --tenant main=fence --train 5 --port 8765 --announce serve.json
"""

from repro.serve.backlog import Backlog, BacklogSubscription
from repro.serve.batcher import MicroBatcher
from repro.serve.ingest import PacketRequest, replay_events, synthesize_packet
from repro.serve.service import SecureAngleService, ServeConfig, run_service
from repro.serve.tenants import Tenant, TenantConfig, resolve_scenario

__all__ = [
    "Backlog",
    "BacklogSubscription",
    "MicroBatcher",
    "PacketRequest",
    "SecureAngleService",
    "ServeConfig",
    "Tenant",
    "TenantConfig",
    "replay_events",
    "resolve_scenario",
    "run_service",
    "synthesize_packet",
]
