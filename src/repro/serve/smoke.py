"""End-to-end smoke client: live stream vs offline replay, byte for byte.

``python -m repro.serve.smoke --announce serve.json`` connects to a running
service (waiting for the announce file to appear), and for every tenant:

1. fetches the tenant's full scenario document via the ``tenants`` op and
   rebuilds the **identical deployment offline** (same spec, same training);
2. subscribes from sequence 0, submits a seeded burst of packet requests,
   and collects the streamed events;
3. replays the same request list through
   :func:`repro.serve.ingest.replay_events` — one offline ``run_batch`` —
   and compares the two event lists **byte-for-byte** as canonical JSON,
   after stripping only the volatile latency fields.

Exit code 0 means every tenant streamed exactly what the offline batch path
computes; anything else is a determinism regression.  This is the check CI's
``serve-smoke`` job runs against a real server process.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.api.spec import ScenarioSpec
from repro.serve.ingest import PacketRequest, replay_events
from repro.serve.tenants import TenantConfig

__all__ = ["canonical_event", "main", "seeded_requests"]


def canonical_event(document: Dict[str, Any]) -> str:
    """One event's canonical byte form, latency fields stripped.

    The latency fields are wall-clock measurements — the only legitimately
    non-deterministic part of an event.  Everything else must match.
    """
    stripped = {key: value for key, value in document.items()
                if key not in ("packet_latency_s", "batch_latency_s")}
    return json.dumps(stripped, sort_keys=True)


def seeded_requests(config: TenantConfig,
                    num_packets: int) -> List[PacketRequest]:
    """The deterministic request burst both sides process.

    Walks the tenant's trained clients (or, untrained, every client in the
    scenario's roster order) round-robin on a fixed timestamp grid — purely
    a function of the tenant config, so the client and any auditor can
    regenerate it.
    """
    client_ids = list(config.train)
    if not client_ids:
        client_ids = sorted(config.spec.clients) if config.spec.clients else [5]
    return [
        PacketRequest(client_id=client_ids[index % len(client_ids)],
                      timestamp_s=30.0 + 0.5 * index)
        for index in range(num_packets)
    ]


class SmokeClient:
    """A minimal JSON-lines protocol client."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer

    async def send(self, payload: Dict[str, Any]) -> None:
        self.writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def receive(self) -> Dict[str, Any]:
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        message = json.loads(line)
        if message.get("op") == "error":
            raise RuntimeError(f"server error: {message.get('error')}")
        assert isinstance(message, dict)
        return message

    async def receive_op(self, op: str) -> Dict[str, Any]:
        """The next message of the wanted op (skipping unrelated ones)."""
        while True:
            message = await self.receive()
            if message.get("op") == op:
                return message


async def _verify_tenant(client: SmokeClient, config: TenantConfig,
                         num_packets: int) -> Tuple[bool, str]:
    requests = seeded_requests(config, num_packets)

    await client.send({"op": "subscribe", "tenant": config.name, "from_seq": 0})
    await client.receive_op("subscribed")
    await client.send({"op": "submit", "tenant": config.name,
                       "requests": [request.to_dict() for request in requests]})
    ack = await client.receive_op("ack")
    if ack["seqs"] != list(range(len(requests))):
        return False, f"unexpected ack sequence numbers: {ack['seqs']}"

    streamed: List[Dict[str, Any]] = []
    while len(streamed) < len(requests):
        message = await client.receive()
        if message.get("op") == "lag":
            return False, f"backlog lag during smoke run: {message}"
        if message.get("op") == "event" and message.get("tenant") == config.name:
            streamed.append(message["event"])

    # The offline reference: identical deployment, identical request order,
    # one big run_batch.
    reference = replay_events(config.build(), requests,
                              primary_ap=config.primary_ap,
                              update_signatures=config.update_signatures)

    live = [canonical_event(event) for event in streamed]
    offline = [canonical_event(event.to_dict()) for event in reference]
    if live == offline:
        accepted = sum(1 for event in reference if event.accepted)
        return True, (f"{len(live)} events byte-identical "
                      f"({accepted}/{len(live)} accepted)")
    for index, (a, b) in enumerate(zip(live, offline)):
        if a != b:
            return False, (f"event {index} diverged:\n  live:    {a}\n"
                           f"  offline: {b}")
    return False, f"event count mismatch: {len(live)} live vs {len(offline)}"


async def _run(host: str, port: int, num_packets: int) -> int:
    reader, writer = await asyncio.open_connection(host, port)
    client = SmokeClient(reader, writer)
    try:
        hello = await client.receive_op("hello")
        print(f"connected: schema v{hello['schema_version']}, "
              f"tenants {hello['tenants']}")
        await client.send({"op": "tenants"})
        table = await client.receive_op("tenants")
        failures = 0
        for entry in table["tenants"]:
            config = TenantConfig(
                name=entry["name"],
                spec=ScenarioSpec.from_dict(entry["scenario"]),
                train=tuple(entry["train"]),
                update_signatures=entry["update_signatures"],
                primary_ap=entry["primary_ap"],
            )
            ok, detail = await _verify_tenant(client, config, num_packets)
            marker = "ok" if ok else "FAIL"
            print(f"  [{marker}] {config.name}: {detail}")
            failures += 0 if ok else 1
        await client.send({"op": "stats"})
        stats = await client.receive_op("stats")
        print("server stats: " + json.dumps(stats["stats"], sort_keys=True))
        return 1 if failures else 0
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _wait_for_announce(path: Path, timeout_s: float) -> Dict[str, Any]:
    deadline = time.monotonic() + timeout_s
    while True:
        if path.exists():
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                assert isinstance(document, dict)
                return document
            except json.JSONDecodeError:
                pass  # unreachable for atomic writers; poll again anyway
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"announce file {path} did not appear within {timeout_s:.0f}s")
        time.sleep(0.1)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="verify a live repro.serve stream against offline replay")
    parser.add_argument("--announce", type=Path,
                        help="announce file written by `repro serve --announce`")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int,
                        help="TCP port (overrides the announce file)")
    parser.add_argument("--packets", type=int, default=16,
                        help="seeded packets per tenant (default 16)")
    parser.add_argument("--wait-s", type=float, default=30.0,
                        help="how long to wait for the announce file")
    args = parser.parse_args(argv)

    host, port = args.host, args.port
    if args.announce is not None:
        announcement = _wait_for_announce(args.announce, args.wait_s)
        host = announcement["host"]
        port = announcement["tcp_port"] if port is None else port
    if port is None:
        parser.error("provide --port or --announce")
    return asyncio.run(_run(host, port, args.packets))


if __name__ == "__main__":
    raise SystemExit(main())
